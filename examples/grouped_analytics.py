#!/usr/bin/env python
"""Aggregates and GROUP BY over the adaptive engine.

An e-Science analytics session: global statistics over the
EntropyAnalyser service and a grouped count over the interaction join
— all while one machine is perturbed 10x and the system rebalances
underneath.  Aggregation runs at the coordinator downstream of the
provenance deduplication, so the numbers are identical with and
without adaptation.
"""

from repro import AdaptivityConfig, DemoGrid, perturb_ws_cost
from repro.config import RESPONSE_R1

STATS_QUERY = ("select count(*), avg(EntropyAnalyser(p.sequence)), "
               "min(EntropyAnalyser(p.sequence)), "
               "max(EntropyAnalyser(p.sequence)) "
               "from protein_sequences p")
TOP_QUERY = ("select i.ORF1, count(*) from protein_sequences p, "
             "protein_interactions i where i.ORF1 = p.ORF "
             "group by i.ORF1")


def main():
    grid = DemoGrid()
    perturb_ws_cost(grid, 10.0)
    adaptivity = AdaptivityConfig(response=RESPONSE_R1)

    stats = grid.run(STATS_QUERY, adaptivity)
    count, average, minimum, maximum = stats.values()[0]
    print("sequence entropy statistics "
          f"({stats.response_time_ms / 1000.0:.1f} s simulated, "
          f"{stats.stats.adaptations_accepted} adaptation(s)):")
    print(f"  n={count}  avg={average:.4f}  min={minimum:.4f}  "
          f"max={maximum:.4f} bits/residue")
    print()

    grouped = grid.run(TOP_QUERY, adaptivity)
    ranked = sorted(grouped.values(), key=lambda v: (-v[1], v[0]))
    print(f"interaction partners per ORF ({grouped.stats.result_count} "
          "groups); top 5:")
    for orf, partner_count in ranked[:5]:
        print(f"  {orf:<16} {partner_count}")


if __name__ == "__main__":
    main()
