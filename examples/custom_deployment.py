#!/usr/bin/env python
"""Building a custom Grid deployment from the public API.

DemoGrid reproduces the paper's testbed; this example assembles its own
world instead: a heterogeneous pool of four compute machines (one twice
as fast), two custom tables on separate data hosts, a user-defined Web
Service operation, and a query that exercises a filter, the join and
the WS call machinery together.
"""

import random

from repro import (
    AdaptivityConfig,
    Column,
    GridContext,
    GridDataService,
    QueryProcessor,
    Relation,
    Schema,
    WebServiceOperation,
)


def build_tables(rng):
    """A tiny order/customer schema with skewed join keys."""
    customers = Relation.from_values(
        "customers",
        Schema([Column("cid", "str", 12), Column("region", "str", 8)]),
        [(f"c{i:04d}", rng.choice(["EU", "US", "APAC"]))
         for i in range(400)])
    orders = Relation.from_values(
        "orders",
        Schema([Column("cid", "str", 12), Column("amount", "int")]),
        [(f"c{rng.randrange(400):04d}", rng.randrange(1, 500))
         for _ in range(1500)])
    return customers, orders


def main():
    context = GridContext(seed=7)
    context.add_machine("coordinator", compute=False)
    context.add_machine("warehouse-a", compute=False)
    context.add_machine("warehouse-b", compute=False)
    # A heterogeneous pool: node-1 has twice the nominal speed, so the
    # optimizer starts it with twice the workload share.
    speeds = {"node-1": 2.0, "node-2": 1.0, "node-3": 1.0, "node-4": 1.0}
    for name, speed in speeds.items():
        context.add_machine(name, speed=speed)

    customers, orders = build_tables(random.Random(7))
    gds_map = {
        "customers": GridDataService(context, "warehouse-a", customers,
                                     access_work_per_tuple=1.0),
        "orders": GridDataService(context, "warehouse-b", orders,
                                  access_work_per_tuple=0.5),
    }
    taxed = WebServiceOperation("TaxAssessor",
                                lambda amount: round(amount * 1.21, 2),
                                base_work_ms=2.0)
    taxed.register(context.registry, list(speeds))
    processor = QueryProcessor(context, gds_map,
                               {taxed.name: taxed}, "coordinator")

    query = ("select TaxAssessor(o.amount) from customers c, orders o "
             "where o.cid = c.cid and c.region = 'EU'")
    print("query:", query)
    result = processor.run(query, AdaptivityConfig(), degree=4)
    print(f"results: {result.stats.result_count} rows in "
          f"{result.response_time_ms / 1000.0:.2f} s simulated")
    print(f"initial shares follow machine speed: "
          f"{result.stats.tuples_per_consumer}")
    sample = [v[0] for v in result.values()[:5]]
    print("first taxed amounts:", sample)


if __name__ == "__main__":
    main()
