#!/usr/bin/env python
"""Surviving a machine failure mid-query.

The paper's retrospective response (R1) reuses infrastructure that was
"developed mainly to attain fault tolerance" [18].  This example
exercises that original purpose: while the partitioned join of Q2 is
running, one of the two evaluation machines crashes and all its state
— incoming queues and the hash table it had built — is lost.

The GDQS notices the missed heartbeats, re-creates the lost evaluator
on a spare machine, and the feed producers replay their recovery logs
to it.  The query completes with exactly the same results it would
have produced without the failure.
"""

from repro import (
    AdaptivityConfig,
    DemoGrid,
    DemoGridSpec,
    FaultToleranceConfig,
    Q2,
)


def run(with_failure):
    spec = DemoGridSpec(spare_machines=1)
    ft = FaultToleranceConfig(enabled=True, heartbeat_interval_ms=500.0,
                              failure_timeout_ms=1600.0)
    grid = DemoGrid(spec, fault_tolerance=ft)
    if with_failure:
        # 12 s in, the join is mid-build on both machines.
        grid.fail_machine_at("compute-2", at_ms=12_000.0)
    return grid, grid.run(Q2, AdaptivityConfig.disabled())


def main():
    print("Q2:", Q2)
    print()
    _grid, clean = run(with_failure=False)
    grid, failed = run(with_failure=True)

    print(f"without failure: {clean.response_time_ms / 1000.0:6.2f} s, "
          f"{clean.stats.result_count} results")
    print(f"with failure:    {failed.response_time_ms / 1000.0:6.2f} s, "
          f"{failed.stats.result_count} results")
    print()
    print("recovery activity:")
    print(f"  machines recovered: {failed.stats.machines_recovered}")
    print(f"  tuples replayed from recovery logs: "
          f"{failed.stats.tuples_replayed_for_recovery}")
    print(f"  duplicate re-deliveries suppressed: "
          f"{failed.stats.duplicates_dropped}")
    assert (sorted(v[0] for v in failed.values())
            == sorted(v[0] for v in clean.values())), \
        "failure must not change the result"
    print("  result equality with the clean run: verified")


if __name__ == "__main__":
    main()
