#!/usr/bin/env python
"""Watching the adaptivity pipeline work, event by event.

Runs Q1 with one machine 10x perturbed and prints the traced timeline:
detector cost notifications, diagnoser proposals, and the responder's
rebalancing decision — the monitor / assess / respond stages of the
paper's Fig. 1 in action.
"""

from repro import AdaptivityConfig, DemoGrid, Q1, perturb_ws_cost
from repro.telemetry import format_timeline


def main():
    grid = DemoGrid()
    perturb_ws_cost(grid, factor=10.0)
    result = grid.run(Q1, AdaptivityConfig())

    tracer = grid.context.tracer
    print(f"Q1 with a 10x perturbation finished in "
          f"{result.response_time_ms / 1000.0:.1f} s simulated; "
          f"{result.stats.adaptations_accepted} rebalancing(s).")
    print()
    print("event counts:", tracer.counts_by_category())
    print()
    print("timeline (monitoring / assessment / response):")
    print(format_timeline(
        tracer.events,
        categories={"monitoring", "assessment", "response"}))


if __name__ == "__main__":
    main()
