#!/usr/bin/env python
"""Adapting to rapidly changing resource performance (paper Fig. 5).

Instead of a stable perturbation, the WS cost factor on one machine is
drawn per tuple from a normal distribution with mean 30x — over wider
and wider ranges, up to [1x, 60x].  The windowed, trimmed averaging in
the MonitoringEventDetector smooths the noise, so the adaptive system
performs almost identically to the stable-30x case.
"""

from repro import (
    AdaptivityConfig,
    DemoGrid,
    Q1,
    perturb_ws_cost,
    perturb_ws_cost_varying,
)
from repro.config import RESPONSE_R1
from repro.experiments.harness import engine_config_for


def run(perturb):
    adaptivity = AdaptivityConfig(response=RESPONSE_R1)
    grid = DemoGrid(engine_config=engine_config_for(adaptivity))
    perturb(grid)
    return grid.run(Q1, adaptivity)


def main():
    baseline = DemoGrid().run(Q1, AdaptivityConfig.disabled())
    base_ms = baseline.response_time_ms

    stable = run(lambda g: perturb_ws_cost(g, 30.0))
    print(f"stable 30x:       "
          f"{stable.response_time_ms / base_ms:5.2f}x of balanced "
          f"({stable.stats.adaptations_accepted} adaptations)")
    for low, high in ((25.0, 35.0), (20.0, 40.0), (1.0, 60.0)):
        result = run(lambda g: perturb_ws_cost_varying(g, low, high))
        print(f"varying [{low:.0f},{high:.0f}]: "
              f"{result.response_time_ms / base_ms:5.2f}x of balanced "
              f"({result.stats.adaptations_accepted} adaptations)")
    print()
    print("The varying rows stay within a few percent of the stable "
          "one: the system adapts efficiently to rapid changes.")


if __name__ == "__main__":
    main()
