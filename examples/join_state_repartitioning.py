#!/usr/bin/env python
"""Repartitioning a hash join's state at runtime (the paper's Q2).

The join of protein interactions with protein sequences is partitioned
by hash across two machines; mid-query, one machine starts sleeping
10 ms before every join tuple.  With the retrospective (R1) response,
the Responder re-assigns hash buckets and the exchange producers
replay the affected build *and* probe tuples out of their recovery
logs — operator state is recreated on the faster machine, and result
correctness is preserved end to end.
"""

from repro import AdaptivityConfig, DemoGrid, Q2, perturb_join_sleep
from repro.config import RESPONSE_R1
from repro.experiments.harness import engine_config_for


def run(adaptivity, sleep_ms):
    grid = DemoGrid(engine_config=engine_config_for(adaptivity))
    if sleep_ms:
        perturb_join_sleep(grid, sleep_ms)
    return grid.run(Q2, adaptivity)


def main():
    print("Q2:", Q2)
    print()
    retrospective = AdaptivityConfig(response=RESPONSE_R1)

    baseline = run(AdaptivityConfig.disabled(), sleep_ms=0.0)
    static = run(AdaptivityConfig.disabled(), sleep_ms=10.0)
    adaptive = run(retrospective, sleep_ms=10.0)

    base_s = baseline.response_time_ms / 1000.0
    print(f"balanced join:                 {base_s:6.2f} s "
          f"({baseline.stats.result_count} results)")
    print(f"one machine sleeping, static:  "
          f"{static.response_time_ms / 1000.0:6.2f} s "
          f"({static.response_time_ms / baseline.response_time_ms:.2f}x)")
    print(f"one machine sleeping, R1:      "
          f"{adaptive.response_time_ms / 1000.0:6.2f} s "
          f"({adaptive.response_time_ms / baseline.response_time_ms:.2f}x)")
    print()
    stats = adaptive.stats
    print("what the adaptive run did:")
    print(f"  rebalancing decisions accepted: {stats.adaptations_accepted}")
    print(f"  tuples replayed from recovery logs: {stats.tuples_moved}")
    print(f"  duplicate results suppressed by provenance: "
          f"{stats.duplicates_dropped}")
    print(f"  final tuples per machine: {stats.tuples_per_consumer}")
    assert (sorted(v[0] for v in adaptive.values())
            == sorted(v[0] for v in static.values())), \
        "adaptive and static runs must return identical results"
    print("  result equality with the static run: verified")


if __name__ == "__main__":
    main()
