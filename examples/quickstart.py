#!/usr/bin/env python
"""Quickstart: adaptive vs. static query processing on a perturbed Grid.

Builds the paper's demo deployment (a data host, two compute machines,
a coordinator), makes the EntropyAnalyser Web Service 10x costlier on
one machine, and runs Q1 three ways: unperturbed static (the
baseline), perturbed static, and perturbed adaptive.  Everything runs
in deterministic simulated time, so this finishes in about a second of
wall clock.
"""

from repro import AdaptivityConfig, DemoGrid, Q1, perturb_ws_cost


def run_case(description, perturbed, adaptivity):
    grid = DemoGrid()
    if perturbed:
        perturb_ws_cost(grid, factor=10.0)
    result = grid.run(Q1, adaptivity)
    print(f"{description:<28} {result.response_time_ms / 1000.0:7.2f} s   "
          f"rows={result.stats.result_count}  "
          f"adaptations={result.stats.adaptations_accepted}")
    return result.response_time_ms


def main():
    print("Q1:", Q1)
    print()
    baseline = run_case("static, no imbalance",
                        perturbed=False,
                        adaptivity=AdaptivityConfig.disabled())
    static = run_case("static, one machine 10x",
                      perturbed=True,
                      adaptivity=AdaptivityConfig.disabled())
    adaptive = run_case("adaptive, one machine 10x",
                        perturbed=True,
                        adaptivity=AdaptivityConfig())
    print()
    print(f"degradation without adaptivity: {static / baseline:.2f}x "
          "(paper: 3.53x)")
    print(f"degradation with adaptivity:    {adaptive / baseline:.2f}x "
          "(paper: 1.45x)")


if __name__ == "__main__":
    main()
