"""Query-level fault tolerance: availability under permanent crashes.

Not a figure from the paper — its testbed never loses a machine for
good — but the natural stress test of the fault-tolerance machinery
the paper's R1 response rides on [18]: an open-loop workload runs
while zero, one or two compute machines crash permanently mid-window.
Sessions recover (spare, then double-up), retry on a blacklisted
placement when recovery is exhausted, and settle with a typed failure
when nothing else is left.  The sweep reports the availability
(success rate), retry/timeout counts, p95 response and wasted work at
two concurrency levels — the grid's degradation curve as machines
disappear.
"""

from __future__ import annotations

from repro.chaos import ChaosConfig, MachineCrash, RetryPolicy
from repro.config import (
    AdaptivityConfig,
    FaultToleranceConfig,
    SchedulerConfig,
)
from repro.experiments.harness import (
    ExperimentReport,
    SweepCell,
    SweepRunner,
    collect_metrics,
)
from repro.sched import WorkloadDriver, WorkloadSpec
from repro.workloads import (
    DemoGridSpec,
    DemoGrid,
    Q1,
    Q2,
    compute_machine_name,
)

#: Small relations keep a dozen crash-recovery workload runs fast.
SPEC = DemoGridSpec(sequences_cardinality=120,
                    interactions_cardinality=180,
                    sequence_length=20,
                    compute_machines=3,
                    spare_machines=1)

#: Staggered crash times: the second loss lands after the first
#: recovery has settled, so the spare is already consumed.
CRASH_TIMES_MS = (4000.0, 12000.0)
CRASH_COUNTS = (0, 1, 2)
CONCURRENCY_LIMITS = (4, 16)
ARRIVAL_RATE_QPS = 0.5
DURATION_MS = 20000.0
MAX_QUEUED = 32

#: Fast failure detection with a zero recovery budget: every machine
#: loss escalates past the DQP layer to the scheduler, whose retry
#: policy re-places the whole query away from the machine that sank
#: it — the sweep then shows the retry/blacklist path, not just the
#: (already benchmarked) in-flight evaluator recovery.
FT = FaultToleranceConfig(enabled=True, heartbeat_interval_ms=200.0,
                          failure_timeout_ms=700.0, max_recoveries=0)

SCHEDULER_RETRY = RetryPolicy(max_attempts=3, backoff_base_ms=200.0,
                              backoff_cap_ms=2000.0)


def drive(crashes: int, max_concurrent: int, seed: int = 0):
    """One open-loop run under ``crashes`` permanent machine losses."""
    schedule = tuple(
        MachineCrash(compute_machine_name(index + 1),
                     at_ms=CRASH_TIMES_MS[index])
        for index in range(crashes))
    chaos = ChaosConfig.lossy(crashes=schedule) if schedule else None
    grid = DemoGrid(DemoGridSpec(
        sequences_cardinality=SPEC.sequences_cardinality,
        interactions_cardinality=SPEC.interactions_cardinality,
        sequence_length=SPEC.sequence_length,
        compute_machines=SPEC.compute_machines,
        spare_machines=SPEC.spare_machines,
        seed=seed), fault_tolerance=FT, chaos=chaos)
    scheduler = grid.scheduler(SchedulerConfig(
        max_concurrent=max_concurrent, max_queued=MAX_QUEUED,
        retry=SCHEDULER_RETRY))
    driver = WorkloadDriver(scheduler, WorkloadSpec(
        arrival_rate_qps=ARRIVAL_RATE_QPS,
        duration_ms=DURATION_MS,
        catalog=(Q1, Q2),
        adaptivity=AdaptivityConfig.disabled(),
        degree=2))
    report = driver.run()
    collect_metrics(grid, workload=True, crashes=crashes,
                    max_concurrent=max_concurrent)
    return report


def _resilience_cell(crashes: int, max_concurrent: int) -> list:
    """One crash-rate/concurrency run, reduced to its report row."""
    report = drive(crashes, max_concurrent)
    return [
        max_concurrent, crashes, report.admitted, report.completed,
        report.failed, report.retried, report.timed_out,
        round(report.availability, 3),
        round(report.response_p95_ms / 1000.0, 2),
        round(report.wasted_work_ms / 1000.0, 2),
    ]


def cells() -> list[SweepCell]:
    return [
        SweepCell(f"res:c{max_concurrent}:x{crashes}", _resilience_cell,
                  {"crashes": crashes, "max_concurrent": max_concurrent})
        for max_concurrent in CONCURRENCY_LIMITS
        for crashes in CRASH_COUNTS
    ]


def run(jobs: int = 1) -> ExperimentReport:
    rows = SweepRunner(jobs).run(cells())
    return ExperimentReport(
        experiment_id="resilience",
        title="Availability and wasted work vs permanent machine "
              f"crashes (open-loop {ARRIVAL_RATE_QPS:g} q/s, "
              f"{DURATION_MS / 1000.0:g}s window)",
        columns=["max_conc", "crashes", "admitted", "succeeded",
                 "failed", "retried", "timed_out", "availability",
                 "resp_p95_s", "wasted_s"],
        rows=rows,
        notes="A crashed machine fails its in-flight queries (zero "
              "recovery budget); the scheduler retries each one on a "
              "placement that blacklists the machine that sank it.  "
              "Failures are typed outcomes, never hangs: admitted "
              "always equals succeeded plus failed once the grid "
              "drains.")
