"""Plain-text rendering of experiment reports."""

from __future__ import annotations

import typing

from repro.experiments.harness import ExperimentReport


def _format_cell(value: typing.Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render(report: ExperimentReport) -> str:
    """Render a report as an aligned text table."""
    header = [str(c) for c in report.columns]
    body = [[_format_cell(cell) for cell in row] for row in report.rows]
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: list[str]) -> str:
        return "  ".join(cell.ljust(widths[i])
                         for i, cell in enumerate(cells)).rstrip()

    out = [f"== {report.experiment_id}: {report.title} ==",
           line(header),
           line(["-" * w for w in widths])]
    out.extend(line(row) for row in body)
    if report.notes:
        out.append("")
        out.append(report.notes)
    return "\n".join(out)
