"""Shared experiment harness.

Every experiment in the paper's §3.2 is a set of full query runs on
fresh demo grids, normalised to the *no adaptivity / no imbalance* run
of the same query and data size.  This module provides the run
plumbing: grid construction (with recovery logging enabled exactly
when the response policy is retrospective, mirroring the paper's
configurations), perturbation application and result caching.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import AdaptivityConfig, EngineConfig, RESPONSE_R1
from repro.dqp.gdqs import QueryResult
from repro.workloads.proteins import DemoGrid, DemoGridSpec
from repro.workloads.queries import Q1, Q2

QUERIES = {"Q1": Q1, "Q2": Q2}


def engine_config_for(adaptivity: AdaptivityConfig | None) -> EngineConfig:
    """Recovery logging is active only for retrospective (R1) runs.

    The static system and prospective (R2) runs do not pay the log
    management cost — that difference is exactly the overhead gap the
    paper reports between the two response types.
    """
    logging_enabled = (adaptivity is not None and adaptivity.enabled
                       and adaptivity.response == RESPONSE_R1)
    return EngineConfig(logging_enabled=logging_enabled)


def execute(query_key: str,
            adaptivity: AdaptivityConfig | None = None,
            perturb: typing.Callable[[DemoGrid], None] | None = None,
            spec: DemoGridSpec | None = None,
            degree: int | None = None,
            engine_config: EngineConfig | None = None) -> QueryResult:
    """One full query run on a fresh grid."""
    if query_key not in QUERIES:
        raise ValueError(f"unknown query {query_key!r}; have Q1, Q2")
    adaptivity = adaptivity or AdaptivityConfig.disabled()
    if engine_config is None:
        engine_config = engine_config_for(adaptivity)
    grid = DemoGrid(spec=spec, engine_config=engine_config)
    if perturb is not None:
        perturb(grid)
    return grid.run(QUERIES[query_key], adaptivity, degree=degree)


class BaselineCache:
    """Caches the no-ad/no-imb response time per (query, spec)."""

    def __init__(self) -> None:
        self._cache: dict = {}

    def baseline_ms(self, query_key: str,
                    spec: DemoGridSpec | None = None) -> float:
        key = (query_key, spec)
        if key not in self._cache:
            result = execute(query_key, AdaptivityConfig.disabled(),
                             spec=spec)
            self._cache[key] = result.response_time_ms
        return self._cache[key]

    def normalised(self, result: QueryResult, query_key: str,
                   spec: DemoGridSpec | None = None) -> float:
        """Response time in paper units (baseline = 1.0)."""
        return result.response_time_ms / self.baseline_ms(query_key, spec)


@dataclasses.dataclass
class ExperimentReport:
    """Output of one experiment: rows to print and compare."""

    experiment_id: str
    title: str
    columns: list
    rows: list
    notes: str = ""

    def row_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]
