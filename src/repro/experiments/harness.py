"""Shared experiment harness.

Every experiment in the paper's §3.2 is a set of full query runs on
fresh demo grids, normalised to the *no adaptivity / no imbalance* run
of the same query and data size.  This module provides the run
plumbing: grid construction (with recovery logging enabled exactly
when the response policy is retrospective, mirroring the paper's
configurations), perturbation application and result caching.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import typing

from repro.config import AdaptivityConfig, EngineConfig, RESPONSE_R1
from repro.dqp.gdqs import QueryResult
from repro.workloads.proteins import DemoGrid, DemoGridSpec
from repro.workloads.queries import Q1, Q2

QUERIES = {"Q1": Q1, "Q2": Q2}


def engine_config_for(adaptivity: AdaptivityConfig | None) -> EngineConfig:
    """Recovery logging is active only for retrospective (R1) runs.

    The static system and prospective (R2) runs do not pay the log
    management cost — that difference is exactly the overhead gap the
    paper reports between the two response types.
    """
    logging_enabled = (adaptivity is not None and adaptivity.enabled
                       and adaptivity.response == RESPONSE_R1)
    return EngineConfig(logging_enabled=logging_enabled)


def execute(query_key: str,
            adaptivity: AdaptivityConfig | None = None,
            perturb: typing.Callable[[DemoGrid], None] | None = None,
            spec: DemoGridSpec | None = None,
            degree: int | None = None,
            engine_config: EngineConfig | None = None) -> QueryResult:
    """One full query run on a fresh grid."""
    if query_key not in QUERIES:
        raise ValueError(f"unknown query {query_key!r}; have Q1, Q2")
    adaptivity = adaptivity or AdaptivityConfig.disabled()
    if engine_config is None:
        engine_config = engine_config_for(adaptivity)
    grid = DemoGrid(spec=spec, engine_config=engine_config)
    if perturb is not None:
        perturb(grid)
    result = grid.run(QUERIES[query_key], adaptivity, degree=degree)
    collect_metrics(grid, query=query_key, query_id=result.query_id,
                    adaptive=adaptivity.enabled)
    return result


class MetricsSink:
    """Accumulates per-grid metrics snapshots across an experiment.

    Experiments build a fresh grid per run, so the registry alone
    cannot aggregate a whole table's worth of telemetry.  Install a
    sink with :func:`set_metrics_sink`; every run reported through
    :func:`collect_metrics` (as :func:`execute` and the multiquery
    driver do) appends the grid's instruments and per-query reports,
    tagged with a run label, and the caller writes one JSONL file per
    experiment.
    """

    def __init__(self) -> None:
        self.records: list[dict] = []

    def collect(self, grid: DemoGrid, run: dict) -> None:
        for record in grid.context.metrics.snapshot():
            record["run"] = dict(run)
            self.records.append(record)

    def write_jsonl(self, path) -> int:
        """Write collected records as JSON Lines; returns the count."""
        with open(path, "w", encoding="utf-8") as handle:
            for record in self.records:
                handle.write(json.dumps(record) + "\n")
        return len(self.records)


_metrics_sink: MetricsSink | None = None


def set_metrics_sink(sink: MetricsSink | None) -> MetricsSink | None:
    """Install the experiment-wide sink; returns the previous one."""
    global _metrics_sink
    previous = _metrics_sink
    _metrics_sink = sink
    return previous


def collect_metrics(grid: DemoGrid, **run_label) -> None:
    """Report one finished grid's metrics to the active sink, if any."""
    if _metrics_sink is not None:
        _metrics_sink.collect(grid, run_label)


class BaselineCache:
    """Caches the no-ad/no-imb response time per (query, spec)."""

    def __init__(self) -> None:
        self._cache: dict = {}

    def baseline_ms(self, query_key: str,
                    spec: DemoGridSpec | None = None) -> float:
        key = (query_key, spec)
        if key not in self._cache:
            result = execute(query_key, AdaptivityConfig.disabled(),
                             spec=spec)
            self._cache[key] = result.response_time_ms
        return self._cache[key]

    def normalised(self, result: QueryResult, query_key: str,
                   spec: DemoGridSpec | None = None) -> float:
        """Response time in paper units (baseline = 1.0)."""
        return result.response_time_ms / self.baseline_ms(query_key, spec)


@dataclasses.dataclass(frozen=True)
class SweepCell:
    """One independent unit of an experiment sweep, declared as data.

    ``fn`` must be a module-level callable and ``kwargs`` built from
    picklable values (primitives, frozen dataclasses), so a cell can
    cross a ``multiprocessing`` fork boundary unchanged.  Every cell
    builds its own fresh grids, so cells share no mutable state and
    can run in any order — the runner still *reports* them in
    declaration order.
    """

    label: str
    fn: typing.Callable[..., typing.Any]
    kwargs: dict = dataclasses.field(default_factory=dict)


def _run_cell(indexed_cell: tuple[int, SweepCell]
              ) -> tuple[int, typing.Any, list[dict]]:
    """Execute one cell under a private metrics sink.

    Used verbatim by both the serial and the pooled paths (in a worker
    process the installed sink is the fork-inherited parent one, which
    must not be written to), so a sweep's outcome — values and metrics
    records alike — is independent of ``jobs``.
    """
    index, cell = indexed_cell
    sink = MetricsSink()
    previous = set_metrics_sink(sink)
    try:
        value = cell.fn(**cell.kwargs)
    finally:
        set_metrics_sink(previous)
    return index, value, sink.records


def _fork_context():
    """The ``fork`` multiprocessing context, or None where unavailable.

    Fork keeps workers cheap (no re-import, warm dataset caches) and is
    the only start method that inherits module state without pickling
    the world; on platforms without it (e.g. Windows) sweeps degrade
    gracefully to serial execution rather than risking spawn-related
    import side effects.
    """
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
    except (ValueError, AttributeError):  # pragma: no cover - exotic
        pass
    return None  # pragma: no cover - non-fork platforms


class SweepRunner:
    """Runs a sweep's cells, optionally over a process pool.

    ``jobs=1`` (the default) preserves the historical strictly-serial
    behaviour.  With ``jobs>1`` the cells fan out over a ``fork``-based
    ``multiprocessing.Pool``; results are merged **by cell index**, not
    completion order, and each cell's metrics records are appended to
    the ambient :class:`MetricsSink` in that same order — so reports
    and metrics files are byte-identical whatever ``jobs`` is.
    """

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))

    def run(self, cells: typing.Sequence[SweepCell]) -> list:
        """Execute ``cells``; returns their values in declaration order."""
        indexed = list(enumerate(cells))
        jobs = min(self.jobs, len(indexed))
        context = _fork_context() if jobs > 1 else None
        if context is None:
            outcomes = [_run_cell(item) for item in indexed]
        else:
            with context.Pool(processes=jobs) as pool:
                outcomes = sorted(pool.imap_unordered(_run_cell, indexed))
        sink = _metrics_sink
        values = []
        for _index, value, records in outcomes:
            if sink is not None:
                sink.records.extend(records)
            values.append(value)
        return values


def baseline_cell(query_key: str, spec: DemoGridSpec | None = None) -> float:
    """Sweep cell: the no-adaptivity/no-imbalance response time (ms)."""
    result = execute(query_key, AdaptivityConfig.disabled(), spec=spec)
    return result.response_time_ms


@dataclasses.dataclass
class ExperimentReport:
    """Output of one experiment: rows to print and compare."""

    experiment_id: str
    title: str
    columns: list
    rows: list
    notes: str = ""

    def row_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]
