"""Extension experiment: resilience under injected transient faults.

Not a paper artefact, but the stress test its Grid setting implies:
monitoring-service studies (see PAPERS.md) report message loss and
transient stalls as the dominant failure mode of 2005-era Grid
infrastructure.  Two sweeps:

* a **fault-rate sweep** — Q1 and Q2, adaptivity on and off, under
  increasing link fault rates (drop + duplicate + delay) plus flaky
  Web Service calls for Q1; reported values are normalised to the
  fault-free run of the same configuration, alongside the injected
  fault and retry counts; and
* a **quarantine scenario** — one compute clone freezes mid-run for
  long enough to be declared *suspect* (weights driven to zero, logs
  retained) but recovers before the failure deadline, so it is
  reintegrated rather than rebuilt.

Every run must return the complete, correct row set — the defenses
(unbounded data-plane retries, bounded control-plane retries, tid
provenance) turn faults into latency, never into data loss.
"""

from __future__ import annotations

from repro.chaos import ChaosConfig, FaultSchedule, MachineFreeze
from repro.config import AdaptivityConfig, FaultToleranceConfig
from repro.experiments.harness import (
    ExperimentReport,
    SweepCell,
    SweepRunner,
)
from repro.workloads.proteins import DemoGrid, DemoGridSpec
from repro.workloads.queries import Q1, Q2

FAULT_RATES = (0.0, 0.02, 0.08)

_SPEC = DemoGridSpec(sequences_cardinality=600,
                     interactions_cardinality=900)
_DELAY_MS = 30.0
_WS_FAIL_SCALE = 2.0  # WS failures are commoner than link faults

_FREEZE_FT = FaultToleranceConfig(enabled=True,
                                  heartbeat_interval_ms=200.0,
                                  suspect_timeout_ms=500.0,
                                  failure_timeout_ms=5000.0)
_FREEZE = MachineFreeze("compute-2", at_ms=800.0, duration_ms=2000.0)


def _chaos_for(rate: float, query: str) -> ChaosConfig | None:
    if rate <= 0:
        return None
    return ChaosConfig.lossy(
        drop_probability=rate,
        duplicate_probability=rate,
        delay_probability=rate,
        delay_ms=_DELAY_MS,
        ws_failure_probability=(min(1.0, rate * _WS_FAIL_SCALE)
                                if query == Q1 else 0.0))


def _rate_cell(query: str, rate: float, adaptive: bool) -> dict:
    """One fault-rate run; returns the row ingredients as primitives."""
    grid = DemoGrid(_SPEC, chaos=_chaos_for(rate, query))
    adaptivity = (AdaptivityConfig() if adaptive
                  else AdaptivityConfig.disabled())
    result = grid.run(query, adaptivity)
    counters = (grid.chaos.counters() if grid.chaos is not None
                else {})
    return {
        "response_time_ms": result.response_time_ms,
        "counters": dict(counters),
        "result_count": result.stats.result_count,
    }


def _freeze_baseline_cell() -> float:
    """The quarantine scenario's fault-free reference run."""
    grid = DemoGrid(_SPEC, fault_tolerance=_FREEZE_FT)
    return grid.run(Q1, AdaptivityConfig()).response_time_ms


def _freeze_cell() -> dict:
    """The quarantine scenario: one clone stalled mid-run."""
    chaos = ChaosConfig(enabled=True,
                        schedule=FaultSchedule(freezes=(_FREEZE,)))
    grid = DemoGrid(_SPEC, fault_tolerance=_FREEZE_FT, chaos=chaos)
    result = grid.run(Q1, AdaptivityConfig())
    return {
        "response_time_ms": result.response_time_ms,
        "counters": dict(grid.chaos.counters()),
        "quarantined": result.stats.clones_quarantined,
        "result_count": result.stats.result_count,
    }


#: Fault-rate sweep groups: (query text, row label, adaptive).
_GROUPS = tuple((query, label, adaptive)
                for query, label in ((Q1, "Q1"), (Q2, "Q2"))
                for adaptive in (True, False))


def cells() -> list[SweepCell]:
    sweep = []
    for query, label, adaptive in _GROUPS:
        for rate in FAULT_RATES:
            sweep.append(SweepCell(
                f"{label}:{'on' if adaptive else 'off'}:{rate:g}",
                _rate_cell,
                {"query": query, "rate": rate, "adaptive": adaptive}))
    sweep.append(SweepCell("Q1+freeze:baseline", _freeze_baseline_cell))
    sweep.append(SweepCell("Q1+freeze:stall", _freeze_cell))
    return sweep


def _retries(counters: dict) -> int:
    return (counters.get("send_retries", 0)
            + counters.get("call_retries", 0)
            + counters.get("ws_retries", 0))


def run(jobs: int = 1) -> ExperimentReport:
    """Fault-rate sweep plus the freeze/quarantine scenario."""
    values = SweepRunner(jobs).run(cells())
    points = iter(values)
    rows = []
    for _query, label, adaptive in _GROUPS:
        baseline_ms = None
        for rate in FAULT_RATES:
            outcome = next(points)
            if baseline_ms is None:
                baseline_ms = outcome["response_time_ms"]
            counters = outcome["counters"]
            rows.append([
                label,
                "on" if adaptive else "off",
                f"{rate:.2f}",
                outcome["response_time_ms"] / baseline_ms,
                counters.get("messages_dropped", 0),
                counters.get("messages_duplicated", 0),
                _retries(counters),
                0,
                outcome["result_count"],
            ])

    # Quarantine scenario: transient stall of one clone, Q1 adaptive.
    freeze_baseline_ms = next(points)
    freeze = next(points)
    counters = freeze["counters"]
    rows.append([
        "Q1+freeze", "on", "stall",
        freeze["response_time_ms"] / freeze_baseline_ms,
        counters.get("messages_dropped", 0),
        counters.get("messages_duplicated", 0),
        _retries(counters),
        freeze["quarantined"],
        freeze["result_count"],
    ])
    return ExperimentReport(
        experiment_id="chaos",
        title="Transient faults: retry/backoff and clone quarantine "
              "(extension)",
        columns=["query", "adaptive", "fault rate", "normalised time",
                 "drops", "dups", "retries", "quarantined", "results"],
        rows=rows,
        notes=("Normalised to the fault-free run of the same (query, "
               "adaptivity) configuration; the freeze row reports the "
               "suspect-clone scenario (one clone stalled 2 s, "
               "quarantined, then reintegrated when its heartbeats "
               "resumed).  Row counts are complete at every fault "
               "rate: retries and tid-provenance de-duplication turn "
               "drops and duplicates into latency, not data loss."))
