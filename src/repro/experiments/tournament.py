"""Extension experiment: a tournament across adaptation policies.

Not a paper artefact, but the question its policy seam raises: the
paper's controller (inverse-cost target behind fixed thresholds) is
one point in the design space now occupied by every policy in
:func:`repro.policy.default_registry`.  The tournament races all of
them over scenarios drawn from the paper's evaluation — the Fig. 2
one-off WS slowdown, the Fig. 3 join slowdown, the Fig. 5-style
volatile WS cost, and the chaos freeze/quarantine stall — and ranks
them on three axes:

* **normalised response time** per scenario (baseline = the static,
  unperturbed run of the same scenario's query and fault-tolerance
  configuration);
* **adaptations** actually deployed; and
* **oscillation** — workload mass a policy moved one way and then
  moved back (see the Responder's accounting), the signature of an
  under-damped controller.

On the stateless Q1 scenarios the control loop is deliberately
*twitchy* (dense monitoring, low thresholds, short cooldown, cheap
progress estimation) so controller dynamics — overshoot, hunting,
hysteresis — show up within a single query run instead of being
hidden behind the paper's conservative pacing.  The stateful Q2 join
runs twitchy too: the exchange's state channels retain and replicate
hash-join build state across bucket-map changes, so rapid
re-adaptation of the partitioned subplan is loss-free.
"""

from __future__ import annotations

from repro.chaos import ChaosConfig, FaultSchedule, MachineFreeze
from repro.config import AdaptivityConfig, FaultToleranceConfig
from repro.experiments.harness import (
    ExperimentReport,
    SweepCell,
    SweepRunner,
    collect_metrics,
    engine_config_for,
)
from repro.policy import default_registry
from repro.workloads.proteins import DemoGrid, DemoGridSpec
from repro.workloads.queries import Q1, Q2
from repro.workloads.scenarios import (
    perturb_join_sleep,
    perturb_ws_cost,
    perturb_ws_cost_varying,
)

_SPEC = DemoGridSpec(sequences_cardinality=600,
                     interactions_cardinality=900)
_SMOKE_SPEC = DemoGridSpec(sequences_cardinality=200,
                           interactions_cardinality=300)

#: Twitchy control loop: dense monitoring, low thresholds, short
#: cooldown and cheap progress estimation so one run exposes many
#: control decisions (the paper's conservative defaults fire a single
#: adaptation per run, which ranks every controller identically).
_TWITCHY = dict(m1_interval=2, window_size=8,
                thres_m=0.08, thres_a=0.08,
                progress_cutoff=0.97,
                cooldown_ms=100.0, decision_latency_ms=100.0)

_FREEZE_FT = FaultToleranceConfig(enabled=True,
                                  heartbeat_interval_ms=200.0,
                                  suspect_timeout_ms=500.0,
                                  failure_timeout_ms=5000.0)
_FREEZE = MachineFreeze("compute-2", at_ms=800.0, duration_ms=2000.0)


def _perturb_fig2(grid: DemoGrid) -> None:
    perturb_ws_cost(grid, factor=10.0)


def _perturb_fig3(grid: DemoGrid) -> None:
    perturb_join_sleep(grid, sleep_ms=20.0)


def _perturb_volatile(grid: DemoGrid) -> None:
    perturb_ws_cost_varying(grid, low=2.0, high=20.0)


#: scenario id -> (query, perturbation, fault tolerance, chaos,
#: adaptivity overrides).
_SCENARIOS: dict = {
    "fig2-ws10": (Q1, _perturb_fig2, None, None, _TWITCHY),
    "fig3-sleep20": (Q2, _perturb_fig3, None, None, _TWITCHY),
    "fig3-volatile": (Q1, _perturb_volatile, None, None, _TWITCHY),
    "chaos-freeze": (Q1, None, _FREEZE_FT,
                     ChaosConfig(enabled=True,
                                 schedule=FaultSchedule(
                                     freezes=(_FREEZE,))),
                     _TWITCHY),
}

#: Declaration order doubles as column order in the report.
SCENARIO_IDS = tuple(_SCENARIOS)
SMOKE_SCENARIO_IDS = ("fig2-ws10", "fig3-volatile")
SMOKE_POLICIES = ("paper-A1R2", "hysteresis", "pid")


def _tournament_cell(scenario: str, policy: str | None,
                     smoke: bool = False) -> dict:
    """One policy's run of one scenario (policy None = static baseline).

    The baseline runs the scenario's query and fault-tolerance stack
    but neither the perturbation nor the chaos schedule — the paper's
    *no adaptivity / no imbalance* reference point.
    """
    query, perturb, fault_tolerance, chaos, overrides = _SCENARIOS[scenario]
    spec = _SMOKE_SPEC if smoke else _SPEC
    if policy is None:
        adaptivity = AdaptivityConfig.disabled()
        perturb = None
        chaos = None
    else:
        adaptivity = AdaptivityConfig(policy=policy, **overrides)
    grid = DemoGrid(spec, engine_config=engine_config_for(adaptivity),
                    fault_tolerance=fault_tolerance, chaos=chaos)
    if perturb is not None:
        perturb(grid)
    result = grid.run(query, adaptivity)
    collect_metrics(grid, experiment="tournament", scenario=scenario,
                    policy=policy or "static")
    stats = result.stats
    return {
        "response_time_ms": result.response_time_ms,
        "adaptations": stats.adaptations_accepted,
        "oscillation": stats.oscillation,
        "result_count": stats.result_count,
    }


def cells(policies: tuple, scenarios: tuple,
          smoke: bool = False) -> list[SweepCell]:
    sweep = [SweepCell(f"baseline:{scenario}", _tournament_cell,
                       {"scenario": scenario, "policy": None,
                        "smoke": smoke})
             for scenario in scenarios]
    sweep.extend(
        SweepCell(f"{policy}:{scenario}", _tournament_cell,
                  {"scenario": scenario, "policy": policy, "smoke": smoke})
        for policy in policies for scenario in scenarios)
    return sweep


def _tournament(experiment_id: str, title: str, policies: tuple,
                scenarios: tuple, smoke: bool,
                jobs: int) -> ExperimentReport:
    values = SweepRunner(jobs).run(cells(policies, scenarios, smoke))
    baselines = dict(zip(scenarios, values))
    outcomes = {}
    position = len(scenarios)
    for policy in policies:
        for scenario in scenarios:
            outcomes[(policy, scenario)] = values[position]
            position += 1
    rows = []
    for policy in policies:
        normalised = [
            outcomes[(policy, scenario)]["response_time_ms"]
            / baselines[scenario]["response_time_ms"]
            for scenario in scenarios]
        mean = sum(normalised) / len(normalised)
        adaptations = sum(outcomes[(policy, scenario)]["adaptations"]
                          for scenario in scenarios)
        oscillation = sum(outcomes[(policy, scenario)]["oscillation"]
                          for scenario in scenarios)
        complete = all(
            outcomes[(policy, scenario)]["result_count"]
            == baselines[scenario]["result_count"]
            for scenario in scenarios)
        rows.append([policy, *normalised, mean, adaptations,
                     round(oscillation, 3), "yes" if complete else "NO"])
    mean_column = 1 + len(scenarios)
    rows.sort(key=lambda row: (row[mean_column], row[0]))
    return ExperimentReport(
        experiment_id=experiment_id,
        title=title,
        columns=["policy", *scenarios, "mean", "adaptations",
                 "oscillation", "complete"],
        rows=rows,
        notes=("Per-scenario response times normalised to the static, "
               "unperturbed run of the same query and fault-tolerance "
               "configuration (baseline = 1.00); 'mean' averages the "
               "scenario columns and ranks the table.  'oscillation' "
               "sums the workload mass each policy moved and later "
               "reversed; 'complete' checks every run returned the "
               "baseline's full row count.  Every scenario — the "
               "stateful Q2 join included — runs a deliberately "
               "twitchy control loop (M1 every 2 tuples, thresholds "
               "0.08, cooldown 100 ms, decision latency 100 ms) so "
               "controller dynamics surface within single runs."))


def run(jobs: int = 1) -> ExperimentReport:
    """The full tournament: every registered policy, every scenario."""
    return _tournament(
        "tournament",
        "Adaptation-policy tournament across paper scenarios "
        "(extension)",
        tuple(default_registry().names()), SCENARIO_IDS,
        smoke=False, jobs=jobs)


def run_smoke(jobs: int = 1) -> ExperimentReport:
    """A CI-sized slice of the tournament (small data, 3 policies)."""
    return _tournament(
        "tournament-smoke",
        "Policy tournament smoke slice (CI)",
        SMOKE_POLICIES, SMOKE_SCENARIO_IDS,
        smoke=True, jobs=jobs)
