"""Figure 4: varying the number of perturbed machines.

Q1 runs on three WS machines; 0, 1, 2 or all 3 of them are perturbed
(WS 10x/20x/30x costlier), with retrospective adaptations.  With at
least one unperturbed machine the adaptive system degrades very
gracefully and almost independently of the perturbation magnitude; the
static system degrades by up to an order of magnitude.

The 24-run sweep is declared as :class:`SweepCell` data (a baseline
cell plus one cell per (magnitude, perturbed count, adaptivity) point)
for the parallel sweep runner.
"""

from __future__ import annotations

import dataclasses
import functools

from repro.config import AdaptivityConfig, RESPONSE_R1
from repro.experiments.harness import (
    ExperimentReport,
    SweepCell,
    SweepRunner,
    baseline_cell,
    execute,
)
from repro.workloads.proteins import DemoGridSpec
from repro.workloads.scenarios import perturb_ws_cost

FACTORS = (10.0, 20.0, 30.0)
PERTURBED_COUNTS = (0, 1, 2, 3)

#: The three-WS-machine deployment of Fig. 4.
FIG4_SPEC = dataclasses.replace(DemoGridSpec(), compute_machines=3)


def _fig4_cell(factor: float, count: int, enabled: bool) -> float:
    """One Fig. 4 run: ``count`` machines perturbed ``factor``x."""
    adaptivity = (AdaptivityConfig(response=RESPONSE_R1) if enabled
                  else AdaptivityConfig.disabled())
    result = execute("Q1", adaptivity,
                     perturb=functools.partial(perturb_ws_cost,
                                               factor=factor,
                                               machines=count),
                     spec=FIG4_SPEC)
    return result.response_time_ms


def cells() -> list[SweepCell]:
    sweep = [SweepCell("Q1x3:baseline", baseline_cell,
                       {"query_key": "Q1", "spec": FIG4_SPEC})]
    for factor in FACTORS:
        for count in PERTURBED_COUNTS:
            for enabled in (False, True):
                sweep.append(SweepCell(
                    f"Q1x3:{factor:g}x:{count}pert:"
                    f"{'adaptive' if enabled else 'static'}",
                    _fig4_cell,
                    {"factor": factor, "count": count, "enabled": enabled}))
    return sweep


def run(jobs: int = 1) -> ExperimentReport:
    """Reproduce Fig. 4(a)-(c) as one table."""
    values = SweepRunner(jobs).run(cells())
    baseline_ms, points = values[0], iter(values[1:])
    rows = []
    for factor in FACTORS:
        for count in PERTURBED_COUNTS:
            disabled = next(points) / baseline_ms
            enabled = next(points) / baseline_ms
            rows.append([f"{factor:.0f} times", count, disabled, enabled])
    return ExperimentReport(
        experiment_id="fig4",
        title="Q1 on 3 machines, varying perturbed machines (Fig. 4)",
        columns=["magnitude", "perturbed machines",
                 "adaptivity disabled", "adaptivity enabled"],
        rows=rows,
        notes=("Expected shape: enabled degrades gracefully and similarly "
               "across magnitudes while at least one machine is "
               "unperturbed; the relative degradation improves on the "
               "static system by up to an order of magnitude."))
