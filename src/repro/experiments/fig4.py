"""Figure 4: varying the number of perturbed machines.

Q1 runs on three WS machines; 0, 1, 2 or all 3 of them are perturbed
(WS 10x/20x/30x costlier), with retrospective adaptations.  With at
least one unperturbed machine the adaptive system degrades very
gracefully and almost independently of the perturbation magnitude; the
static system degrades by up to an order of magnitude.
"""

from __future__ import annotations

import dataclasses
import functools

from repro.config import AdaptivityConfig, RESPONSE_R1
from repro.experiments.harness import BaselineCache, ExperimentReport, execute
from repro.workloads.proteins import DemoGridSpec
from repro.workloads.scenarios import perturb_ws_cost

FACTORS = (10.0, 20.0, 30.0)
PERTURBED_COUNTS = (0, 1, 2, 3)


def run() -> ExperimentReport:
    """Reproduce Fig. 4(a)-(c) as one table."""
    spec = dataclasses.replace(DemoGridSpec(), compute_machines=3)
    baselines = BaselineCache()
    rows = []
    for factor in FACTORS:
        for count in PERTURBED_COUNTS:
            perturb = functools.partial(perturb_ws_cost, factor=factor,
                                        machines=count)
            disabled = baselines.normalised(
                execute("Q1", AdaptivityConfig.disabled(), perturb=perturb,
                        spec=spec), "Q1", spec=spec)
            enabled = baselines.normalised(
                execute("Q1", AdaptivityConfig(response=RESPONSE_R1),
                        perturb=perturb, spec=spec), "Q1", spec=spec)
            rows.append([f"{factor:.0f} times", count, disabled, enabled])
    return ExperimentReport(
        experiment_id="fig4",
        title="Q1 on 3 machines, varying perturbed machines (Fig. 4)",
        columns=["magnitude", "perturbed machines",
                 "adaptivity disabled", "adaptivity enabled"],
        rows=rows,
        notes=("Expected shape: enabled degrades gracefully and similarly "
               "across magnitudes while at least one machine is "
               "unperturbed; the relative degradation improves on the "
               "static system by up to an order of magnitude."))
