"""Figure 5: rapid changes of resource performance.

The WS cost factor on the perturbed machine varies *per incoming
tuple*, normally distributed with a stable mean of 30x: ranges
[30,30] (the stable reference), [25,35], [20,40] and [1,60].  Both
prospective and retrospective adaptations are run; the paper's claim
is that performance under varying perturbations stays close to the
stable-perturbation case, i.e. the system adapts efficiently to rapid
changes.
"""

from __future__ import annotations

import functools

from repro.config import AdaptivityConfig, RESPONSE_R1, RESPONSE_R2
from repro.experiments.harness import BaselineCache, ExperimentReport, execute
from repro.workloads.scenarios import perturb_ws_cost_varying

RANGES = ((30.0, 30.0), (25.0, 35.0), (20.0, 40.0), (1.0, 60.0))


def run() -> ExperimentReport:
    """Reproduce Fig. 5."""
    baselines = BaselineCache()
    rows = []
    for low, high in RANGES:
        perturb = functools.partial(perturb_ws_cost_varying,
                                    low=low, high=high)
        prospective = baselines.normalised(
            execute("Q1", AdaptivityConfig(response=RESPONSE_R2),
                    perturb=perturb), "Q1")
        retrospective = baselines.normalised(
            execute("Q1", AdaptivityConfig(response=RESPONSE_R1),
                    perturb=perturb), "Q1")
        rows.append([f"[{low:.0f},{high:.0f}]", prospective, retrospective])
    return ExperimentReport(
        experiment_id="fig5",
        title="Q1 under changing perturbations, mean 30x (Fig. 5)",
        columns=["range", "prospective", "retrospective"],
        rows=rows,
        notes=("Expected shape: each column stays close to its [30,30] "
               "stable-perturbation value across all ranges."))
