"""Figure 5: rapid changes of resource performance.

The WS cost factor on the perturbed machine varies *per incoming
tuple*, normally distributed with a stable mean of 30x: ranges
[30,30] (the stable reference), [25,35], [20,40] and [1,60].  Both
prospective and retrospective adaptations are run; the paper's claim
is that performance under varying perturbations stays close to the
stable-perturbation case, i.e. the system adapts efficiently to rapid
changes.

The sweep is declared as :class:`SweepCell` data (a baseline cell plus
one cell per (range, response policy) point) for the parallel sweep
runner.
"""

from __future__ import annotations

import functools

from repro.config import AdaptivityConfig, RESPONSE_R1, RESPONSE_R2
from repro.experiments.harness import (
    ExperimentReport,
    SweepCell,
    SweepRunner,
    baseline_cell,
    execute,
)
from repro.workloads.scenarios import perturb_ws_cost_varying

RANGES = ((30.0, 30.0), (25.0, 35.0), (20.0, 40.0), (1.0, 60.0))


def _fig5_cell(low: float, high: float, response: str) -> float:
    """One Fig. 5 run: WS cost varying in [low, high] per tuple."""
    result = execute("Q1", AdaptivityConfig(response=response),
                     perturb=functools.partial(perturb_ws_cost_varying,
                                               low=low, high=high))
    return result.response_time_ms


def cells() -> list[SweepCell]:
    sweep = [SweepCell("Q1:baseline", baseline_cell, {"query_key": "Q1"})]
    for low, high in RANGES:
        for response in (RESPONSE_R2, RESPONSE_R1):
            sweep.append(SweepCell(
                f"Q1:[{low:g},{high:g}]:{response}", _fig5_cell,
                {"low": low, "high": high, "response": response}))
    return sweep


def run(jobs: int = 1) -> ExperimentReport:
    """Reproduce Fig. 5."""
    values = SweepRunner(jobs).run(cells())
    baseline_ms, points = values[0], iter(values[1:])
    rows = []
    for low, high in RANGES:
        prospective = next(points) / baseline_ms
        retrospective = next(points) / baseline_ms
        rows.append([f"[{low:.0f},{high:.0f}]", prospective, retrospective])
    return ExperimentReport(
        experiment_id="fig5",
        title="Q1 under changing perturbations, mean 30x (Fig. 5)",
        columns=["range", "prospective", "retrospective"],
        rows=rows,
        notes=("Expected shape: each column stays close to its [30,30] "
               "stable-perturbation value across all ranges."))
