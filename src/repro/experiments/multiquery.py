"""Multi-query scheduling: throughput and latency under offered load.

Not a figure from the paper — the paper adapts one query at a time —
but the ROADMAP's heavy-traffic direction: an open-loop Poisson
workload over the Q1/Q2 catalog is driven into the scheduler at
increasing arrival rates and concurrency limits, reporting admission
behaviour, throughput and response-time percentiles.  Each session
adapts with the default A1/R2 policies while contending for shared
machines through the fair-share capacity model.
"""

from __future__ import annotations

from repro.config import AdaptivityConfig, SchedulerConfig
from repro.experiments.harness import (
    ExperimentReport,
    SweepCell,
    SweepRunner,
    collect_metrics,
)
from repro.sched import WorkloadDriver, WorkloadSpec
from repro.workloads import DemoGrid, DemoGridSpec, Q1, Q2

#: Small relations keep a dozen full workload runs fast.
SPEC = DemoGridSpec(sequences_cardinality=120,
                    interactions_cardinality=180,
                    sequence_length=20,
                    compute_machines=2)

ARRIVAL_RATES_QPS = (0.2, 0.5, 1.0)
CONCURRENCY_LIMITS = (1, 4, 16)
DURATION_MS = 20000.0
MAX_QUEUED = 8


def drive(arrival_rate_qps: float, max_concurrent: int,
          seed: int = 0):
    """One open-loop run; returns the driver's report."""
    grid = DemoGrid(DemoGridSpec(
        sequences_cardinality=SPEC.sequences_cardinality,
        interactions_cardinality=SPEC.interactions_cardinality,
        sequence_length=SPEC.sequence_length,
        compute_machines=SPEC.compute_machines,
        seed=seed))
    scheduler = grid.scheduler(SchedulerConfig(
        max_concurrent=max_concurrent, max_queued=MAX_QUEUED))
    driver = WorkloadDriver(scheduler, WorkloadSpec(
        arrival_rate_qps=arrival_rate_qps,
        duration_ms=DURATION_MS,
        catalog=(Q1, Q2),
        adaptivity=AdaptivityConfig(decision_latency_ms=300.0)))
    report = driver.run()
    collect_metrics(grid, workload=True, rate_qps=arrival_rate_qps,
                    max_concurrent=max_concurrent)
    return report


def _load_cell(arrival_rate_qps: float, max_concurrent: int) -> list:
    """One open-loop run, reduced to its report row."""
    report = drive(arrival_rate_qps, max_concurrent)
    return [
        max_concurrent, arrival_rate_qps, report.offered, report.rejected,
        round(report.throughput_qps, 2),
        round(report.queue_wait_p95_ms / 1000.0, 2),
        round(report.response_p50_ms / 1000.0, 2),
        round(report.response_p95_ms / 1000.0, 2),
    ]


def cells() -> list[SweepCell]:
    return [
        SweepCell(f"mq:c{max_concurrent}:r{rate:g}", _load_cell,
                  {"arrival_rate_qps": rate,
                   "max_concurrent": max_concurrent})
        for max_concurrent in CONCURRENCY_LIMITS
        for rate in ARRIVAL_RATES_QPS
    ]


def run(jobs: int = 1) -> ExperimentReport:
    rows = SweepRunner(jobs).run(cells())
    return ExperimentReport(
        experiment_id="multiquery",
        title="Scheduler throughput/latency vs offered load "
              f"(open-loop Poisson, {DURATION_MS / 1000.0:g}s window)",
        columns=["max_conc", "rate_qps", "offered", "rejected",
                 "tput_qps", "wait_p95_s", "resp_p50_s", "resp_p95_s"],
        rows=rows,
        notes="Open-loop arrivals do not back off, so offered load "
              "beyond capacity surfaces as queue wait and, once the "
              "admission queue fills, rejections.")
