"""Command-line entry point: ``python -m repro.experiments <id>``."""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import EXPERIMENTS, render


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=("Reproduce the tables and figures of 'Adapting to "
                     "Changing Resource Performance in Grid Query "
                     "Processing' (VLDB DMG 2005)."))
    parser.add_argument(
        "experiments", nargs="+",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment ids to run ('all' runs every one)")
    args = parser.parse_args(argv)
    names = (sorted(EXPERIMENTS) if "all" in args.experiments
             else args.experiments)
    for name in names:
        started = time.time()
        report = EXPERIMENTS[name]()
        print(render(report))
        print(f"[{name} completed in {time.time() - started:.1f}s wall]")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
