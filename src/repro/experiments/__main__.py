"""Command-line entry point: ``python -m repro.experiments <id>``."""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.experiments import EXPERIMENTS, render
from repro.experiments.harness import MetricsSink, set_metrics_sink


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description=("Reproduce the tables and figures of 'Adapting to "
                     "Changing Resource Performance in Grid Query "
                     "Processing' (VLDB DMG 2005)."))
    parser.add_argument(
        "experiments", nargs="+",
        choices=sorted(EXPERIMENTS) + ["all", "fuzz"],
        help="experiment ids to run ('all' runs every one; 'fuzz' "
             "runs the scenario fuzzer and must be named explicitly)")
    parser.add_argument(
        "--metrics-dir", metavar="DIR", default=".",
        help="directory receiving one METRICS_<id>.jsonl per "
             "experiment (default: current directory)")
    parser.add_argument(
        "--no-metrics", action="store_true",
        help="skip writing the per-experiment metrics files")
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run each experiment's sweep cells over N worker "
             "processes (default: 1 = serial; results and metrics "
             "are identical whatever N is)")
    parser.add_argument(
        "--budget", type=int, default=50, metavar="N",
        help="fuzz only: number of scenarios to generate and check "
             "(default: 50)")
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="fuzz only: master seed of the scenario corpus "
             "(default: 0)")
    parser.add_argument(
        "--fuzz-out", metavar="DIR", default=None,
        help="fuzz only: directory receiving corpus.jsonl, "
             "weights.json and any shrunk repro artifacts "
             "(default: no artifact files)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.budget < 0:
        parser.error(f"--budget must be >= 0, got {args.budget}")
    # 'all' deliberately excludes the fuzzer: a campaign's budget and
    # artifact directory are an explicit choice, not a side effect.
    names = (sorted(EXPERIMENTS) if "all" in args.experiments
             else args.experiments)
    for name in names:
        started = time.time()
        sink = None if args.no_metrics else MetricsSink()
        previous = set_metrics_sink(sink)
        try:
            if name == "fuzz":
                from repro.scengen.fuzz import run as run_fuzz
                report = run_fuzz(jobs=args.jobs, budget=args.budget,
                                  seed=args.seed,
                                  out_dir=args.fuzz_out)
            else:
                report = EXPERIMENTS[name](jobs=args.jobs)
        finally:
            set_metrics_sink(previous)
        print(render(report))
        if sink is not None and sink.records:
            path = pathlib.Path(args.metrics_dir) / f"METRICS_{name}.jsonl"
            count = sink.write_jsonl(path)
            print(f"[metrics: {count} records -> {path}]")
        # Wall time goes to stderr: stdout must be byte-identical for
        # any --jobs value (the property tests diff it).
        print(f"[{name} completed in {time.time() - started:.1f}s wall]",
              file=sys.stderr)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
