"""The §3.2 "Overheads" experiments.

Three parts:

1. **Overhead decomposition** — Q1 without perturbation, adaptivity
   enabled: prospective overhead ~6%, retrospective ~15% (log
   management), reported together with the resulting tuple-distribution
   ratio between the two machines (paper: 1.21 prospective, 1.01
   retrospective — retrospective runs end nearly perfectly balanced).
2. **Monitoring frequency sweep** — Q1 with a 10x perturbation while
   the engine emits one M1 event per 0 (monitoring off), 10, 20 or 30
   tuples.  Both adaptation quality and overhead should be insensitive.
3. **Notification funnel** — raw engine events (100-300) vs detector ->
   diagnoser notifications (~10) vs actual rebalancings (1-3): the
   components filter effectively and no message flooding occurs.
"""

from __future__ import annotations

import functools

from repro.config import AdaptivityConfig, RESPONSE_R1, RESPONSE_R2
from repro.experiments.harness import BaselineCache, ExperimentReport, execute
from repro.workloads.scenarios import perturb_transient_load, perturb_ws_cost

M1_INTERVALS = (0, 10, 20, 30)


def run_overheads(jobs: int = 1) -> ExperimentReport:
    """Unperturbed Q1: adaptivity overhead and final tuple ratio.

    ``jobs`` is accepted for CLI uniformity and ignored: the sweep's
    runs share one BaselineCache and stay serial.

    Two variants per response type: a perfectly stable environment
    (no redistribution ever triggers) and one with per-call noise,
    where the system may adapt even though the services are nominally
    identical — the paper's "unnecessary adaptivity" case.
    """
    baselines = BaselineCache()
    rows = []
    for name, config, paper, paper_ratio in (
            ("prospective", AdaptivityConfig(response=RESPONSE_R2),
             1.062, 1.21),
            ("retrospective", AdaptivityConfig(response=RESPONSE_R1),
             1.15, 1.01)):
        for environment, perturb in (("stable", None),
                                     ("fluctuating",
                                      perturb_transient_load)):
            result = execute("Q1", config, perturb=perturb)
            rows.append([name, environment,
                         baselines.normalised(result, "Q1"), paper,
                         result.stats.consumer_imbalance_ratio, paper_ratio,
                         result.stats.adaptations_accepted])
    return ExperimentReport(
        experiment_id="overheads",
        title="Q1 adaptivity overhead without imbalance (§3.2)",
        columns=["response", "environment", "normalised time", "paper",
                 "tuple ratio", "paper ratio", "rebalances"],
        rows=rows,
        notes=("The fluctuating environment adds per-call noise so the "
               "system occasionally adapts although both services are "
               "nominally equal, as in the paper's real testbed."))


def run_monitoring_frequency(jobs: int = 1) -> ExperimentReport:
    """Q1 with 10x perturbation under different monitoring rates.

    ``jobs`` is accepted for CLI uniformity and ignored (serial sweep).
    """
    baselines = BaselineCache()
    perturb = functools.partial(perturb_ws_cost, factor=10.0)
    rows = []
    for interval in M1_INTERVALS:
        if interval == 0:
            config = AdaptivityConfig.disabled()
            label = "off"
        else:
            config = AdaptivityConfig(m1_interval=interval)
            label = f"1 per {interval} tuples"
        result = execute("Q1", config, perturb=perturb)
        rows.append([label,
                     baselines.normalised(result, "Q1"),
                     result.stats.raw_monitoring_events,
                     result.stats.cost_notifications,
                     result.stats.adaptations_accepted])
    return ExperimentReport(
        experiment_id="monitoring-frequency",
        title="Q1 @10x under different monitoring frequencies (§3.2)",
        columns=["monitoring", "normalised time", "raw events",
                 "detector notifications", "rebalances"],
        rows=rows,
        notes=("Expected: adaptation quality and overhead insensitive to "
               "the monitoring frequency; raw events in the hundreds, "
               "detector->diagnoser notifications around ten, 1-3 "
               "rebalances — no flooding."))
