"""Figures 3(a) and 3(b): the join under sleep perturbations, and Q1
with a doubled dataset.

* Fig. 3(a): Q2 with a sleep of 10/50/100 ms before each join tuple on
  one machine; retrospective adaptations (A1+R1).  Retrospective bars
  stay roughly flat as the perturbation grows.
* Fig. 3(b): Q1 with 6000 instead of 3000 tuples, prospective
  adaptations, WS 10x/20x/30x costlier.  With more data the adaptation
  happens relatively earlier, so prospective results approach the
  retrospective ones.
"""

from __future__ import annotations

import dataclasses
import functools

from repro.config import AdaptivityConfig, RESPONSE_R1, RESPONSE_R2
from repro.experiments.harness import BaselineCache, ExperimentReport, execute
from repro.workloads.proteins import DemoGridSpec
from repro.workloads.scenarios import perturb_join_sleep, perturb_ws_cost

SLEEP_MS = (10.0, 50.0, 100.0)
FACTORS = (10.0, 20.0, 30.0)

#: Fig. 2(a)'s enabled series, the comparison point for Fig. 3(b).
PAPER_FIG3B_SINGLE_SIZE = {10.0: 1.45, 20.0: 2.48, 30.0: 3.79}


def run_fig3a() -> ExperimentReport:
    """Fig. 3(a): Q2, retrospective adaptations, growing sleeps."""
    baselines = BaselineCache()
    rows = []
    for sleep_ms in SLEEP_MS:
        perturb = functools.partial(perturb_join_sleep, sleep_ms=sleep_ms)
        disabled = baselines.normalised(
            execute("Q2", AdaptivityConfig.disabled(), perturb=perturb),
            "Q2")
        enabled = baselines.normalised(
            execute("Q2", AdaptivityConfig(response=RESPONSE_R1),
                    perturb=perturb), "Q2")
        rows.append([f"{sleep_ms:.0f}msec", disabled, enabled])
    return ExperimentReport(
        experiment_id="fig3a",
        title="Q2, retrospective adaptations (Fig. 3a)",
        columns=["sleep", "adaptivity disabled", "adaptivity enabled"],
        rows=rows,
        notes=("Expected shape: the enabled bars remain similar as the "
               "sleep grows (retrospective adaptations are insensitive "
               "to perturbation size)."))


def run_fig3b() -> ExperimentReport:
    """Fig. 3(b): Q1 at double data size, prospective adaptations."""
    spec = dataclasses.replace(DemoGridSpec(), sequences_cardinality=6000)
    baselines = BaselineCache()
    rows = []
    for factor in FACTORS:
        perturb = functools.partial(perturb_ws_cost, factor=factor)
        disabled = baselines.normalised(
            execute("Q1", AdaptivityConfig.disabled(), perturb=perturb,
                    spec=spec), "Q1", spec=spec)
        enabled = baselines.normalised(
            execute("Q1", AdaptivityConfig(response=RESPONSE_R2),
                    perturb=perturb, spec=spec), "Q1", spec=spec)
        rows.append([f"{factor:.0f} times", disabled, enabled,
                     PAPER_FIG3B_SINGLE_SIZE[factor]])
    return ExperimentReport(
        experiment_id="fig3b",
        title="Q1 with double data size, prospective (Fig. 3b)",
        columns=["perturbation", "adaptivity disabled",
                 "adaptivity enabled", "enabled @3000 tuples (fig2a)"],
        rows=rows,
        notes=("Expected shape: with 6000 tuples the prospective results "
               "improve on the 3000-tuple ones and approach the "
               "retrospective behaviour."))
