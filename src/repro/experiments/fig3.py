"""Figures 3(a) and 3(b): the join under sleep perturbations, and Q1
with a doubled dataset.

* Fig. 3(a): Q2 with a sleep of 10/50/100 ms before each join tuple on
  one machine; retrospective adaptations (A1+R1).  Retrospective bars
  stay roughly flat as the perturbation grows.
* Fig. 3(b): Q1 with 6000 instead of 3000 tuples, prospective
  adaptations, WS 10x/20x/30x costlier.  With more data the adaptation
  happens relatively earlier, so prospective results approach the
  retrospective ones.

Both sweeps are declared as :class:`SweepCell` data (a baseline cell
plus one cell per measured point) for the parallel sweep runner.
"""

from __future__ import annotations

import dataclasses
import functools

from repro.config import AdaptivityConfig, RESPONSE_R1, RESPONSE_R2
from repro.experiments.harness import (
    ExperimentReport,
    SweepCell,
    SweepRunner,
    baseline_cell,
    execute,
)
from repro.workloads.proteins import DemoGridSpec
from repro.workloads.scenarios import perturb_join_sleep, perturb_ws_cost

SLEEP_MS = (10.0, 50.0, 100.0)
FACTORS = (10.0, 20.0, 30.0)

#: Fig. 2(a)'s enabled series, the comparison point for Fig. 3(b).
PAPER_FIG3B_SINGLE_SIZE = {10.0: 1.45, 20.0: 2.48, 30.0: 3.79}

#: Fig. 3(b)'s double-size dataset.
FIG3B_SPEC = dataclasses.replace(DemoGridSpec(), sequences_cardinality=6000)


def _fig3a_cell(sleep_ms: float, enabled: bool) -> float:
    """One Fig. 3(a) run: Q2 with a per-tuple join sleep."""
    adaptivity = (AdaptivityConfig(response=RESPONSE_R1) if enabled
                  else AdaptivityConfig.disabled())
    result = execute("Q2", adaptivity,
                     perturb=functools.partial(perturb_join_sleep,
                                               sleep_ms=sleep_ms))
    return result.response_time_ms


def _fig3b_cell(factor: float, enabled: bool) -> float:
    """One Fig. 3(b) run: double-size Q1, WS ``factor``x costlier."""
    adaptivity = (AdaptivityConfig(response=RESPONSE_R2) if enabled
                  else AdaptivityConfig.disabled())
    result = execute("Q1", adaptivity,
                     perturb=functools.partial(perturb_ws_cost,
                                               factor=factor),
                     spec=FIG3B_SPEC)
    return result.response_time_ms


def fig3a_cells() -> list[SweepCell]:
    cells = [SweepCell("Q2:baseline", baseline_cell, {"query_key": "Q2"})]
    for sleep_ms in SLEEP_MS:
        for enabled in (False, True):
            cells.append(SweepCell(
                f"Q2:{sleep_ms:g}ms:{'adaptive' if enabled else 'static'}",
                _fig3a_cell, {"sleep_ms": sleep_ms, "enabled": enabled}))
    return cells


def fig3b_cells() -> list[SweepCell]:
    cells = [SweepCell("Q1x2:baseline", baseline_cell,
                       {"query_key": "Q1", "spec": FIG3B_SPEC})]
    for factor in FACTORS:
        for enabled in (False, True):
            cells.append(SweepCell(
                f"Q1x2:{factor:g}x:{'adaptive' if enabled else 'static'}",
                _fig3b_cell, {"factor": factor, "enabled": enabled}))
    return cells


def run_fig3a(jobs: int = 1) -> ExperimentReport:
    """Fig. 3(a): Q2, retrospective adaptations, growing sleeps."""
    values = SweepRunner(jobs).run(fig3a_cells())
    baseline_ms, points = values[0], iter(values[1:])
    rows = []
    for sleep_ms in SLEEP_MS:
        disabled = next(points) / baseline_ms
        enabled = next(points) / baseline_ms
        rows.append([f"{sleep_ms:.0f}msec", disabled, enabled])
    return ExperimentReport(
        experiment_id="fig3a",
        title="Q2, retrospective adaptations (Fig. 3a)",
        columns=["sleep", "adaptivity disabled", "adaptivity enabled"],
        rows=rows,
        notes=("Expected shape: the enabled bars remain similar as the "
               "sleep grows (retrospective adaptations are insensitive "
               "to perturbation size)."))


def run_fig3b(jobs: int = 1) -> ExperimentReport:
    """Fig. 3(b): Q1 at double data size, prospective adaptations."""
    values = SweepRunner(jobs).run(fig3b_cells())
    baseline_ms, points = values[0], iter(values[1:])
    rows = []
    for factor in FACTORS:
        disabled = next(points) / baseline_ms
        enabled = next(points) / baseline_ms
        rows.append([f"{factor:.0f} times", disabled, enabled,
                     PAPER_FIG3B_SINGLE_SIZE[factor]])
    return ExperimentReport(
        experiment_id="fig3b",
        title="Q1 with double data size, prospective (Fig. 3b)",
        columns=["perturbation", "adaptivity disabled",
                 "adaptivity enabled", "enabled @3000 tuples (fig2a)"],
        rows=rows,
        notes=("Expected shape: with 6000 tuples the prospective results "
               "improve on the 3000-tuple ones and approach the "
               "retrospective behaviour."))
