"""Table 1: performance of queries in normalised units.

Three rows — Q1 with prospective response (R2), Q1 with retrospective
response (R1), Q2 with retrospective response — each under four
configurations: {no adaptivity, adaptivity} x {no imbalance,
imbalance}.  The Q1 imbalance makes one WS call 10x costlier; the Q2
imbalance inserts a 10 ms sleep before each join tuple on one machine.
All values are normalised to the no-ad/no-imb run of the same query.

The table is declared as :class:`SweepCell` data — one baseline cell
per query plus three measured cells per table row — for the parallel
sweep runner.
"""

from __future__ import annotations

import functools

from repro.config import AdaptivityConfig, RESPONSE_R1, RESPONSE_R2
from repro.experiments.harness import (
    ExperimentReport,
    SweepCell,
    SweepRunner,
    baseline_cell,
    execute,
)
from repro.workloads.scenarios import perturb_join_sleep, perturb_ws_cost

#: The paper's reported values, for side-by-side comparison.
PAPER_VALUES = {
    ("Q1", RESPONSE_R2): (1.0, 1.059, 3.53, 1.45),
    ("Q1", RESPONSE_R1): (1.0, 1.15, 3.53, 1.57),
    ("Q2", RESPONSE_R1): (1.0, 1.11, 1.71, 1.31),
}

#: The (query, response policy) combinations of the table's rows.
CONFIGURATIONS = (("Q1", RESPONSE_R2), ("Q1", RESPONSE_R1),
                  ("Q2", RESPONSE_R1))


def _perturb_for(query_key: str):
    if query_key == "Q1":
        return functools.partial(perturb_ws_cost, factor=10.0)
    return functools.partial(perturb_join_sleep, sleep_ms=10.0)


def _table1_cell(query_key: str, response: str, adaptive: bool,
                 imbalance: bool) -> float:
    """One Table 1 run."""
    adaptivity = (AdaptivityConfig(response=response) if adaptive
                  else AdaptivityConfig.disabled())
    perturb = _perturb_for(query_key) if imbalance else None
    result = execute(query_key, adaptivity, perturb=perturb)
    return result.response_time_ms


def cells() -> list[SweepCell]:
    sweep = [
        SweepCell("Q1:baseline", baseline_cell, {"query_key": "Q1"}),
        SweepCell("Q2:baseline", baseline_cell, {"query_key": "Q2"}),
    ]
    for query_key, response in CONFIGURATIONS:
        for adaptive, imbalance in ((True, False), (False, True),
                                    (True, True)):
            sweep.append(SweepCell(
                f"{query_key}:{response}:"
                f"{'ad' if adaptive else 'no-ad'}/"
                f"{'imb' if imbalance else 'no-imb'}",
                _table1_cell,
                {"query_key": query_key, "response": response,
                 "adaptive": adaptive, "imbalance": imbalance}))
    return sweep


def run(jobs: int = 1) -> ExperimentReport:
    """Reproduce Table 1."""
    values = SweepRunner(jobs).run(cells())
    baselines = {"Q1": values[0], "Q2": values[1]}
    points = iter(values[2:])
    rows = []
    for query_key, response in CONFIGURATIONS:
        baseline_ms = baselines[query_key]
        ad_no_imb = next(points) / baseline_ms
        no_ad_imb = next(points) / baseline_ms
        ad_imb = next(points) / baseline_ms
        paper = PAPER_VALUES[(query_key, response)]
        rows.append([f"{query_key} - {response}",
                     1.0, ad_no_imb, no_ad_imb, ad_imb,
                     f"{paper[1]:.2f}/{paper[2]:.2f}/{paper[3]:.2f}"])
    return ExperimentReport(
        experiment_id="table1",
        title="Performance of queries in normalised units (Table 1)",
        columns=["Query-Response", "no ad/no imb", "ad/no imb",
                 "no ad/imb", "ad/imb", "paper (ad-noimb/noad-imb/ad-imb)"],
        rows=rows,
        notes=("Q1 imbalance: one WS call 10x costlier.  "
               "Q2 imbalance: sleep(10ms) per join tuple on one machine."))
