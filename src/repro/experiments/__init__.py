"""Reproductions of every table and figure in the paper's evaluation.

Run them all from the command line::

    python -m repro.experiments all

or individually (``table1``, ``fig2a``, ``fig2b``, ``fig3a``,
``fig3b``, ``fig4``, ``fig5``, ``overheads``, ``monitoring``,
``recovery``, ``multiquery``, ``chaos``, ``resilience``,
``tournament``, ``tournament-smoke``).
"""

from repro.experiments import (
    chaos,
    fig2,
    fig3,
    fig4,
    fig5,
    multiquery,
    overheads,
    recovery,
    resilience,
    table1,
    tournament,
)
from repro.experiments.harness import (
    BaselineCache,
    ExperimentReport,
    engine_config_for,
    execute,
)
from repro.experiments.report import render

#: Registry of runnable experiments: id -> zero-argument callable.
EXPERIMENTS = {
    "table1": table1.run,
    "fig2a": fig2.run_fig2a,
    "fig2b": fig2.run_fig2b,
    "fig3a": fig3.run_fig3a,
    "fig3b": fig3.run_fig3b,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "multiquery": multiquery.run,
    "overheads": overheads.run_overheads,
    "recovery": recovery.run,
    "monitoring": overheads.run_monitoring_frequency,
    "chaos": chaos.run,
    "resilience": resilience.run,
    "tournament": tournament.run,
    "tournament-smoke": tournament.run_smoke,
}

__all__ = [
    "BaselineCache",
    "EXPERIMENTS",
    "ExperimentReport",
    "engine_config_for",
    "execute",
    "render",
]
