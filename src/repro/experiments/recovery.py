"""Extension experiment: the cost of surviving machine failures.

Not part of the paper's evaluation (its fault-tolerance substrate [18]
is cited, not measured), but a natural question for the system this
repository builds: what does losing an evaluation machine cost, and
how does it compose with adaptive rebalancing?

Q1 runs with fault tolerance enabled; one compute machine crashes at
different points of the run (early feed, late feed, processing tail),
with a spare standing by.  Reported values are normalised to the
failure-free run under the same configuration.
"""

from __future__ import annotations

from repro.config import AdaptivityConfig, FaultToleranceConfig
from repro.experiments.harness import ExperimentReport
from repro.workloads.proteins import DemoGrid, DemoGridSpec
from repro.workloads.queries import Q1

FAILURE_TIMES_MS = (3000.0, 12000.0, 19000.0)

_SPEC = DemoGridSpec(spare_machines=1)
_FT = FaultToleranceConfig(enabled=True)


def _run(fail_at_ms: float | None):
    grid = DemoGrid(_SPEC, fault_tolerance=_FT)
    if fail_at_ms is not None:
        grid.fail_machine_at("compute-2", at_ms=fail_at_ms)
    return grid.run(Q1, AdaptivityConfig.disabled())


def run(jobs: int = 1) -> ExperimentReport:
    """Failure-time sweep for Q1 (extension; not a paper artefact).

    ``jobs`` is accepted for CLI uniformity and ignored (serial sweep).
    """
    baseline = _run(None)
    baseline_ms = baseline.response_time_ms
    rows = []
    for fail_at in FAILURE_TIMES_MS:
        result = _run(fail_at)
        rows.append([
            f"{fail_at / 1000.0:.0f}s",
            result.response_time_ms / baseline_ms,
            result.stats.machines_recovered,
            result.stats.tuples_replayed_for_recovery,
            result.stats.result_count,
        ])
    return ExperimentReport(
        experiment_id="recovery",
        title="Q1 under machine failure with log-replay recovery "
              "(extension)",
        columns=["failure at", "normalised time", "recovered",
                 "tuples replayed", "results"],
        rows=rows,
        notes=("Normalised to the failure-free run (fault tolerance "
               "enabled, recovery logging on).  Every run returns the "
               "complete result set; the overhead is the detection "
               "delay plus reprocessing the replayed backlog."))
