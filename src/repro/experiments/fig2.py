"""Figures 2(a) and 2(b): Q1 under growing perturbations.

* Fig. 2(a): prospective adaptations (A1+R2) with the perturbed WS
  10x/20x/30x costlier, adaptivity disabled vs enabled.
* Fig. 2(b): the policy matrix {A1+R2, A1+R1, A2+R2} over the same
  perturbations, showing that (i) ignoring communication cost (A1)
  yields better repartitioning when pipelining overlaps communication,
  and (ii) retrospective adaptations scale better with perturbation
  size.
"""

from __future__ import annotations

import functools

from repro.config import (
    ASSESSMENT_A1,
    ASSESSMENT_A2,
    AdaptivityConfig,
    RESPONSE_R1,
    RESPONSE_R2,
)
from repro.experiments.harness import BaselineCache, ExperimentReport, execute
from repro.workloads.scenarios import perturb_ws_cost

PERTURBATION_FACTORS = (10.0, 20.0, 30.0)

#: Paper series (read off Fig. 2a): disabled / enabled.
PAPER_FIG2A = {10.0: (3.53, 1.45), 20.0: (6.66, 2.48), 30.0: (9.76, 3.79)}


def run_fig2a() -> ExperimentReport:
    """Fig. 2(a): Q1, prospective adaptations, adaptivity off vs on."""
    baselines = BaselineCache()
    rows = []
    for factor in PERTURBATION_FACTORS:
        perturb = functools.partial(perturb_ws_cost, factor=factor)
        disabled = baselines.normalised(
            execute("Q1", AdaptivityConfig.disabled(), perturb=perturb),
            "Q1")
        enabled = baselines.normalised(
            execute("Q1", AdaptivityConfig(response=RESPONSE_R2),
                    perturb=perturb), "Q1")
        paper_disabled, paper_enabled = PAPER_FIG2A[factor]
        rows.append([f"{factor:.0f} times", disabled, enabled,
                     paper_disabled, paper_enabled])
    return ExperimentReport(
        experiment_id="fig2a",
        title="Q1, prospective adaptations (Fig. 2a)",
        columns=["perturbation", "adaptivity disabled", "adaptivity enabled",
                 "paper disabled", "paper enabled"],
        rows=rows)


def run_fig2b() -> ExperimentReport:
    """Fig. 2(b): Q1 under the three adaptivity policy combinations."""
    baselines = BaselineCache()
    policies = (
        ("A1-R2", AdaptivityConfig(assessment=ASSESSMENT_A1,
                                   response=RESPONSE_R2)),
        ("A1-R1", AdaptivityConfig(assessment=ASSESSMENT_A1,
                                   response=RESPONSE_R1)),
        ("A2-R2", AdaptivityConfig(assessment=ASSESSMENT_A2,
                                   response=RESPONSE_R2)),
    )
    rows = []
    for factor in PERTURBATION_FACTORS:
        perturb = functools.partial(perturb_ws_cost, factor=factor)
        values = [baselines.normalised(
            execute("Q1", config, perturb=perturb), "Q1")
            for _name, config in policies]
        rows.append([f"{factor:.0f} times"] + values)
    return ExperimentReport(
        experiment_id="fig2b",
        title="Q1 under different adaptivity policies (Fig. 2b)",
        columns=["perturbation"] + [name for name, _cfg in policies],
        rows=rows,
        notes=("Expected shape: A1-R2 <= A2-R2 (pipelining hides "
               "communication), and A1-R1 roughly flat across "
               "perturbation sizes."))
