"""Figures 2(a) and 2(b): Q1 under growing perturbations.

* Fig. 2(a): prospective adaptations (A1+R2) with the perturbed WS
  10x/20x/30x costlier, adaptivity disabled vs enabled.
* Fig. 2(b): the policy matrix {A1+R2, A1+R1, A2+R2} over the same
  perturbations, showing that (i) ignoring communication cost (A1)
  yields better repartitioning when pipelining overlaps communication,
  and (ii) retrospective adaptations scale better with perturbation
  size.

Both sweeps declare their runs as :class:`SweepCell` data — one
baseline cell plus one cell per (perturbation, policy) point — so the
runner can execute them serially or over a process pool with identical
output.
"""

from __future__ import annotations

import functools

from repro.config import (
    ASSESSMENT_A1,
    ASSESSMENT_A2,
    AdaptivityConfig,
    RESPONSE_R1,
    RESPONSE_R2,
)
from repro.experiments.harness import (
    ExperimentReport,
    SweepCell,
    SweepRunner,
    baseline_cell,
    execute,
)
from repro.workloads.scenarios import perturb_ws_cost

PERTURBATION_FACTORS = (10.0, 20.0, 30.0)

#: Paper series (read off Fig. 2a): disabled / enabled.
PAPER_FIG2A = {10.0: (3.53, 1.45), 20.0: (6.66, 2.48), 30.0: (9.76, 3.79)}

#: Fig. 2(b)'s policy matrix.
POLICIES = (
    ("A1-R2", ASSESSMENT_A1, RESPONSE_R2),
    ("A1-R1", ASSESSMENT_A1, RESPONSE_R1),
    ("A2-R2", ASSESSMENT_A2, RESPONSE_R2),
)


def _fig2a_cell(factor: float, enabled: bool) -> float:
    """One Fig. 2(a) run: Q1, WS ``factor``x costlier."""
    adaptivity = (AdaptivityConfig(response=RESPONSE_R2) if enabled
                  else AdaptivityConfig.disabled())
    result = execute("Q1", adaptivity,
                     perturb=functools.partial(perturb_ws_cost,
                                               factor=factor))
    return result.response_time_ms


def _fig2b_cell(factor: float, assessment: str, response: str) -> float:
    """One Fig. 2(b) run: Q1 under one policy combination."""
    result = execute(
        "Q1", AdaptivityConfig(assessment=assessment, response=response),
        perturb=functools.partial(perturb_ws_cost, factor=factor))
    return result.response_time_ms


def fig2a_cells() -> list[SweepCell]:
    cells = [SweepCell("Q1:baseline", baseline_cell, {"query_key": "Q1"})]
    for factor in PERTURBATION_FACTORS:
        for enabled in (False, True):
            cells.append(SweepCell(
                f"Q1:{factor:g}x:{'adaptive' if enabled else 'static'}",
                _fig2a_cell, {"factor": factor, "enabled": enabled}))
    return cells


def fig2b_cells() -> list[SweepCell]:
    cells = [SweepCell("Q1:baseline", baseline_cell, {"query_key": "Q1"})]
    for factor in PERTURBATION_FACTORS:
        for name, assessment, response in POLICIES:
            cells.append(SweepCell(
                f"Q1:{factor:g}x:{name}", _fig2b_cell,
                {"factor": factor, "assessment": assessment,
                 "response": response}))
    return cells


def run_fig2a(jobs: int = 1) -> ExperimentReport:
    """Fig. 2(a): Q1, prospective adaptations, adaptivity off vs on."""
    values = SweepRunner(jobs).run(fig2a_cells())
    baseline_ms, points = values[0], iter(values[1:])
    rows = []
    for factor in PERTURBATION_FACTORS:
        disabled = next(points) / baseline_ms
        enabled = next(points) / baseline_ms
        paper_disabled, paper_enabled = PAPER_FIG2A[factor]
        rows.append([f"{factor:.0f} times", disabled, enabled,
                     paper_disabled, paper_enabled])
    return ExperimentReport(
        experiment_id="fig2a",
        title="Q1, prospective adaptations (Fig. 2a)",
        columns=["perturbation", "adaptivity disabled", "adaptivity enabled",
                 "paper disabled", "paper enabled"],
        rows=rows)


def run_fig2b(jobs: int = 1) -> ExperimentReport:
    """Fig. 2(b): Q1 under the three adaptivity policy combinations."""
    values = SweepRunner(jobs).run(fig2b_cells())
    baseline_ms, points = values[0], iter(values[1:])
    rows = []
    for factor in PERTURBATION_FACTORS:
        policy_values = [next(points) / baseline_ms for _policy in POLICIES]
        rows.append([f"{factor:.0f} times"] + policy_values)
    return ExperimentReport(
        experiment_id="fig2b",
        title="Q1 under different adaptivity policies (Fig. 2b)",
        columns=["perturbation"] + [name for name, _a, _r in POLICIES],
        rows=rows,
        notes=("Expected shape: A1-R2 <= A2-R2 (pipelining hides "
               "communication), and A1-R1 roughly flat across "
               "perturbation sizes."))
