"""Name-keyed registry of adaptation policies.

The registry is the single authority on which controllers exist: the
config layer validates ``AdaptivityConfig.policy`` (and the legacy
``assessment``/``response`` axes) against it, the CLI derives its
``--policy`` choices from it, and the tournament experiment races
every registered name.  Paper variants register with their
``(assessment, response)`` axes so the registry can both resolve
``paper-A2R1`` to the right knob settings and enumerate the valid
axis values for error messages.
"""

from __future__ import annotations

import typing

from repro.errors import ConfigurationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.config import AdaptivityConfig
    from repro.policy.base import AdaptationPolicy


class PolicyRegistry:
    """Maps policy names to :class:`AdaptationPolicy` subclasses."""

    def __init__(self) -> None:
        self._classes: dict[str, type] = {}
        #: name -> (assessment, response) for registered paper variants.
        self._paper_axes: dict[str, tuple[str, str]] = {}

    def register(self, name: str, cls: type,
                 paper_axes: tuple[str, str] | None = None) -> type:
        """Register ``cls`` under ``name``; returns ``cls``.

        ``paper_axes`` marks a paper variant and records which
        ``(assessment, response)`` pair the name denotes.
        """
        if name in self._classes:
            raise ValueError(f"policy {name!r} already registered")
        self._classes[name] = cls
        if paper_axes is not None:
            self._paper_axes[name] = paper_axes
        return cls

    def __contains__(self, name: str) -> bool:
        return name in self._classes

    def names(self) -> list[str]:
        return sorted(self._classes)

    def get(self, name: str) -> type:
        try:
            return self._classes[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown adaptation policy: {name!r} "
                f"(registered policies: {', '.join(self.names())})"
                ) from None

    def paper_axes(self, name: str) -> tuple[str, str] | None:
        """The ``(assessment, response)`` pair of a paper variant."""
        return self._paper_axes.get(name)

    def assessments(self) -> list[str]:
        """Valid values of the legacy ``assessment`` axis."""
        return sorted({a for a, _r in self._paper_axes.values()})

    def responses(self) -> list[str]:
        """Valid values of the legacy ``response`` axis."""
        return sorted({r for _a, r in self._paper_axes.values()})

    def known_params(self, name: str) -> dict:
        """Tunable parameter defaults of the policy called ``name``."""
        return dict(self.get(name).PARAMS)

    def validate_params(self, name: str,
                        params: typing.Mapping[str, typing.Any]) -> None:
        """Reject parameter keys the policy does not declare."""
        known = self.known_params(name)
        unknown = sorted(set(params) - set(known))
        if unknown:
            options = (", ".join(sorted(known)) if known
                       else "none — the policy has no tunables")
            raise ConfigurationError(
                f"policy {name!r} does not accept parameter(s) "
                f"{', '.join(repr(key) for key in unknown)} "
                f"(known parameters: {options})")

    def create(self, config: "AdaptivityConfig",
               name: str | None = None) -> "AdaptationPolicy":
        """Instantiate the policy ``config`` selects (or ``name``)."""
        resolved = name if name is not None else config.policy_name
        cls = self.get(resolved)
        instance = cls(config)
        instance.name = resolved
        return instance
