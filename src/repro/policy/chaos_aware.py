"""Chaos-aware controller: fold quarantine signals into the costs.

The Responder's quarantine machinery (suspect clones get their weight
driven to zero, reintegrated clones get their old share back) runs
*outside* the paper controller — which therefore has to be locked out
entirely while any clone is quarantined, lest it hand work back to a
stalled machine.  This policy instead subscribes to those signals via
the lifecycle hooks and folds them into its own cost estimates:

* a **quarantined** clone's weight is pinned to zero in every proposal
  (``quarantine_aware`` tells the Responder proposals stay valid);
* a **reintegrated** clone is not trusted at face value: its assessed
  cost is inflated by ``reintegration_penalty``, decaying with
  half-life ``penalty_halflife_ms``, so work ramps back gradually as
  the clone re-proves itself instead of snapping back to the full
  pre-quarantine share.
"""

from __future__ import annotations

import typing

from repro.engine.distribution import max_relative_change, normalise_weights
from repro.policy.base import AdaptationPolicy, DEPLOY, Verdict

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.diagnoser import BalancingTask


class ChaosAwarePolicy(AdaptationPolicy):
    """Quarantine-aware inverse-cost controller with re-entry ramping."""

    PARAMS = {
        #: Cost multiplier applied to a clone at the moment of its
        #: reintegration (1.0 disables the ramp).
        "reintegration_penalty": 3.0,
        #: Half-life (simulated ms) of the reintegration penalty's
        #: exponential decay toward 1.0.
        "penalty_halflife_ms": 2000.0,
    }

    quarantine_aware = True

    def __init__(self, config) -> None:
        super().__init__(config)
        #: subplan_id -> set of quarantined instance indices.
        self._quarantined: dict[str, set[int]] = {}
        #: (subplan_id, index) -> reintegration timestamp (sim ms).
        self._reintegrated_at: dict[tuple[str, int], float] = {}

    # -- lifecycle signals ------------------------------------------------

    def on_quarantine(self, subplan_id: str, instance_index: int,
                      now: float) -> None:
        self._quarantined.setdefault(subplan_id, set()).add(instance_index)
        self._reintegrated_at.pop((subplan_id, instance_index), None)

    def on_reintegration(self, subplan_id: str, instance_index: int,
                         now: float) -> None:
        self._quarantined.get(subplan_id, set()).discard(instance_index)
        self._reintegrated_at[(subplan_id, instance_index)] = now

    # -- cost shaping -----------------------------------------------------

    def _penalty(self, subplan_id: str, index: int, now: float) -> float:
        """The decayed cost multiplier of a reintegrated clone."""
        reintegrated_at = self._reintegrated_at.get((subplan_id, index))
        if reintegrated_at is None:
            return 1.0
        penalty = self.params["reintegration_penalty"]
        halflife = self.params["penalty_halflife_ms"]
        if penalty <= 1.0 or halflife <= 0:
            return 1.0
        decay = 0.5 ** ((now - reintegrated_at) / halflife)
        if penalty * decay <= 1.001:
            # Fully decayed: forget the episode.
            del self._reintegrated_at[(subplan_id, index)]
            return 1.0
        return 1.0 + (penalty - 1.0) * decay

    def propose(self, task: "BalancingTask", current: list[float],
                costs: list[float], now: float) -> list[float] | None:
        quarantined = self._quarantined.get(task.subplan_id, set())
        shaped = []
        for index, cost in enumerate(costs):
            if index in quarantined:
                shaped.append(0.0)
            else:
                shaped.append(1.0 / (cost * self._penalty(
                    task.subplan_id, index, now)))
        total = sum(shaped)
        if total <= 0:
            return None  # every clone suspect: nowhere to shift work
        proposed = list(normalise_weights(shaped))
        if max_relative_change(current, proposed) <= self.config.thres_a:
            return None
        return proposed

    def decide(self, state, proposal, now: float) -> Verdict:
        verdict = super().decide(state, proposal, now)
        if verdict.action != DEPLOY:
            return verdict
        # A proposal assessed before a quarantine fired may still carry
        # weight at a now-quarantined index: re-mask at decision time.
        quarantined = self._quarantined.get(proposal.subplan_id, set())
        if not quarantined:
            return verdict
        masked = [0.0 if index in quarantined else weight
                  for index, weight in enumerate(verdict.weights)]
        if sum(masked) <= 0:
            return Verdict.skip("quarantined")
        return Verdict.deploy(normalise_weights(masked))
