"""PID-style weight controller: step toward the target, don't jump.

The paper controller deploys the inverse-cost vector in one move.
When the cost estimate is itself a lagging, noisy signal, that full
jump overshoots — the instance that looked slow receives almost no
work, its windowed average then looks *fast*, and the next proposal
jumps back.  This policy instead treats the inverse-cost vector as a
setpoint and steps the deployed weights toward it:

    w <- w + kp * e + ki * sum(e)      with  e = target - w

``kp`` scales the proportional response to the current error, ``ki``
the integral response to accumulated error (so a persistent small
imbalance is eventually corrected even when each step's error is
below noise).  The integral term is clamped (anti-windup) and the
whole vector re-normalised after each step.

A partial step is by construction closer to the current vector than
the full jump, so the policy lowers the proposal/decision gates to
``thres_a * deadband_ratio`` — otherwise its own steps would be
discarded as below-threshold by the Responder's re-check.
"""

from __future__ import annotations

import typing

from repro.engine.distribution import (
    inverse_cost_weights,
    max_relative_change,
    normalise_weights,
)
from repro.policy.base import AdaptationPolicy

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.diagnoser import BalancingTask

#: Anti-windup clamp on each integral-error component.
_INTEGRAL_CLAMP = 1.0

#: Weight floor after a step: a component may approach zero but never
#: reach it, so a starved instance can always win work back.
_WEIGHT_FLOOR = 1e-6


class PidPolicy(AdaptationPolicy):
    """Steps the weight vector toward the inverse-cost setpoint."""

    PARAMS = {
        #: Proportional gain on the current error.
        "kp": 0.5,
        #: Integral gain on the accumulated error.
        "ki": 0.15,
        #: Gate scaling: proposals and Responder re-checks use
        #: ``thres_a * deadband_ratio`` so partial steps survive.
        "deadband_ratio": 0.5,
    }

    def __init__(self, config) -> None:
        super().__init__(config)
        #: subplan_id -> accumulated per-element error (integral term).
        self._integral: dict[str, list[float]] = {}

    def decision_threshold(self) -> float:
        return self.config.thres_a * self.params["deadband_ratio"]

    def propose(self, task: "BalancingTask", current: list[float],
                costs: list[float], now: float) -> list[float] | None:
        target = inverse_cost_weights(costs)
        if max_relative_change(current, target) <= self.decision_threshold():
            # Inside the deadband: bleed off the integral so an old
            # accumulated error cannot fire a step on its own later.
            self._integral.pop(task.subplan_id, None)
            return None
        integral = self._integral.setdefault(task.subplan_id,
                                             [0.0] * len(current))
        kp, ki = self.params["kp"], self.params["ki"]
        stepped = []
        for index, (weight, setpoint) in enumerate(zip(current, target)):
            error = setpoint - weight
            integral[index] = max(-_INTEGRAL_CLAMP,
                                  min(_INTEGRAL_CLAMP,
                                      integral[index] + error))
            stepped.append(max(_WEIGHT_FLOOR,
                               weight + kp * error + ki * integral[index]))
        return list(normalise_weights(stepped))
