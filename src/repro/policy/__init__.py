"""Pluggable adaptation policies for the monitor/assess/respond loop.

Public surface:

* :class:`AdaptationPolicy` / :class:`Verdict` — the protocol;
* :class:`PolicyRegistry` — name-keyed registry of policy classes;
* :func:`default_registry` — the process-wide registry with every
  built-in policy registered (four paper variants plus the
  hysteresis, PID and chaos-aware controllers);
* :func:`create_policy` — instantiate the policy an
  :class:`~repro.config.AdaptivityConfig` selects.
"""

from __future__ import annotations

from repro.policy.base import AdaptationPolicy, Verdict
from repro.policy.chaos_aware import ChaosAwarePolicy
from repro.policy.hysteresis import HysteresisPolicy
from repro.policy.paper import (
    PaperPolicy,
    paper_policy_name,
    register_paper_policies,
)
from repro.policy.pid import PidPolicy
from repro.policy.registry import PolicyRegistry

#: Names of the non-paper built-in controllers.
POLICY_HYSTERESIS = "hysteresis"
POLICY_PID = "pid"
POLICY_CHAOS_AWARE = "chaos-aware"

_default_registry: PolicyRegistry | None = None


def register_builtin_policies(registry: PolicyRegistry) -> None:
    """Register every built-in policy on ``registry``."""
    register_paper_policies(registry)
    registry.register(POLICY_HYSTERESIS, HysteresisPolicy)
    registry.register(POLICY_PID, PidPolicy)
    registry.register(POLICY_CHAOS_AWARE, ChaosAwarePolicy)


def default_registry() -> PolicyRegistry:
    """The process-wide registry holding all built-in policies."""
    global _default_registry
    if _default_registry is None:
        registry = PolicyRegistry()
        register_builtin_policies(registry)
        _default_registry = registry
    return _default_registry


def create_policy(config) -> AdaptationPolicy:
    """Instantiate the policy ``config.policy_name`` selects."""
    return default_registry().create(config)


__all__ = [
    "AdaptationPolicy",
    "ChaosAwarePolicy",
    "HysteresisPolicy",
    "POLICY_CHAOS_AWARE",
    "POLICY_HYSTERESIS",
    "POLICY_PID",
    "PaperPolicy",
    "PidPolicy",
    "PolicyRegistry",
    "Verdict",
    "create_policy",
    "default_registry",
    "paper_policy_name",
    "register_builtin_policies",
    "register_paper_policies",
]
