"""The paper's controller as four registered policy instances.

``paper-A1R1`` … ``paper-A2R2`` are the A1/A2×R1/R2 combinations of
§3.1, expressed as policy names.  The class adds nothing on top of
:class:`~repro.policy.base.AdaptationPolicy` — the base class *is* the
paper's arithmetic — which is exactly the point: the bit-identity
property tests pin each instance to the pre-refactor Diagnoser/
Responder behaviour, so any accidental drift in the base class is
caught against the golden runs.

Selecting a paper name forces the config's ``assessment``/``response``
axes to the name's pair (the name is authoritative); conversely a
config that only sets the axes resolves to the matching paper name.
"""

from __future__ import annotations

import itertools

from repro.config import (
    ASSESSMENT_A1,
    ASSESSMENT_A2,
    RESPONSE_R1,
    RESPONSE_R2,
)
from repro.policy.base import AdaptationPolicy
from repro.policy.registry import PolicyRegistry


class PaperPolicy(AdaptationPolicy):
    """W' ∝ 1/c with thresM/thresA gates — the VLDB 2005 controller."""


def paper_policy_name(assessment: str, response: str) -> str:
    """The registered name of one A×R combination."""
    return f"paper-{assessment}{response}"


def register_paper_policies(registry: PolicyRegistry) -> None:
    for assessment, response in itertools.product(
            (ASSESSMENT_A1, ASSESSMENT_A2), (RESPONSE_R1, RESPONSE_R2)):
        registry.register(paper_policy_name(assessment, response),
                          PaperPolicy, paper_axes=(assessment, response))
