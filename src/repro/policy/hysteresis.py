"""EWMA-smoothed controller with a Schmitt-trigger proposal gate.

Two changes against the paper controller, both aimed at damping the
oscillation its single threshold invites under noisy costs:

* **EWMA smoothing** — instead of taking each windowed average at face
  value, per-instance costs are folded into an exponentially weighted
  moving average (``alpha``), so one noisy window cannot flip the
  proposed vector;
* **hysteresis (separate trigger and release thresholds)** — after an
  adaptation fires, the trigger *disarms*: no further proposal is made
  for the subplan until the measured deviation has first fallen below
  ``thres_a * release_ratio`` (the release threshold), confirming the
  deployed vector actually took effect.  Only then does the trigger
  re-arm at the full ``thres_a``.  A controller chasing its own tail —
  propose, deploy, observe the transient, propose the reverse — is cut
  off at the second step.
"""

from __future__ import annotations

import typing

from repro.engine.distribution import inverse_cost_weights, max_relative_change
from repro.policy.base import AdaptationPolicy

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.diagnoser import BalancingTask


class HysteresisPolicy(AdaptationPolicy):
    """Paper controller + EWMA cost smoothing + trigger/release gates."""

    PARAMS = {
        #: EWMA weight of the newest windowed average (1.0 = no
        #: smoothing, i.e. the paper's behaviour).
        "alpha": 0.4,
        #: Release threshold as a fraction of ``thres_a``: a disarmed
        #: trigger re-arms once the deviation drops below
        #: ``thres_a * release_ratio``.
        "release_ratio": 0.5,
    }

    def __init__(self, config) -> None:
        super().__init__(config)
        #: subplan_id -> whether the trigger is armed (True initially).
        self._armed: dict[str, bool] = {}

    def _smooth(self, store: dict, key: str, value: float) -> None:
        previous = store.get(key)
        alpha = self.params["alpha"]
        store[key] = (value if previous is None
                      else alpha * value + (1.0 - alpha) * previous)

    def _record_m1(self, instance_id: str, value: float) -> None:
        self._smooth(self._m1_cost, instance_id, value)

    def _record_m2(self, channel: str, value: float) -> None:
        self._smooth(self._m2_cost, channel, value)

    def propose(self, task: "BalancingTask", current: list[float],
                costs: list[float], now: float) -> list[float] | None:
        proposed = inverse_cost_weights(costs)
        deviation = max_relative_change(current, proposed)
        if not self._armed.get(task.subplan_id, True):
            if deviation < self.config.thres_a * self.params["release_ratio"]:
                # The deployed vector took effect: re-arm the trigger.
                self._armed[task.subplan_id] = True
            return None
        if deviation <= self.config.thres_a:
            return None
        return proposed

    def on_adaptation(self, subplan_id: str,
                      weights: typing.Sequence[float],
                      now: float) -> None:
        # Disarm until the deviation confirms the deploy settled.
        self._armed[subplan_id] = False
