"""The adaptation-policy protocol.

The paper's adaptivity controller — ``W' ∝ 1/c(p_i)`` with fixed
``thresM``/``thresA`` gates — is one point in a much larger design
space of observe → diagnose → propose controllers.  This module
defines the seam: an :class:`AdaptationPolicy` owns every *decision*
of the monitor/assess/respond pipeline (which detector averages are
worth notifying, what the balanced vector is, whether a proposal is
worth deploying) while the Diagnoser/Responder services keep owning
the *mechanics* (pub/sub plumbing, CPU charges, progress-estimation
calls, two-phase weight deployment).  That split is what makes the
paper's four A1/A2×R1/R2 variants bit-identical registry instances —
a policy that reproduces today's arithmetic produces today's runs —
while ambitious controllers (hysteresis, PID, chaos-aware) drop in
without touching the services.

Protocol surface (all consulted by the core services):

* :meth:`AdaptationPolicy.notification_gate` — the detector's
  re-notification threshold (``thresM`` in the paper instance);
* :meth:`AdaptationPolicy.observe` — ingest one cost notification
  (the paper instance records windowed averages; smoothing policies
  fold them into EWMAs instead);
* :meth:`AdaptationPolicy.diagnose` — propose a new weight vector for
  a balancing task, or ``None`` to stay quiet;
* :meth:`AdaptationPolicy.decide` — gate an imbalance proposal on the
  Responder side into a :class:`Verdict` (deploy these weights / skip
  for this reason);
* :meth:`AdaptationPolicy.accept_progress` — the near-completion
  cutoff, consulted once the Responder has estimated progress;
* lifecycle hooks (:meth:`on_adaptation`, :meth:`on_weights_installed`,
  :meth:`on_quarantine`, :meth:`on_reintegration`) through which
  chaos/fault signals reach quarantine-aware policies.

A policy instance is created per query (one shared by that query's
detectors, Diagnoser and Responder) and holds mutable controller
state; it must never touch the simulation — no event scheduling, no
CPU charges, no randomness — so that policy arithmetic stays a pure
function of what the services feed it.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import ASSESSMENT_A2, AdaptivityConfig
from repro.engine.distribution import (
    inverse_cost_weights,
    max_relative_change,
    normalise_weights,
)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.diagnoser import BalancingTask
    from repro.core.notifications import CostNotification

#: Verdict actions.
DEPLOY = "deploy"
SKIP = "skip"


@dataclasses.dataclass(frozen=True)
class Verdict:
    """The Responder-side outcome of judging one imbalance proposal.

    ``action`` is :data:`DEPLOY` or :data:`SKIP`; a skip carries the
    ``reason`` used for the per-reason skip counters, a deploy carries
    the (normalised) ``weights`` to install — which need not equal the
    proposal's vector (a PID policy deploys a partial step).
    """

    action: str
    reason: str | None = None
    weights: tuple = ()

    @classmethod
    def deploy(cls, weights: typing.Sequence[float]) -> "Verdict":
        return cls(DEPLOY, weights=tuple(weights))

    @classmethod
    def skip(cls, reason: str) -> "Verdict":
        return cls(SKIP, reason=reason)


class AdaptationPolicy:
    """Base policy: the paper's arithmetic, split into override hooks.

    Subclasses customise single decisions (cost smoothing, the target
    vector, the proposal/decision gates) without re-implementing the
    bookkeeping.  The base class *is* the paper controller in all but
    name — the registered ``paper-*`` instances subclass it without
    overriding anything.
    """

    #: Registered name; set by the registry at creation time.
    name = "base"
    #: Tunables: parameter name -> default value.  Overridden per
    #: policy; values come from ``AdaptivityConfig.policy_params``.
    PARAMS: dict = {}
    #: Whether the policy's proposals remain valid while clones are
    #: quarantined (it drives their weights to zero itself).  The
    #: Responder skips proposals from unaware policies during a
    #: quarantine, exactly as before the policy seam existed.
    quarantine_aware = False

    def __init__(self, config: AdaptivityConfig) -> None:
        self.config = config
        self.params = dict(self.PARAMS)
        self.params.update(config.params())
        #: Assessed per-tuple processing cost per instance (M1).
        self._m1_cost: dict[str, float] = {}
        #: Assessed per-tuple communication cost per channel (M2).
        self._m2_cost: dict[str, float] = {}

    # -- monitoring (detector-owned thresholds live here) ----------------

    def notification_gate(self, last: float | None,
                          average: float) -> bool:
        """Whether the detector should (re-)notify for ``average``.

        The paper gate: relative change of the windowed average beyond
        ``thres_m``, with the absolute ``thres_m_floor`` taking over
        against a zero baseline (where a relative gate is undefined).
        """
        if last is None:
            return True
        if last > 0:
            return abs(average - last) / last >= self.config.thres_m
        return abs(average - last) > self.config.thres_m_floor

    # -- observation ------------------------------------------------------

    def observe(self, notification: "CostNotification",
                task: "BalancingTask") -> None:
        """Ingest one cost notification for ``task``."""
        if notification.kind == "m1":
            self._record_m1(notification.instance_id,
                            notification.average_value)
        elif notification.kind == "m2":
            self._record_m2(notification.recipient_channel,
                            notification.average_value)

    def _record_m1(self, instance_id: str, value: float) -> None:
        self._m1_cost[instance_id] = value

    def _record_m2(self, channel: str, value: float) -> None:
        self._m2_cost[channel] = value

    def instance_cost(self, task: "BalancingTask",
                      instance_id: str) -> float | None:
        """The assessed per-tuple cost c(p_i), or None if unknown.

        Degenerate (non-positive) measurements are treated as unknown:
        a zero cost would make the inverse-proportional vector put all
        load on one instance on the strength of a broken sample.
        """
        processing = self._m1_cost.get(instance_id)
        if processing is None or processing <= 0:
            return None
        total = processing
        if self.config.assessment == ASSESSMENT_A2:
            for channel in task.instance_channels.get(instance_id, ()):
                if channel in task.co_located_channels:
                    continue
                communication = self._m2_cost.get(channel)
                if communication is not None:
                    total += communication
        return max(total, 1e-9)

    # -- diagnosis --------------------------------------------------------

    def diagnose(self, task: "BalancingTask",
                 current_weights: typing.Sequence[float],
                 now: float) -> tuple[list[float], list[float]] | None:
        """A ``(proposed_weights, instance_costs)`` pair, or None.

        Returns None while any instance cost is still unknown or the
        policy judges the imbalance not worth a proposal.
        """
        costs = []
        for instance_id in task.instance_ids:
            cost = self.instance_cost(task, instance_id)
            if cost is None:
                return None  # not enough information yet
            costs.append(cost)
        proposed = self.propose(task, list(current_weights), costs, now)
        if proposed is None:
            return None
        return proposed, costs

    def propose(self, task: "BalancingTask", current: list[float],
                costs: list[float], now: float) -> list[float] | None:
        """The enhanced vector W', or None to stay quiet.

        Paper behaviour: inverse-cost target, gated on the relative
        per-element deviation exceeding ``thres_a``.
        """
        proposed = inverse_cost_weights(costs)
        if max_relative_change(current, proposed) <= self.config.thres_a:
            return None
        return proposed

    # -- decision (Responder side) ---------------------------------------

    def decision_threshold(self) -> float:
        """The Responder-side re-check threshold (``thres_a``)."""
        return self.config.thres_a

    def decide(self, state, proposal, now: float) -> Verdict:
        """Judge ``proposal`` against the Responder's current ``state``.

        ``state`` exposes ``weights`` (the installed vector, possibly
        newer than the Diagnoser's view) and ``last_adaptation``; it
        must be treated read-only.  Paper behaviour: cooldown gate,
        then re-check the deviation against ``thres_a``.
        """
        if (state.last_adaptation is not None
                and now - state.last_adaptation < self.config.cooldown_ms):
            return Verdict.skip("cooldown")
        proposed = normalise_weights(proposal.proposed_weights)
        if (max_relative_change(state.weights, proposed)
                <= self.decision_threshold()):
            return Verdict.skip("below_threshold")
        return Verdict.deploy(proposed)

    def accept_progress(self, fraction: float) -> bool:
        """Whether to adapt given the estimated progress ``fraction``.

        False skips as near-completion (progress estimation [7]).
        """
        return fraction < self.config.progress_cutoff

    # -- lifecycle hooks --------------------------------------------------

    def on_adaptation(self, subplan_id: str,
                      weights: typing.Sequence[float],
                      now: float) -> None:
        """An adaptation this policy proposed was deployed."""

    def on_weights_installed(self, subplan_id: str,
                             weights: typing.Sequence[float]) -> None:
        """A weight vector was installed (any source, incl. quarantine)."""

    def on_quarantine(self, subplan_id: str, instance_index: int,
                      now: float) -> None:
        """A suspect clone's weight was driven to zero."""

    def on_reintegration(self, subplan_id: str, instance_index: int,
                         now: float) -> None:
        """A quarantined clone's share was restored."""
