"""Deployment: physical plan -> services, fragments and adaptivity wiring.

This module performs what the GDQS does after optimisation: it creates
one (A)GQES per participating machine, instantiates the operator trees
of every subplan fragment, connects exchange producers to consumer
channels, and — when adaptivity is enabled — stands up the
MonitoringEventDetector / Diagnoser / Responder components with their
pub/sub subscriptions, exactly as in the paper's Fig. 1.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import (
    AdaptivityConfig,
    CostModel,
    EngineConfig,
    FaultToleranceConfig,
)
from repro.core.diagnoser import BalancingTask, Diagnoser
from repro.core.monitoring import MonitoringEventDetector
from repro.core.notifications import TOPIC_COST, TOPIC_IMBALANCE, TOPIC_WEIGHTS
from repro.core.responder import Responder
from repro.dqp.gqes import GQES
from repro.engine.distribution import (
    HashBucketPolicy,
    WeightedRoundRobin,
)
from repro.engine.evaluator import Fragment
from repro.engine.metrics import SubplanMetrics
from repro.engine.operators.aggregate import GroupAggregator
from repro.engine.operators import (
    ConsumerRef,
    EvalContext,
    ExchangeConsumer,
    ExchangeProducer,
    HashJoin,
    OperationCall,
    Project,
    ResultSink,
    Select,
    TableScan,
)
from repro.errors import PlanningError
from repro.grid.container import GridContext
from repro.planner.physical import PhysicalPlan, POLICY_HASH, ROOT_SUBPLAN
from repro.policy import AdaptationPolicy, create_policy
from repro.services.gds import GridDataService
from repro.services.ws import WebServiceOperation


def producer_id_for(subplan_id: str, instance: int = 0) -> str:
    return f"xp:{subplan_id}:{instance}"


def channel_key_for(subplan_id: str, instance: int, port: int) -> str:
    return f"{subplan_id}:{instance}:{port}"


@dataclasses.dataclass
class QueryRuntime:
    """Handles to everything deployed for one query."""

    plan: PhysicalPlan
    adaptivity: AdaptivityConfig
    gqes_by_machine: dict
    detectors: dict
    diagnoser: Diagnoser | None
    responder: Responder | None
    sink: ResultSink
    feed_producers: list
    compute_producers: list
    compute_fragments: list
    balancing_task: BalancingTask | None
    #: GQES endpoints whose failure the GDQS has already handled.
    failures_handled: set = dataclasses.field(default_factory=set)
    #: Successful machine recoveries performed for this query (the
    #: ``FaultToleranceConfig.max_recoveries`` budget counter).
    recoveries: int = 0
    #: The adaptation policy shared by this query's detectors,
    #: Diagnoser and Responder (None when adaptivity is disabled).
    policy: AdaptationPolicy | None = None

    def all_gqes(self) -> list[GQES]:
        return list(self.gqes_by_machine.values())

    def unhandled_failures(self) -> list:
        """Crashed services no recovery pass has dealt with yet."""
        return [gqes for gqes in self.all_gqes()
                if gqes.crashed and gqes.name not in self.failures_handled]


def build_compute_fragment(ctx: EvalContext, plan: PhysicalPlan,
                           index: int,
                           operations: typing.Mapping[
                               str, WebServiceOperation],
                           coordinator_endpoint: str,
                           m1_interval: int) -> Fragment:
    """Build one instance of the partitioned compute subplan.

    Used both at initial deployment and by the fault-tolerance path,
    which re-creates a failed instance (same id, same channels) on a
    replacement machine so the feed producers can redirect and replay.
    """
    compute = plan.compute
    sink_channel = channel_key_for(ROOT_SUBPLAN, 0, 0)
    consumers: dict[str, ExchangeConsumer] = {}
    state_operators: dict[str, HashJoin] = {}
    if compute.join_keys is not None:
        build_scan = next(s for s in plan.scans if s.target_port == 0)
        probe_scan = next(s for s in plan.scans if s.target_port == 1)
        build_key = channel_key_for(compute.subplan_id, index, 0)
        probe_key = channel_key_for(compute.subplan_id, index, 1)
        build_xc = ExchangeConsumer(
            ctx, build_key,
            [producer_id_for(build_scan.subplan_id)], defer_acks=True)
        probe_xc = ExchangeConsumer(
            ctx, probe_key,
            [producer_id_for(probe_scan.subplan_id)])
        consumers[build_key] = build_xc
        consumers[probe_key] = probe_xc
        operator: typing.Any = HashJoin(
            ctx, build_xc, probe_xc,
            compute.join_keys[0], compute.join_keys[1])
        state_operators[build_key] = operator
    else:
        feed_scan = plan.scans[0]
        channel = channel_key_for(compute.subplan_id, index, 0)
        consumer = ExchangeConsumer(
            ctx, channel, [producer_id_for(feed_scan.subplan_id)])
        consumers[channel] = consumer
        operator = consumer
    for function_name, argument_position in compute.applies:
        try:
            operation = operations[function_name]
        except KeyError:
            raise PlanningError(
                f"no WS implementation bound for {function_name!r}"
                ) from None
        operator = OperationCall(ctx, operator, operation,
                                 argument_position)
    operator = Project(ctx, operator, compute.project_positions)
    root = ExchangeProducer(
        ctx, operator,
        producer_id=producer_id_for(compute.subplan_id, index),
        target_subplan_id=ROOT_SUBPLAN,
        consumers=[ConsumerRef(
            endpoint=coordinator_endpoint,
            channel_key=sink_channel,
            instance_id=f"{ROOT_SUBPLAN}:0",
            machine_name=plan.coordinator_machine)],
        policy=WeightedRoundRobin(1),
        row_bytes=compute.output_row_bytes,
        estimated_total=compute.estimated_output)
    return Fragment(ctx, compute.subplan_id, index, root, consumers,
                    [root], state_operators, m1_interval)


def deploy_query(context: GridContext, plan: PhysicalPlan,
                 gds_map: typing.Mapping[str, GridDataService],
                 operations: typing.Mapping[str, WebServiceOperation],
                 engine_config: EngineConfig, cost: CostModel,
                 adaptivity: AdaptivityConfig,
                 fault_tolerance: FaultToleranceConfig | None = None,
                 gdqs_endpoint: str | None = None) -> QueryRuntime:
    """Instantiate services and operator trees for ``plan``."""
    machines = plan.machines_used()

    # One policy instance per query, shared by every adaptivity
    # component so controller state (smoothed costs, hysteresis arms,
    # PID integrals) is coherent across the control loop.
    adaptation_policy = (create_policy(adaptivity)
                         if adaptivity.enabled else None)

    detectors: dict[str, MonitoringEventDetector] = {}
    monitoring_on = adaptivity.enabled and adaptivity.m1_interval > 0
    if monitoring_on:
        for machine_name in machines:
            detectors[machine_name] = MonitoringEventDetector(
                context, machine_name, adaptivity, cost,
                query_id=plan.query_id, policy=adaptation_policy)

    gqes_by_machine = {
        machine_name: GQES(context, plan.query_id, machine_name,
                           engine_config, cost,
                           detector=detectors.get(machine_name),
                           fault_tolerance=fault_tolerance,
                           gdqs_endpoint=gdqs_endpoint)
        for machine_name in machines}

    def make_ctx(machine_name: str, instance_id: str) -> EvalContext:
        return EvalContext(
            grid=context,
            machine=context.registry.machine(machine_name),
            metrics=SubplanMetrics(instance_id),
            cost=cost,
            engine_config=engine_config,
            monitor=detectors.get(machine_name))

    m1_interval = adaptivity.m1_interval if monitoring_on else 0
    compute = plan.compute
    degree = len(compute.machine_names)
    coordinator_gqes = gqes_by_machine[plan.coordinator_machine]

    # ---- compute fragments (the partitioned subplan) --------------------
    compute_fragments: list[Fragment] = []
    compute_producers: list[ExchangeProducer] = []
    for index, machine_name in enumerate(compute.machine_names):
        fragment = build_compute_fragment(
            make_ctx(machine_name, f"{compute.subplan_id}:{index}"),
            plan, index, operations, coordinator_gqes.name, m1_interval)
        compute_fragments.append(fragment)
        compute_producers.append(fragment.producers[0])
        gqes_by_machine[machine_name].deploy(fragment)

    # ---- feed fragments (scans on the data hosts) --------------------------
    feed_producers: list[tuple[str, ExchangeProducer]] = []
    shared_bucket_map: list[int] | None = None
    for scan in plan.scans:
        instance_id = f"{scan.subplan_id}:0"
        ctx = make_ctx(scan.machine_name, instance_id)
        gds = gds_map[scan.table_name]
        operator = TableScan(ctx, gds)
        for comparison, predicate in scan.filters:
            operator = Select(ctx, operator, predicate,
                              description=str(comparison))
        consumer_refs = [
            ConsumerRef(
                endpoint=gqes_by_machine[machine_name].name,
                channel_key=channel_key_for(
                    compute.subplan_id, index, scan.target_port),
                instance_id=f"{compute.subplan_id}:{index}",
                machine_name=machine_name)
            for index, machine_name in enumerate(compute.machine_names)]
        if compute.policy_kind == POLICY_HASH:
            if scan.key_position is None:
                raise PlanningError(
                    f"{scan.subplan_id}: hash policy without key position")
            policy = HashBucketPolicy(
                degree, scan.key_position,
                bucket_count=adaptivity.hash_buckets,
                weights=compute.initial_weights)
            # Every producer feeding a stateful consumer group must use
            # the same bucket map, or matching keys would diverge.
            if shared_bucket_map is None:
                shared_bucket_map = list(policy.bucket_map)
            else:
                policy.bucket_map = list(shared_bucket_map)
        else:
            policy = WeightedRoundRobin(degree, compute.initial_weights)
        root = ExchangeProducer(
            ctx, operator,
            producer_id=producer_id_for(scan.subplan_id),
            target_subplan_id=compute.subplan_id,
            consumers=consumer_refs,
            policy=policy,
            row_bytes=scan.row_bytes,
            estimated_total=scan.estimated_total,
            # The hash join's build rows *are* its state: the build
            # feed retains what it routes so bucket moves replay the
            # whole bucket, not just the unacknowledged log tail.
            state_channel=(compute.policy_kind == POLICY_HASH
                          and scan.target_port == 0))
        fragment = Fragment(ctx, scan.subplan_id, 0, root, {}, [root],
                            m1_interval=m1_interval)
        feed_gqes = gqes_by_machine[scan.machine_name]
        feed_producers.append((feed_gqes.name, root))
        feed_gqes.deploy(fragment)

    # ---- root fragment (result collection on the coordinator) ---------------
    sink_channel = channel_key_for(ROOT_SUBPLAN, 0, 0)
    root_ctx = make_ctx(plan.coordinator_machine, f"{ROOT_SUBPLAN}:0")
    sink_consumer = ExchangeConsumer(
        root_ctx, sink_channel,
        [producer.producer_id for producer in compute_producers])
    aggregator = None
    if plan.aggregation is not None:
        aggregation = plan.aggregation
        aggregator = GroupAggregator(aggregation.group_positions,
                                     aggregation.aggregates,
                                     aggregation.output_layout)
    sink = ResultSink(root_ctx, sink_consumer, aggregator)
    root_fragment = Fragment(root_ctx, ROOT_SUBPLAN, 0, sink,
                             {sink_channel: sink_consumer}, [],
                             m1_interval=0)
    coordinator_gqes.deploy(root_fragment)

    # ---- adaptivity components (Fig. 1 wiring) --------------------------------
    diagnoser: Diagnoser | None = None
    responder: Responder | None = None
    balancing_task: BalancingTask | None = None
    if adaptivity.enabled:
        instance_channels = {}
        co_located = set()
        for index, machine_name in enumerate(compute.machine_names):
            instance_id = f"{compute.subplan_id}:{index}"
            channels = []
            for scan in plan.scans:
                channel = channel_key_for(
                    compute.subplan_id, index, scan.target_port)
                channels.append(channel)
                if scan.machine_name == machine_name:
                    co_located.add(channel)
            instance_channels[instance_id] = tuple(channels)
        balancing_task = BalancingTask(
            subplan_id=compute.subplan_id,
            instance_ids=tuple(f"{compute.subplan_id}:{i}"
                               for i in range(degree)),
            initial_weights=tuple(compute.initial_weights),
            instance_channels=instance_channels,
            co_located_channels=frozenset(co_located),
            producer_endpoints=tuple(dict.fromkeys(
                endpoint for endpoint, _xp in feed_producers)),
            producers=tuple(
                (producer.producer_id, endpoint, scan.target_port)
                for (endpoint, producer), scan
                in zip(feed_producers, plan.scans)),
            policy_kind=compute.policy_kind,
            bucket_map=(tuple(shared_bucket_map)
                        if shared_bucket_map is not None else None),
            instance_endpoints=tuple(dict.fromkeys(
                gqes_by_machine[name].name
                for name in compute.machine_names)))
        # Paper Fig. 1: one Diagnoser and one Responder subscribe to the
        # per-site detectors; we place them on the first compute machine.
        placement = compute.machine_names[0]
        diagnoser = Diagnoser(context, placement, adaptivity, cost,
                              [balancing_task], query_id=plan.query_id,
                              policy=adaptation_policy)
        responder = Responder(context, placement, adaptivity, cost,
                              [balancing_task], query_id=plan.query_id,
                              policy=adaptation_policy)
        for detector in detectors.values():
            detector.subscribe(TOPIC_COST, diagnoser.name)
        diagnoser.subscribe(TOPIC_IMBALANCE, responder.name)
        responder.subscribe(TOPIC_WEIGHTS, diagnoser.name)

    return QueryRuntime(
        plan=plan,
        adaptivity=adaptivity,
        gqes_by_machine=gqes_by_machine,
        detectors=detectors,
        diagnoser=diagnoser,
        responder=responder,
        sink=sink,
        feed_producers=feed_producers,
        compute_producers=compute_producers,
        compute_fragments=compute_fragments,
        balancing_task=balancing_task,
        policy=adaptation_policy)
