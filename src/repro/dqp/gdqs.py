"""The Grid Distributed Query Service: query lifecycle orchestration.

The GDQS accepts queries, compiles them (parse -> logical plan ->
partitioned physical plan), creates the (A)GQESs and fragments through
:mod:`repro.dqp.deployment`, waits for the result sink to complete,
then broadcasts query completion and gathers statistics.  Per §2, it
plays *no* role during adaptations — the AGQESs and the adaptivity
services handle rebalancing among themselves.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import (
    AdaptivityConfig,
    CostModel,
    EngineConfig,
    FaultToleranceConfig,
)
from repro.core.monitoring import MonitoringEventDetector
from repro.core.notifications import TOPIC_COST
from repro.data.schema import Schema
from repro.dqp.deployment import (
    QueryRuntime,
    build_compute_fragment,
    channel_key_for,
    deploy_query,
    producer_id_for,
)
from repro.dqp.gqes import GQES
from repro.engine.control import QueryComplete, ResetProducer
from repro.engine.metrics import SubplanMetrics
from repro.engine.operators.base import EvalContext
from repro.errors import PlanningError, ServiceError
from repro.planner.physical import ROOT_SUBPLAN
from repro.grid.container import GridContext
from repro.net.message import KIND_CONTROL
from repro.planner.logical import build_logical_plan
from repro.planner.optimizer import optimize
from repro.planner.parser import parse
from repro.services.base import GridService
from repro.services.gds import GridDataService
from repro.services.ws import WebServiceOperation
from repro.sim.events import Event
from repro.telemetry.metrics import AdaptivityReport


@dataclasses.dataclass
class QueryStatistics:
    """Execution statistics gathered after query completion."""

    response_time_ms: float
    result_count: int
    duplicates_dropped: int
    raw_monitoring_events: int
    cost_notifications: int
    proposals_sent: int
    adaptations_accepted: int
    retrospective_moves: int
    tuples_moved: int
    skipped_near_completion: int
    skipped_cooldown: int
    skipped_below_threshold: int
    machines_recovered: int
    tuples_replayed_for_recovery: int
    #: Fraction of the query's wall time each machine's CPU was busy
    #: (work attributable to this window, so concurrent queries share).
    machine_utilisation: dict
    #: Tuples attributed per compute instance by the feed producers
    #: (summed over feeds) — the paper's "ratio of tuples" statistic.
    tuples_per_consumer: list
    #: Suspect-clone quarantines and subsequent reintegrations (chaos
    #: defense; zero without a suspect timeout).
    clones_quarantined: int = 0
    clones_reintegrated: int = 0
    #: Name of the adaptation policy that ran the control loop
    #: ("static" when adaptivity was disabled).
    policy: str = "static"
    #: Workload mass moved one way and later reversed by the policy's
    #: own adaptations (see Responder oscillation accounting).
    oscillation: float = 0.0

    @property
    def consumer_imbalance_ratio(self) -> float:
        """max/min tuples per consumer (1.0 = perfectly balanced)."""
        counts = [c for c in self.tuples_per_consumer if c > 0]
        if len(counts) < 2:
            return 1.0
        return max(counts) / min(counts)


@dataclasses.dataclass
class QueryResult:
    """Result rows plus measured statistics for one query run."""

    query_id: str
    rows: list
    schema: Schema
    stats: QueryStatistics

    #: Terminal-outcome discriminator shared with :class:`QueryFailed`.
    failed: typing.ClassVar[bool] = False

    @property
    def response_time_ms(self) -> float:
        return self.stats.response_time_ms

    def values(self) -> list[tuple]:
        return [row.values for row in self.rows]


#: Typed failure causes (the ``QueryFailed.cause`` vocabulary).
CAUSE_DEADLINE = "deadline-exceeded"
CAUSE_NO_REPLACEMENT = "replacement-exhausted"
CAUSE_UNRECOVERABLE = "machine-unrecoverable"
CAUSE_BUDGET = "recovery-budget-exhausted"
CAUSE_UNPLANNABLE = "placement-infeasible"


@dataclasses.dataclass(frozen=True)
class QueryFailed:
    """Typed terminal failure of one query.

    Carried as the *value* of a succeeded ``QueryHandle.done`` event —
    never as an exception out of the simulation — so every waiter
    (scheduler completion callbacks, ``env.run(until=done)``) observes
    a clean terminal outcome and dispatch of a listener-less done
    event cannot raise.  ``failed`` discriminates it from
    :class:`QueryResult` at completion sites.
    """

    query_id: str
    cause: str
    failed_machine: str | None
    elapsed_ms: float
    recoveries: int = 0

    failed: typing.ClassVar[bool] = True


class QueryHandle:
    """A submitted query: exposes the completion event and result.

    The lifecycle timestamps separate queue wait from execution:
    ``submitted_at`` is when the query entered the system (for
    scheduler-managed queries, when it joined the admission queue),
    ``started_at`` when deployment began, and ``completed_at`` when
    the result was collected.  Response time as experienced by the
    submitter is ``completed_at - submitted_at``; the execution-only
    figure the paper reports is ``completed_at - started_at``.
    """

    def __init__(self, query_id: str, done: Event) -> None:
        self.query_id = query_id
        self.done = done
        self.result: QueryResult | None = None
        self.failure: QueryFailed | None = None
        self.runtime: QueryRuntime | None = None
        self.submitted_at: float = 0.0
        self.started_at: float = 0.0
        self.completed_at: float | None = None
        self.cpu_baseline: dict = {}

    @property
    def queue_wait_ms(self) -> float:
        """Time spent admission-queued before deployment began."""
        return self.started_at - self.submitted_at

    @property
    def execution_ms(self) -> float | None:
        """Deployment-to-result time (queue wait excluded)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


class GDQS(GridService):
    """Coordinator service: compile, deploy, collect."""

    def __init__(self, context: GridContext, machine_name: str,
                 gds_map: typing.Mapping[str, GridDataService],
                 operations: typing.Mapping[str, WebServiceOperation],
                 engine_config: EngineConfig | None = None,
                 cost: CostModel | None = None,
                 fault_tolerance: FaultToleranceConfig | None = None
                 ) -> None:
        super().__init__(context, f"gdqs:{machine_name}", machine_name)
        self.gds_map = dict(gds_map)
        self.operations = dict(operations)
        self.engine_config = engine_config or EngineConfig()
        self.cost = cost or CostModel()
        self.fault_tolerance = fault_tolerance or FaultToleranceConfig()
        self._query_counter = 0
        self._heartbeats: dict[str, float] = {}
        #: Heartbeat wheel state: queries under watch (query_id ->
        #: [handle, runtime, started, suspected]) and whether the one
        #: shared tick process is live.  The wheel exits whenever the
        #: watch list drains and is respawned by the next FT submit,
        #: so an idle GDQS schedules no timer events at all.
        self._watched: dict[str, list] = {}
        self._wheel_running = False
        self._wheel_activations = 0
        self.failures_recovered = 0
        self.clones_quarantined = 0
        self.clones_reintegrated = 0
        self.queries_failed = 0

    def on_notification(self, topic: str, payload: typing.Any,
                        sender: str) -> None:
        if topic == "gqes.heartbeat":
            self._heartbeats[sender] = self.env.now

    def submit(self, query_text: str,
               adaptivity: AdaptivityConfig | None = None,
               degree: int | None = None,
               machine_order: typing.Sequence[str] | None = None,
               exclude_machines: typing.Container[str] = ()
               ) -> QueryHandle:
        """Compile, deploy and start ``query_text``.

        Returns immediately with a :class:`QueryHandle`; drive the
        simulation (``env.run(until=handle.done)``) to completion.
        ``machine_order`` is a compute-machine preference (most
        preferred first) honoured by the optimizer when the plan's
        parallelism degree does not need the whole pool — the
        multi-query scheduler uses it for least-loaded placement.
        ``exclude_machines`` is a best-effort placement blacklist
        (the scheduler's retry re-placement).
        """
        adaptivity = adaptivity or AdaptivityConfig()
        self._query_counter += 1
        query_id = f"q{self._query_counter}"

        engine_config = self.engine_config
        if self.fault_tolerance.enabled and not engine_config.logging_enabled:
            # Recovery replays come from the logs; they must exist.
            engine_config = engine_config.replace(logging_enabled=True)

        schemas = {name: gds.relation.schema
                   for name, gds in self.gds_map.items()}
        cardinalities = {name: gds.relation.cardinality
                         for name, gds in self.gds_map.items()}
        logical = build_logical_plan(parse(query_text), schemas,
                                     cardinalities)
        plan = optimize(logical, self.context.registry,
                        coordinator_machine=self.machine.name,
                        degree=degree, query_id=query_id,
                        machine_order=machine_order,
                        exclude_machines=exclude_machines)
        runtime = deploy_query(self.context, plan, self.gds_map,
                               self.operations, engine_config,
                               self.cost, adaptivity,
                               fault_tolerance=self.fault_tolerance,
                               gdqs_endpoint=self.name)
        self.context.tracer.record("query", self.name, "query submitted",
                                    query_id=query_id)
        handle = QueryHandle(query_id, self.env.event())
        handle.runtime = runtime
        handle.cpu_baseline = {
            name: self.context.registry.machine(name).cpu.busy_time
            for name in plan.machines_used()}
        handle.submitted_at = self.env.now
        handle.started_at = self.env.now
        self.env.process(self._orchestrate(handle, runtime),
                         name=f"gdqs:orchestrate:{query_id}")
        if self.fault_tolerance.enabled:
            if self.fault_tolerance.heartbeat_wheel:
                self._watch(handle, runtime)
            else:
                self.env.process(self._monitor_failures(handle, runtime),
                                 name=f"gdqs:monitor:{query_id}")
        return handle

    def _orchestrate(self, handle: QueryHandle,
                     runtime: QueryRuntime) -> typing.Generator:
        submitted_at = self.env.now
        yield runtime.sink.done
        if handle.done.triggered:
            # The query was aborted or failed while the sink raced to
            # the finish line; the typed outcome already went out.
            return
        # Termination double-check: trust the sink's completion only
        # once every GQES is quiescent, so an adaptation racing the
        # finish line (replays in flight to an already-finished
        # instance) is never missed.  With fault tolerance on, the
        # check also demands positive liveness from every participant:
        # a machine that died carrying attributed-but-undelivered work
        # (e.g. a rebalance aimed at it as it crashed) must first be
        # recovered, or its backlog would be silently dropped.
        def settled() -> bool:
            if not all(gqes.is_quiescent() for gqes in runtime.all_gqes()):
                return False
            if (self.fault_tolerance.enabled
                    and runtime.unhandled_failures()):
                return False
            return True

        while not settled():
            yield self.env.timeout(5.0)
            if handle.done.triggered:
                return
        response_time = runtime.sink.completed_at - submitted_at
        # Broadcast completion so evaluators and detectors wind down.
        for gqes in runtime.all_gqes():
            self.send(gqes.name, KIND_CONTROL,
                      QueryComplete(handle.query_id))
        handle.completed_at = self.env.now
        handle.result = self._collect(handle.query_id, runtime,
                                      response_time,
                                      handle.cpu_baseline)
        self.context.tracer.record(
            "query", self.name, "query completed",
            query_id=handle.query_id,
            response_ms=round(response_time, 1))
        handle.done.succeed(handle.result)

    def _fail_query(self, handle: QueryHandle, runtime: QueryRuntime,
                    cause: str, failed_machine: str | None) -> None:
        """Terminate a query with a typed failure outcome.

        The failure travels as the *value* of the succeeded ``done``
        event, so synchronous waiters and callback listeners both see a
        clean settlement — never an unhandled exception inside the
        simulation loop.  All participants get the same QueryComplete
        broadcast a success would send, so heartbeats, detectors and
        evaluators wind down identically.
        """
        if handle.done.triggered:
            return
        handle.completed_at = self.env.now
        elapsed = self.env.now - handle.started_at
        failure = QueryFailed(
            query_id=handle.query_id,
            cause=cause,
            failed_machine=failed_machine,
            elapsed_ms=elapsed,
            recoveries=runtime.recoveries)
        handle.failure = failure
        self.queries_failed += 1
        for gqes in runtime.all_gqes():
            self.send(gqes.name, KIND_CONTROL,
                      QueryComplete(handle.query_id))
        self.context.tracer.record(
            "query", self.name, "query failed",
            query_id=handle.query_id, cause=cause,
            failed_machine=failed_machine or "",
            elapsed_ms=round(elapsed, 1), recoveries=runtime.recoveries)
        handle.done.succeed(failure)

    def abort(self, handle: QueryHandle, cause: str,
              failed_machine: str | None = None) -> bool:
        """Abort a running query (scheduler deadline enforcement).

        Returns True if this call terminated the query, False if the
        query had already settled (success or failure) — aborting a
        finished query is a harmless no-op so expired deadline timers
        never race the completion path.
        """
        if handle.runtime is None or handle.done.triggered:
            return False
        self._fail_query(handle, handle.runtime, cause, failed_machine)
        return True

    # -- failure detection and recovery ---------------------------------------

    def _monitor_failures(self, handle: QueryHandle,
                          runtime: QueryRuntime) -> typing.Generator:
        """Per-query heartbeat monitor (legacy A/B reference path).

        One timer process per fault-tolerant query; selected with
        ``FaultToleranceConfig.heartbeat_wheel = False``.  The silence
        grading itself lives in :meth:`_check_round`, shared with the
        coalesced wheel, so the two paths cannot drift.
        """
        ft = self.fault_tolerance
        started = self.env.now
        suspected: dict[str, list[int]] = {}
        while not handle.done.triggered:
            yield self.env.timeout(ft.heartbeat_interval_ms)
            if handle.done.triggered:
                return
            stop = yield from self._check_round(handle, runtime, started,
                                                suspected)
            if stop:
                return

    def _watch(self, handle: QueryHandle, runtime: QueryRuntime) -> None:
        """Enrol a query with the shared heartbeat wheel.

        The wheel coalesces every fault-tolerant query's monitor into
        one tick process per GDQS: each tick is a single timer event
        regardless of how many queries are in flight, where the legacy
        path schedules one timer *per query* per interval.  For
        non-overlapping queries the wheel is event-for-event identical
        to the legacy monitor (same tick count, one process spawn per
        idle-period activation); overlapping queries share the first
        query's tick phase, which can shift failure detection by less
        than one interval — still fully deterministic, and covered by
        the resilience property suite's reproducibility checks.
        """
        self._watched[handle.query_id] = [handle, runtime, self.env.now,
                                          {}]
        if not self._wheel_running:
            self._wheel_running = True
            self._wheel_activations += 1
            self.env.process(
                self._run_wheel(),
                name=f"gdqs:wheel:{self._wheel_activations}")

    def _run_wheel(self) -> typing.Generator:
        """The shared tick process: one timeout per interval, all
        watched queries checked in enrolment order."""
        ft = self.fault_tolerance
        while self._watched:
            yield self.env.timeout(ft.heartbeat_interval_ms)
            for query_id in list(self._watched):
                entry = self._watched.get(query_id)
                if entry is None:
                    continue
                handle, runtime, started, suspected = entry
                if handle.done.triggered:
                    self._watched.pop(query_id, None)
                    continue
                stop = yield from self._check_round(handle, runtime,
                                                    started, suspected)
                if stop or handle.done.triggered:
                    self._watched.pop(query_id, None)
        self._wheel_running = False

    def _check_round(self, handle: QueryHandle, runtime: QueryRuntime,
                     started: float,
                     suspected: dict[str, list[int]]) -> typing.Generator:
        """Grade every participant's heartbeat silence once.

        A GQES silent beyond ``failure_timeout_ms`` is dead — its
        evaluators are re-created elsewhere (the pre-existing path).
        With ``suspect_timeout_ms`` set, the shorter silence window
        first marks the GQES *suspect*: its compute clones are
        quarantined (Responder drives their weights to zero while the
        feed producers' recovery logs are retained), and if heartbeats
        resume before the failure deadline the clones are reintegrated
        instead of rebuilt.

        Returns True when the query reached a terminal failure and the
        caller should stop monitoring it; ``suspected`` is the caller's
        per-query bookkeeping, mutated in place so it survives between
        rounds (including the wheel's).
        """
        ft = self.fault_tolerance
        for gqes in list(runtime.all_gqes()):
            if (gqes.name in runtime.failures_handled
                    or gqes.name == self.name):
                continue
            last_seen = self._heartbeats.get(gqes.name, started)
            silent_ms = self.env.now - last_seen
            if silent_ms > ft.failure_timeout_ms:
                quarantined = suspected.pop(gqes.name, [])
                if (ft.max_recoveries is not None
                        and runtime.recoveries >= ft.max_recoveries):
                    self._fail_query(handle, runtime, CAUSE_BUDGET,
                                     gqes.machine.name)
                    return True
                runtime.failures_handled.add(gqes.name)
                try:
                    recovered = yield from self._recover(runtime, gqes)
                except ServiceError:
                    # A control peer was unreachable mid-recovery;
                    # retry on a later monitor tick.  The suspect
                    # bookkeeping must survive the retry, or the
                    # quarantined clone indices would be lost and
                    # the eventual recovery would leave the rebuilt
                    # clones starved at weight zero.
                    runtime.failures_handled.discard(gqes.name)
                    if quarantined:
                        suspected[gqes.name] = quarantined
                    self.context.tracer.record(
                        "failure", self.name,
                        "recovery attempt failed; will retry",
                        failed=gqes.name)
                    continue
                except PlanningError:
                    self._fail_query(handle, runtime,
                                     CAUSE_NO_REPLACEMENT,
                                     gqes.machine.name)
                    return True
                if not recovered:
                    # A data host or the coordinator died: their
                    # state is not reconstructible from recovery
                    # logs, so the query cannot make progress.
                    self._fail_query(handle, runtime,
                                     CAUSE_UNRECOVERABLE,
                                     gqes.machine.name)
                    return True
                # The replacement starts healthy: lift any
                # quarantine the suspect phase imposed, else the
                # rebuilt clones would never receive work.
                self._reintegrate_clones(runtime, quarantined)
                continue
            if (ft.suspect_timeout_ms is None
                    or runtime.responder is None
                    or runtime.responder.crashed):
                continue
            compute_id = runtime.plan.compute.subplan_id
            if silent_ms > ft.suspect_timeout_ms:
                if gqes.name in suspected:
                    continue
                indices = sorted(
                    fragment.instance_index
                    for fragment in gqes.fragments.values()
                    if fragment.subplan_id == compute_id)
                if not indices:
                    continue
                suspected[gqes.name] = indices
                self.clones_quarantined += len(indices)
                self.context.tracer.record(
                    "failure", self.name, "gqes suspect",
                    gqes=gqes.name, silent_ms=round(silent_ms, 1),
                    instances=indices)
                for index in indices:
                    self.env.process(
                        runtime.responder.quarantine(compute_id, index),
                        name=f"gdqs:quarantine:{gqes.name}:{index}")
            elif gqes.name in suspected:
                # Heartbeats resumed before the failure deadline.
                indices = suspected.pop(gqes.name)
                self.clones_reintegrated += len(indices)
                self.context.tracer.record(
                    "failure", self.name, "gqes recovered from suspect",
                    gqes=gqes.name, instances=indices)
                self._reintegrate_clones(runtime, indices)
        return False

    def _reintegrate_clones(self, runtime: QueryRuntime,
                            indices: typing.Sequence[int]) -> None:
        if (not indices or runtime.responder is None
                or runtime.responder.crashed):
            return
        compute_id = runtime.plan.compute.subplan_id
        for index in indices:
            self.env.process(
                runtime.responder.reintegrate(compute_id, index),
                name=f"gdqs:reintegrate:{index}")

    def _pick_replacement(self, runtime: QueryRuntime,
                          failed_machine: str) -> str:
        registry = self.context.registry
        in_use = set(runtime.gqes_by_machine)

        def alive(name: str) -> bool:
            return not registry.machine(name).is_crashed

        for name in registry.spare_machines():
            if name not in in_use and alive(name):
                return name
        for name in registry.compute_machines():
            if name not in in_use and name != failed_machine and alive(name):
                return name
        # Last resort: double up on a surviving compute machine.
        for name in runtime.plan.compute.machine_names:
            if name != failed_machine and alive(name):
                return name
        raise PlanningError(
            f"no replacement machine available for {failed_machine}")

    def _recover(self, runtime: QueryRuntime,
                 failed: GQES) -> typing.Generator:
        """Re-create the failed machine's compute instances elsewhere.

        Only compute-subplan instances are recoverable: their inputs
        live in the feed producers' recovery logs.  The replacement
        gets the same instance ids and channel keys, the coordinator
        forgets the dead incarnation's announcements, and the feed
        producers redirect and replay — re-deliveries deduplicate by
        provenance downstream.
        """
        plan = runtime.plan
        compute_id = plan.compute.subplan_id
        lost = [fragment for fragment in failed.fragments.values()
                if fragment.subplan_id == compute_id]
        if not lost:
            # A data host or the coordinator died: unrecoverable.
            return False
        replacement = self._pick_replacement(runtime, failed.machine.name)
        adaptivity = runtime.adaptivity
        monitoring_on = adaptivity.enabled and adaptivity.m1_interval > 0

        detector = runtime.detectors.get(replacement)
        if monitoring_on and detector is None:
            detector = MonitoringEventDetector(
                self.context, replacement, adaptivity, self.cost,
                query_id=plan.query_id, policy=runtime.policy)
            runtime.detectors[replacement] = detector
            if runtime.diagnoser is not None:
                detector.subscribe(TOPIC_COST, runtime.diagnoser.name)

        new_gqes = runtime.gqes_by_machine.get(replacement)
        if new_gqes is None:
            new_gqes = GQES(self.context, plan.query_id, replacement,
                            failed.engine_config, self.cost,
                            detector=detector,
                            fault_tolerance=self.fault_tolerance,
                            gdqs_endpoint=self.name)
            runtime.gqes_by_machine[replacement] = new_gqes

        coordinator_endpoint = runtime.gqes_by_machine[
            plan.coordinator_machine].name
        m1_interval = adaptivity.m1_interval if monitoring_on else 0
        sink_channel = channel_key_for(ROOT_SUBPLAN, 0, 0)
        for old_fragment in lost:
            index = old_fragment.instance_index
            ctx = EvalContext(
                grid=self.context,
                machine=self.context.registry.machine(replacement),
                metrics=SubplanMetrics(old_fragment.instance_id),
                cost=self.cost,
                engine_config=failed.engine_config,
                monitor=detector)
            new_fragment = build_compute_fragment(
                ctx, plan, index, self.operations, coordinator_endpoint,
                m1_interval)
            new_gqes.deploy(new_fragment)
            # Swap runtime records so statistics reflect the live world.
            position = next(
                i for i, fragment in enumerate(runtime.compute_fragments)
                if fragment.instance_id == old_fragment.instance_id)
            runtime.compute_fragments[position] = new_fragment
            runtime.compute_producers[position] = new_fragment.producers[0]
            # The coordinator forgets the dead incarnation's result
            # announcement; the replacement re-announces from scratch.
            self.send(coordinator_endpoint, KIND_CONTROL, ResetProducer(
                sink_channel, producer_id_for(compute_id, index)))
            # Feed producers redirect and replay their recovery logs.
            for endpoint in dict.fromkeys(
                    ep for ep, _xp in runtime.feed_producers):
                yield from self.call(
                    endpoint, "redirect_channels",
                    {"subplan_id": compute_id,
                     "instance_id": old_fragment.instance_id,
                     "endpoint": new_gqes.name},
                    timeout_ms=self.fault_tolerance.call_timeout_ms,
                    retry=self.context.call_retry_policy())
        if runtime.responder is not None:
            runtime.responder.replace_endpoint(failed.name, new_gqes.name)
            if runtime.responder.crashed:
                # The Responder died, possibly between the replay and
                # discard phases of an update: roll it forward so no
                # producer is left mid-move.
                yield from self._finalize_orphaned_updates(runtime)
        self.failures_recovered += 1
        runtime.recoveries += 1
        self.context.tracer.record(
            "failure", self.name, "evaluators recovered",
            failed_machine=failed.machine.name, replacement=replacement,
            instances=len(lost))
        return True

    def _finalize_orphaned_updates(self, runtime: QueryRuntime
                                   ) -> typing.Generator:
        """Complete a two-phase distribution update whose Responder died.

        Rolls the update *forward*: any producer still behind the
        highest applied epoch receives the stored update's replay phase
        (so a join's build and probe sides agree on the bucket map),
        then every producer's pending discards are issued in reverse
        port order — the same ordering discipline the Responder uses.
        """
        task = runtime.balancing_task
        if task is None:
            return
        endpoints = list(dict.fromkeys(
            endpoint for endpoint, _xp in runtime.feed_producers))
        status_by_producer: dict = {}
        for endpoint in endpoints:
            entries = yield from self.call(
                endpoint, "update_status", {"subplan_id": task.subplan_id},
                timeout_ms=self.fault_tolerance.call_timeout_ms)
            for entry in entries:
                status_by_producer[entry["producer_id"]] = entry
        if not any(entry["moving"] for entry in status_by_producer.values()):
            return
        newest = max((entry["last_update"]
                      for entry in status_by_producer.values()
                      if entry["last_update"] is not None),
                     key=lambda update: update.epoch, default=None)
        by_port = sorted(task.producers, key=lambda p: p[2])
        if newest is not None:
            for producer_id, endpoint, _port in by_port:
                entry = status_by_producer.get(producer_id)
                if entry is None or entry["applied_epoch"] >= newest.epoch:
                    continue
                yield from self.call(endpoint, "update_distribution", {
                    "update": newest, "producer_id": producer_id,
                    "phase": "replay"},
                    timeout_ms=self.fault_tolerance.call_timeout_ms,
                    retry=self.context.call_retry_policy())
        for producer_id, endpoint, _port in reversed(by_port):
            yield from self.call(endpoint, "update_distribution", {
                "update": newest, "producer_id": producer_id,
                "phase": "discard"},
                timeout_ms=self.fault_tolerance.call_timeout_ms,
                retry=self.context.call_retry_policy())
        self.context.tracer.record(
            "failure", self.name, "orphaned update finalized",
            subplan=task.subplan_id)

    def _collect(self, query_id: str, runtime: QueryRuntime,
                 response_time: float,
                 cpu_baseline: dict | None = None) -> QueryResult:
        machine_utilisation = {}
        if cpu_baseline and response_time > 0:
            for name, baseline in cpu_baseline.items():
                cpu = self.context.registry.machine(name).cpu
                machine_utilisation[name] = min(
                    1.0, (cpu.busy_time - baseline) / response_time)
        sink = runtime.sink
        raw_events = sum(d.raw_events_received
                         for d in runtime.detectors.values())
        cost_notifications = sum(d.cost_notifications_sent
                                 for d in runtime.detectors.values())
        feed_xps = [producer for _endpoint, producer
                    in runtime.feed_producers]
        degree = runtime.plan.partitioning_degree
        tuples_per_consumer = [0] * degree
        for producer in feed_xps:
            for index, count in enumerate(producer.sent_per_consumer):
                tuples_per_consumer[index] += count
        stats = QueryStatistics(
            response_time_ms=response_time,
            result_count=len(sink.final_rows()),
            duplicates_dropped=sink.duplicates_dropped,
            raw_monitoring_events=raw_events,
            cost_notifications=cost_notifications,
            proposals_sent=(runtime.diagnoser.proposals_sent
                            if runtime.diagnoser else 0),
            adaptations_accepted=(runtime.responder.adaptations_accepted
                                  if runtime.responder else 0),
            retrospective_moves=sum(p.retrospective_moves
                                    for p in feed_xps),
            tuples_moved=sum(p.tuples_moved for p in feed_xps),
            skipped_near_completion=(
                runtime.responder.skipped_near_completion
                if runtime.responder else 0),
            skipped_cooldown=(runtime.responder.skipped_cooldown
                              if runtime.responder else 0),
            skipped_below_threshold=(
                runtime.responder.skipped_below_threshold
                if runtime.responder else 0),
            machines_recovered=self.failures_recovered,
            machine_utilisation=machine_utilisation,
            tuples_replayed_for_recovery=sum(
                p.tuples_replayed_for_recovery for p in feed_xps),
            tuples_per_consumer=tuples_per_consumer,
            clones_quarantined=(runtime.responder.quarantines
                                if runtime.responder else 0),
            clones_reintegrated=(runtime.responder.reintegrations
                                 if runtime.responder else 0),
            policy=(runtime.policy.name if runtime.policy else "static"),
            oscillation=(runtime.responder.oscillation
                         if runtime.responder else 0.0))
        registry = self.context.metrics
        if registry.enabled:
            latency = None
            if runtime.policy is not None:
                latency = registry.find(
                    "histogram", "detection_latency_ms",
                    query=query_id, policy=runtime.policy.name)
            registry.add_report(AdaptivityReport(
                query_id=query_id,
                response_time_ms=response_time,
                adaptations_applied=stats.adaptations_accepted,
                proposals_sent=stats.proposals_sent,
                cost_notifications=stats.cost_notifications,
                raw_monitoring_events=stats.raw_monitoring_events,
                tuple_balance_ratio=stats.consumer_imbalance_ratio,
                tuples_per_consumer=tuple(tuples_per_consumer),
                detection_latency_ms=(latency.summary() if latency
                                      else {"count": 0, "sum": 0.0}),
                policy=stats.policy,
                oscillation=stats.oscillation))
        return QueryResult(query_id, sink.final_rows(),
                           runtime.plan.output_schema, stats)
