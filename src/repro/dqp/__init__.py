"""Distributed query processing services (the OGSA-DQP analog)."""

from repro.dqp.client import QueryProcessor
from repro.dqp.deployment import QueryRuntime, deploy_query
from repro.dqp.gdqs import GDQS, QueryHandle, QueryResult, QueryStatistics
from repro.dqp.gqes import GQES

__all__ = [
    "GDQS",
    "GQES",
    "QueryHandle",
    "QueryProcessor",
    "QueryResult",
    "QueryRuntime",
    "QueryStatistics",
    "deploy_query",
]
