"""User-facing query facade.

:class:`QueryProcessor` hides the simulation loop: it owns a GDQS over
a prepared Grid context and runs queries to completion synchronously
(in simulated time), returning :class:`~repro.dqp.gdqs.QueryResult`
objects.
"""

from __future__ import annotations

import typing

from repro.config import (
    AdaptivityConfig,
    CostModel,
    EngineConfig,
    FaultToleranceConfig,
)
from repro.dqp.gdqs import GDQS, QueryResult
from repro.errors import QueryFailedError
from repro.grid.container import GridContext
from repro.services.gds import GridDataService
from repro.services.ws import WebServiceOperation


class QueryProcessor:
    """Run queries against a simulated Grid deployment."""

    def __init__(self, context: GridContext,
                 gds_map: typing.Mapping[str, GridDataService],
                 operations: typing.Mapping[str, WebServiceOperation],
                 coordinator_machine: str,
                 engine_config: EngineConfig | None = None,
                 cost: CostModel | None = None,
                 fault_tolerance: FaultToleranceConfig | None = None
                 ) -> None:
        self.context = context
        self.gdqs = GDQS(context, coordinator_machine, gds_map, operations,
                         engine_config=engine_config, cost=cost,
                         fault_tolerance=fault_tolerance)

    def run(self, query_text: str,
            adaptivity: AdaptivityConfig | None = None,
            degree: int | None = None) -> QueryResult:
        """Execute ``query_text`` to completion; returns its result.

        ``adaptivity`` selects the paper's policies (assessment A1/A2,
        response R1/R2, thresholds); ``degree`` caps intra-operator
        parallelism.

        Raises :class:`~repro.errors.QueryFailedError` if the query
        settles with a typed failure (crash past the recovery budget,
        unrecoverable machine loss, replacement exhaustion).
        """
        handle = self.gdqs.submit(query_text, adaptivity=adaptivity,
                                  degree=degree)
        result = self.context.env.run(until=handle.done)
        # Drain teardown traffic (query-complete broadcasts etc.) so a
        # follow-up query starts from a quiet grid.
        self.context.env.run()
        if getattr(result, "failed", False):
            raise QueryFailedError(result)
        return result
