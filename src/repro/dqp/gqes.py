"""Grid Query Evaluation Services.

A GQES "is dynamically created on each machine that has been selected
by the GDQS's optimiser to contribute to the execution" and contains
the query execution engine (§2).  An *Adaptive* GQES (AGQES)
additionally hosts a local MonitoringEventDetector, whose hook is
threaded into its fragments' operators.

The GQES owns the machine-side halves of every engine protocol:

* ``data`` messages are deserialized (CPU work) and routed into the
  right exchange consumer's queue;
* ``control`` messages (discards, announcements, acknowledgements,
  distribution updates, query completion) are applied in arrival
  order — both paths serialise through the machine's FIFO CPU, which
  preserves the per-link FIFO guarantees the recovery protocol needs.
"""

from __future__ import annotations

import typing

from repro.config import CostModel, EngineConfig, FaultToleranceConfig
from repro.core.monitoring import MonitoringEventDetector
from repro.data.batch import Batch
from repro.engine.control import (
    ChannelAnnouncement,
    DataBuffer,
    DiscardTuples,
    QueryComplete,
    ResetProducer,
)
from repro.engine.evaluator import Fragment
from repro.errors import ServiceError
from repro.grid.container import GridContext
from repro.net.message import Message
from repro.recovery.checkpoint import Acknowledgement
from repro.services.base import GridService


class GQES(GridService):
    """One query-evaluation service instance on one machine."""

    def __init__(self, context: GridContext, query_id: str,
                 machine_name: str, engine_config: EngineConfig,
                 cost: CostModel,
                 detector: MonitoringEventDetector | None = None,
                 fault_tolerance: FaultToleranceConfig | None = None,
                 gdqs_endpoint: str | None = None) -> None:
        super().__init__(context, f"gqes:{query_id}:{machine_name}",
                         machine_name)
        self.query_id = query_id
        self.engine_config = engine_config
        self.cost = cost
        self.detector = detector
        self.fault_tolerance = fault_tolerance or FaultToleranceConfig()
        self.gdqs_endpoint = gdqs_endpoint
        self.fragments: dict[str, Fragment] = {}
        self._consumers: dict[str, tuple] = {}   # channel_key -> (xc, frag)
        self._producers: dict[str, tuple] = {}   # producer_id -> (xp, frag)
        self.query_complete = self.env.event()
        self._evaluators: list = []
        self._ingests_active = 0
        if self.fault_tolerance.enabled and gdqs_endpoint is not None:
            self.env.process(self._heartbeat_loop(),
                             name=f"{self.name}:heartbeat")

    @property
    def is_adaptive(self) -> bool:
        return self.detector is not None

    # -- fault tolerance -----------------------------------------------------

    def _heartbeat_loop(self) -> typing.Generator:
        """Periodically tell the GDQS this evaluator service is alive."""
        interval = self.fault_tolerance.heartbeat_interval_ms
        while not self.crashed and not self.query_complete.triggered:
            self.notify(self.gdqs_endpoint, "gqes.heartbeat",
                        {"machine": self.machine.name, "gqes": self.name})
            yield self.env.timeout(interval)

    def on_crash(self) -> None:
        """Host failure: every evaluator and its state is lost."""
        for fragment in self.fragments.values():
            fragment.halted = True
            for consumer in fragment.consumers.values():
                consumer.aborted = True
                consumer.queue.drain()
                if consumer.queue.waiting_getters:
                    consumer.inject_recheck()
            fragment.wake()

    # -- deployment ------------------------------------------------------

    def deploy(self, fragment: Fragment) -> None:
        """Install a subplan fragment and start its evaluator."""
        if fragment.instance_id in self.fragments:
            raise ServiceError(
                f"{self.name}: fragment {fragment.instance_id} already "
                "deployed")
        self.fragments[fragment.instance_id] = fragment
        fragment.attach_service(self)
        for channel_key, consumer in fragment.consumers.items():
            self._consumers[channel_key] = (consumer, fragment)
        for producer in fragment.producers:
            self._producers[producer.producer_id] = (producer, fragment)
        evaluator = self.env.process(
            fragment.run(self.query_complete),
            name=f"eval:{fragment.instance_id}")
        self._evaluators.append(evaluator)

    # -- data path ----------------------------------------------------------

    # Ingest is a callback chain rather than a per-message process:
    # each chain schedules the same events at the same positions as the
    # old ingest-data/ingest-control process (kick event where the
    # bootstrap was, with the CPU charge issued at the kick's dispatch
    # exactly where the generator's first statement ran), and
    # compensates the process completion event — a callback-less no-op
    # dispatch — with ``env._seq += 1`` where the generator returned.
    # ``_ingests_active`` is raised at the kick's dispatch and dropped
    # just before the compensation, matching the old generator's
    # try/finally, so quiescence detection observes the same windows.

    def on_data(self, message: Message) -> None:
        env = self.env

        def on_kick(_event) -> None:
            self._ingests_active += 1
            buffer: DataBuffer = message.payload
            serialization = self.context.serialization
            # Per-column deserialization term: blocks on the columnar
            # wire decode column-at-a-time (0 columns for per-row wire
            # entries, and the per-column cost defaults to 0 anyway, so
            # the default timeline is unchanged).
            column_count = 0
            for item in buffer.items:
                if isinstance(item, Batch) and item.width > column_count:
                    column_count = item.width
            task = self.machine.cpu.execute(
                serialization.deserialize_work(buffer.tuple_count,
                                               column_count),
                label="deserialize")

            def on_deserialized(_event) -> None:
                try:
                    try:
                        consumer, fragment = self._consumers[
                            buffer.channel_key]
                    except KeyError:
                        raise ServiceError(
                            f"{self.name}: data for unknown channel "
                            f"{buffer.channel_key}") from None
                    consumer.deliver(buffer.producer_id, message.sender,
                                     buffer.items)
                    fragment.wake()
                finally:
                    self._ingests_active -= 1
                env._seq += 1

            task.callbacks.append(on_deserialized)

        kick = self.env.event()
        kick.callbacks.append(on_kick)
        kick.succeed(None)

    # -- control path ---------------------------------------------------------

    def on_control(self, message: Message) -> None:
        env = self.env

        def on_kick(_event) -> None:
            self._ingests_active += 1
            task = self.machine.cpu.execute(self.cost.control_event_work,
                                            label="control")

            def on_charged(_event) -> None:
                try:
                    self._apply_control(message)
                finally:
                    self._ingests_active -= 1
                env._seq += 1

            task.callbacks.append(on_charged)

        kick = self.env.event()
        kick.callbacks.append(on_kick)
        kick.succeed(None)

    def _apply_control(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, DiscardTuples):
            self._apply_discard(payload)
        elif isinstance(payload, ChannelAnnouncement):
            self._apply_announcement(payload)
        elif isinstance(payload, Acknowledgement):
            self._apply_ack(payload)
        elif isinstance(payload, ResetProducer):
            self._apply_reset_producer(payload)
        elif isinstance(payload, QueryComplete):
            self._apply_query_complete()
        else:
            raise ServiceError(
                f"{self.name}: unknown control payload {payload!r}")

    def _apply_discard(self, discard: DiscardTuples) -> None:
        try:
            consumer, fragment = self._consumers[discard.channel_key]
        except KeyError:
            return  # channel torn down already
        consumer.apply_discard(discard)
        fragment.discard_state(discard.channel_key, discard.tids)
        consumer.inject_recheck()
        fragment.wake()

    def _apply_announcement(self, announcement: ChannelAnnouncement) -> None:
        try:
            consumer, fragment = self._consumers[announcement.channel_key]
        except KeyError:
            return
        consumer.apply_announcement(announcement)
        consumer.inject_recheck()
        fragment.wake()

    def _apply_ack(self, ack: Acknowledgement) -> None:
        entry = self._producers.get(ack.producer_id)
        if entry is None:
            return
        producer, _fragment = entry
        producer.handle_ack(ack)

    def _apply_reset_producer(self, reset: ResetProducer) -> None:
        try:
            consumer, fragment = self._consumers[reset.channel_key]
        except KeyError:
            return
        consumer.reset_producer(reset.producer_id)
        consumer.inject_recheck()
        fragment.wake()

    def _apply_query_complete(self) -> None:
        if not self.query_complete.triggered:
            self.query_complete.succeed(None)
        for fragment in self.fragments.values():
            for consumer in fragment.consumers.values():
                consumer.aborted = True
                consumer.queue.drain()
                # Unblock an evaluator parked inside queue.get(); a
                # parked-elsewhere evaluator is woken below instead, so
                # no sentinel is left behind.
                if consumer.queue.waiting_getters:
                    consumer.inject_recheck()
            fragment.wake()

    # -- operations (request/response) ---------------------------------------

    def op_progress(self, payload: dict, sender: str) -> typing.Generator:
        """Progress reports for producers feeding ``subplan_id`` ([7])."""
        subplan_id = payload["subplan_id"]
        reports = [producer.progress()
                   for producer, _fragment in self._producers.values()
                   if producer.target_subplan_id == subplan_id]
        return reports
        yield  # pragma: no cover - generator form required by dispatcher

    def op_update_distribution(self, payload: dict,
                               sender: str) -> typing.Generator:
        """Apply one phase of a distribution update to one producer.

        The Responder drives this as an acknowledged, two-phase
        protocol — replays first across all producers of the subplan
        (build side before probe side), then discards in reverse order
        — so a join instance always observes replayed build state
        before the matching probe tuples, and old state is only torn
        down after the moved probe tuples left the old consumer.
        """
        if self.query_complete.triggered:
            return "query-complete"
        entry = self._producers.get(payload["producer_id"])
        if entry is None:
            return "unknown-producer"
        producer, _fragment = entry
        if payload["phase"] == "replay":
            applied = yield from producer.apply_update_replay(
                payload["update"])
            return "applied" if applied else "stale-epoch"
        yield from producer.apply_update_discard()
        return "discarded"

    def op_redirect_channels(self, payload: dict,
                             sender: str) -> typing.Generator:
        """Re-point local producers' channels at a replacement host.

        Part of failure recovery: every producer feeding
        ``subplan_id`` redirects the channels of ``instance_id`` to
        ``endpoint`` and replays its recovery logs.
        """
        redirected = 0
        for producer, _fragment in list(self._producers.values()):
            if producer.target_subplan_id != payload["subplan_id"]:
                continue
            redirected += yield from producer.redirect_instance(
                payload["instance_id"], payload["endpoint"])
        return redirected

    def op_update_status(self, payload: dict,
                         sender: str) -> typing.Generator:
        """Two-phase-update state of local producers for a subplan.

        Used by the GDQS to roll an orphaned update forward after the
        Responder crashed between the replay and discard phases.
        """
        status = []
        for producer, _fragment in self._producers.values():
            if producer.target_subplan_id != payload["subplan_id"]:
                continue
            status.append({
                "producer_id": producer.producer_id,
                "applied_epoch": producer.applied_epoch,
                "moving": producer.moving,
                "last_update": producer.last_update,
            })
        return status
        yield  # pragma: no cover - generator form required by dispatcher

    def op_processed(self, payload: dict, sender: str) -> typing.Generator:
        """Tuples consumed so far by local instances of ``subplan_id``."""
        subplan_id = payload["subplan_id"]
        total = sum(fragment.ctx.metrics.consumed
                    for fragment in self.fragments.values()
                    if fragment.subplan_id == subplan_id)
        return total
        yield  # pragma: no cover - generator form required by dispatcher

    # -- coordinator-side termination detection -------------------------------

    def is_quiescent(self) -> bool:
        """No undelivered, unprocessed or in-flight engine work here.

        Used by the GDQS to double-check query completion: a sink that
        looks complete is only trusted once every GQES is quiescent, so
        an adaptation racing the finish line cannot be missed.
        """
        if self.crashed:
            return True  # a dead node holds no recoverable work
        if self._ingests_active > 0 or len(self.mailbox) > 0:
            return False
        for fragment in self.fragments.values():
            for consumer in fragment.consumers.values():
                if len(consumer.queue) > 0:
                    return False
                if not (consumer.aborted or consumer.is_complete()):
                    return False
            for producer in fragment.producers:
                if not producer.finished or producer.moving:
                    return False
        return True
