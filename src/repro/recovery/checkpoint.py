"""Checkpoint and acknowledgement markers.

The fault-tolerance infrastructure of [18] (Smith & Watson 2004) has
exchange producers insert *checkpoint tuples* into the data stream;
when every tuple between two checkpoints has finished processing and
is no longer needed upstream, the consumer returns the checkpoint as
an *acknowledgement tuple* and the producer prunes its recovery log.
The adaptivity work reuses exactly this machinery for retrospective
(R1) state repartitioning, so only these pieces are implemented.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class Checkpoint:
    """A checkpoint marker embedded in a data stream.

    ``preceding_count`` is the number of data tuples sent on the
    channel before this marker, letting the consumer sanity-check the
    protocol.
    """

    checkpoint_id: int
    producer_id: str
    preceding_count: int


@dataclasses.dataclass(frozen=True)
class Acknowledgement:
    """Returned by a consumer once a checkpoint's tuples are finished."""

    checkpoint_id: int
    producer_id: str
    channel_key: str
