"""Fault-tolerance substrate reused for state repartitioning (R1)."""

from repro.recovery.checkpoint import Acknowledgement, Checkpoint
from repro.recovery.log import RecoveryLog

__all__ = ["Acknowledgement", "Checkpoint", "RecoveryLog"]
