"""Producer-side recovery logs.

"In practice, the recovery logs contain, at any point, the tuples that
have not finished being processed by the evaluators to which they were
sent, and thus include all the in-transit tuples, and the tuples that
make up operator states.  This provides an opportunity to repartition
state across consumer nodes by extracting the tuples stored in the
recovery logs" (§3.1, Response).

One :class:`RecoveryLog` exists per (producer, consumer channel).  It
holds checkpoint-delimited segments of sent-but-unacknowledged tuples;
an acknowledgement prunes every segment up to its checkpoint id.
"""

from __future__ import annotations

import collections
import typing

from repro.data.batch import Batch
from repro.data.tuples import Row, Tid
from repro.errors import RecoveryError


def _segment_rows(segment: list) -> int:
    """Row count of a segment whose entries are Rows or Batch blocks."""
    return sum(len(entry) if isinstance(entry, Batch) else 1
               for entry in segment)


class RecoveryLog:
    """Checkpoint-segmented log of unacknowledged tuples for a channel.

    Segment entries are individual :class:`Row` objects or — on the
    columnar plane — whole :class:`Batch` blocks kept column-backed,
    so logging a block is O(1) and rows only materialize if an
    adaptation actually inspects the log.
    """

    def __init__(self, channel_key: str) -> None:
        self.channel_key = channel_key
        self._sealed: "collections.OrderedDict[int, list]" = (
            collections.OrderedDict())
        self._open: list = []
        self._last_sealed_id: int | None = None
        self.appended_total = 0
        self.acknowledged_total = 0

    def __len__(self) -> int:
        return (sum(_segment_rows(seg) for seg in self._sealed.values())
                + _segment_rows(self._open))

    def append(self, row: Row) -> None:
        """Log a tuple just sent on this channel."""
        self._open.append(row)
        self.appended_total += 1

    def append_batch(self, rows: typing.Sequence[Row]) -> None:
        """Log a batch of tuples in order (one call per log segment).

        Callers segment batches at checkpoint boundaries, so a batch
        never spans a :meth:`seal`; per-tuple provenance is preserved
        because the log stores the individual rows.
        """
        self._open.extend(rows)
        self.appended_total += len(rows)

    def append_block(self, block: Batch) -> None:
        """Log a wire block without materializing its rows.

        The block is stored as-is; callers segment blocks at checkpoint
        boundaries just as with :meth:`append_batch`, so a block never
        spans a :meth:`seal`.
        """
        self._open.append(block)
        self.appended_total += len(block)

    def seal(self, checkpoint_id: int) -> None:
        """Close the open segment under ``checkpoint_id``."""
        if (self._last_sealed_id is not None
                and checkpoint_id <= self._last_sealed_id):
            raise RecoveryError(
                f"{self.channel_key}: checkpoint ids must increase "
                f"({checkpoint_id} after {self._last_sealed_id})")
        self._sealed[checkpoint_id] = self._open
        self._open = []
        self._last_sealed_id = checkpoint_id

    def acknowledge(self, checkpoint_id: int) -> int:
        """Prune segments up to ``checkpoint_id``; returns tuples freed."""
        freed = 0
        for sealed_id in list(self._sealed):
            if sealed_id > checkpoint_id:
                break
            freed += _segment_rows(self._sealed.pop(sealed_id))
        self.acknowledged_total += freed
        return freed

    def outstanding(self) -> list[Row]:
        """Every logged (sent but unacknowledged) tuple, oldest first."""
        rows: list[Row] = []
        for segment in self._sealed.values():
            for entry in segment:
                if isinstance(entry, Batch):
                    rows.extend(entry.rows)
                else:
                    rows.append(entry)
        for entry in self._open:
            if isinstance(entry, Batch):
                rows.extend(entry.rows)
            else:
                rows.append(entry)
        return rows

    def remove(self, tids: typing.AbstractSet[Tid]) -> list[Row]:
        """Remove (and return) logged tuples whose tid is in ``tids``.

        Used when a retrospective repartition moves tuples to another
        consumer: they leave this channel's log and are re-logged on
        the new channel when resent.  A logged block containing any
        matched tuple is filtered in place (column-backed slice-out);
        blocks untouched by ``tids`` are kept whole.
        """
        removed: list[Row] = []

        def filter_segment(segment: list) -> list:
            kept = []
            for entry in segment:
                if isinstance(entry, Batch):
                    kept_block, dropped = entry.filter_tids(tids)
                    if dropped:
                        removed.extend(row for row in entry.rows
                                       if row.tid in tids)
                    if len(kept_block):
                        kept.append(kept_block)
                elif entry.tid in tids:
                    removed.append(entry)
                else:
                    kept.append(entry)
            return kept

        for sealed_id in list(self._sealed):
            self._sealed[sealed_id] = filter_segment(self._sealed[sealed_id])
        self._open = filter_segment(self._open)
        return removed

    def clear(self) -> None:
        """Drop everything (query complete)."""
        self._sealed.clear()
        self._open.clear()
