"""Simulated Grid machine.

A machine bundles a FIFO CPU, a relative speed factor, and a set of
:class:`~repro.grid.perturbation.Perturbation` models.  Query operators
execute labelled work through :meth:`Machine.work`, which applies
matching perturbations (cost inflation and/or thread-blocking sleeps)
and charges the CPU.

Machines also carry the capacity-share ledger of the multi-query
scheduler (:mod:`repro.sched`): each admitted session charges shares
on the machines its subplans occupy.  The shares do not alter CPU
costs — contention between co-resident sessions emerges from the
FIFO CPU server itself, whose queueing delays every resident morsel
burst in proportion to competing demand (so each query's measured M1
costs rise and its Diagnoser rebalances through the paper's
unchanged adaptivity loop, while an admitted-but-idle neighbour
slows nobody).  The ledger is the scheduler's residency record: it
drives load-aware placement of new sessions and the capacity
pressure reported by :meth:`Machine.contention_factor`.
"""

from __future__ import annotations

import random
import typing

from repro.grid.perturbation import Perturbation, WorkEffect
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.resources import Cpu, SpeedFunction

#: Memoized repeated float addition: ``(work, count) -> work summed
#: count times``.  Batch work charges sum per-item work by repeated
#: addition so the total is bit-identical to ``count`` sequential
#: per-item charges; the cost-model emits a handful of distinct work
#: constants and counts are bounded by the batch size, so the table
#: stays tiny and the hot path becomes a dict hit.
_REPEATED_ADD: dict[tuple[float, int], float] = {}


def _repeated_add(work: float, count: int) -> float:
    key = (work, count)
    total = _REPEATED_ADD.get(key)
    if total is None:
        total = 0.0
        for _ in range(count):
            total += work
        _REPEATED_ADD[key] = total
    return total


class Machine:
    """A named computational resource on the simulated Grid."""

    def __init__(self, env: Environment, name: str,
                 speed: float | SpeedFunction = 1.0,
                 rng: random.Random | None = None,
                 capacity: float = 1.0,
                 metrics=None) -> None:
        self.env = env
        self.name = name
        self.cpu = Cpu(env, speed=speed)
        self.perturbations: list[Perturbation] = []
        self._rng = rng or random.Random(0)
        #: Session-shares this machine serves without capacity
        #: pressure; the denominator of :meth:`contention_factor`.
        self.capacity = float(capacity)
        self._shares: dict[str, float] = {}
        #: End of the current chaos-injected stall window (sim ms);
        #: 0.0 (i.e. the past) means not frozen.
        self.frozen_until = 0.0
        #: Simulated time of a permanent fail-stop; None = alive.
        self.crashed_at: float | None = None
        if metrics is not None:
            self._register_metrics(metrics)

    def _register_metrics(self, metrics) -> None:
        """Expose this machine's observables through the registry.

        Callback gauges are read only at snapshot time and the queue
        sampler is a pure in-memory append, so none of this perturbs
        the simulation (the zero-cost metrics invariant).
        """
        metrics.gauge("machine_cpu_busy_ms",
                      fn=lambda: self.cpu.busy_time, machine=self.name)
        metrics.gauge("machine_cpu_utilisation",
                      fn=self.cpu.utilisation, machine=self.name)
        metrics.gauge("machine_cpu_tasks_completed",
                      fn=lambda: self.cpu.tasks_completed,
                      machine=self.name)
        metrics.gauge("machine_contention_factor",
                      fn=self.contention_factor, machine=self.name)
        self.cpu.queue_sampler = metrics.series(
            "machine_cpu_queue_depth", machine=self.name)

    # -- capacity shares (multi-query fair sharing) ---------------------

    def acquire_share(self, owner: str, weight: float = 1.0) -> None:
        """Charge ``weight`` capacity shares on behalf of ``owner``."""
        if weight <= 0:
            raise ValueError(f"share weight must be positive: {weight}")
        self._shares[owner] = self._shares.get(owner, 0.0) + weight

    def release_share(self, owner: str) -> None:
        """Release every share held by ``owner`` (idempotent)."""
        self._shares.pop(owner, None)

    @property
    def committed_shares(self) -> float:
        """Total shares currently charged by resident sessions."""
        return sum(self._shares.values())

    def contention_factor(self) -> float:
        """Capacity pressure from resident sessions (an observable).

        1.0 while committed shares fit the capacity, and
        ``shares / capacity`` beyond it — the slowdown a session
        should *expect* here if every resident neighbour keeps the
        FIFO CPU busy.  Reported through scheduler telemetry and used
        for load-aware placement; it is deliberately **not** charged
        to CPU bursts, because the shared FIFO server already makes
        co-resident sessions queue behind each other (multiplying
        work on top would double-count the interference and penalise
        sessions for idle neighbours).
        """
        if not self._shares:
            return 1.0
        load = sum(self._shares.values())
        if load <= self.capacity:
            return 1.0
        return load / self.capacity

    # -- transient stalls (chaos injection) -----------------------------

    @property
    def is_frozen(self) -> bool:
        return self.frozen_until > self.env.now

    def freeze(self, duration_ms: float) -> float:
        """Stall this machine for ``duration_ms`` from now.

        The CPU serves no new burst and the hosted services neither
        dispatch incoming messages nor transmit outgoing ones until the
        window ends; all of it is retained and drains at thaw.  Unlike
        :meth:`~repro.grid.container.GridContext.fail_machine` nothing
        is lost — the machine comes back.  Returns the thaw time.
        """
        until = self.env.now + duration_ms
        self.frozen_until = max(self.frozen_until, until)
        self.cpu.freeze_until(self.frozen_until)
        return self.frozen_until

    # -- permanent crashes (fault tolerance) ----------------------------

    @property
    def is_crashed(self) -> bool:
        return self.crashed_at is not None

    def crash(self) -> None:
        """Fail-stop this machine forever (idempotent).

        The CPU gate closes permanently — queued and future work never
        serves — and placement layers (optimizer candidates, scheduler
        machine order, recovery replacement picks) must skip the
        machine from now on.  Service-level teardown (endpoint
        deactivation, fragment halts) is the caller's job; see
        :meth:`repro.grid.container.GridContext.crash_machine`.
        """
        if self.crashed_at is None:
            self.crashed_at = self.env.now
            self.cpu.close()

    def add_perturbation(self, perturbation: Perturbation) -> None:
        """Attach a perturbation model to this machine."""
        self.perturbations.append(perturbation)

    def clear_perturbations(self) -> None:
        self.perturbations.clear()

    def effect_of(self, label: str, work: float) -> WorkEffect:
        """Perturbed (cpu_work, delay) for ``work`` units of ``label``."""
        effect = WorkEffect(cpu_work=work)
        for perturbation in self.perturbations:
            if perturbation.matches(label, self.env.now):
                effect = perturbation.apply(effect, self._rng)
        return effect

    def work(self, label: str, work: float
             ) -> typing.Generator[Event, typing.Any, float]:
        """Execute labelled work; returns the elapsed time.

        Usage inside a process: ``elapsed = yield from machine.work(...)``.
        Blocking delays (sleep injections) occur before the CPU burst,
        mirroring the paper's "sleep() call before the processing of
        each tuple".
        """
        started = self.env.now
        if self.perturbations:
            effect = self.effect_of(label, work)
            if effect.blocking_delay > 0:
                yield self.env.timeout(effect.blocking_delay)
            work = effect.cpu_work
        if work > 0:
            yield self.cpu.execute(work, label=label)
        return self.env.now - started

    def work_batch(self, label: str, work_per_item: float, count: int
                   ) -> typing.Generator[Event, typing.Any, float]:
        """Execute ``count`` items of labelled work as one CPU burst.

        Perturbation effects are evaluated once per item (so stochastic
        cost factors draw from the RNG exactly as often as ``count``
        sequential :meth:`work` calls would, and sleep injections block
        once per item), but the summed blocking delay and CPU work are
        charged as a single timeout plus a single CPU task — one or two
        simulator events per batch instead of per tuple.  ``count=1``
        is exactly :meth:`work`.

        The matching-perturbation set is hoisted out of the item loop:
        the loop contains no yield, so ``env.now`` — the only input to
        ``matches`` besides the label — cannot change mid-batch.  With
        no match the per-item accumulation degenerates to repeated
        addition of ``work_per_item``; the repeated add is kept (rather
        than one multiply) so the summed float is bit-identical to the
        per-item effect loop, and memoized per ``(work, count)`` since
        the result is a pure function of both.
        """
        if count <= 0:
            return 0.0
        started = self.env.now
        active = [perturbation for perturbation in self.perturbations
                  if perturbation.matches(label, started)]
        total_cpu = 0.0
        total_delay = 0.0
        if active:
            if all(perturbation.deterministic for perturbation in active):
                # Every item's effect is identical and no RNG is drawn,
                # so one apply plus the memoized repeated add matches
                # the per-item loop bit-for-bit.
                effect = WorkEffect(cpu_work=work_per_item)
                for perturbation in active:
                    effect = perturbation.apply(effect, self._rng)
                total_cpu = _repeated_add(effect.cpu_work, count)
                total_delay = _repeated_add(effect.blocking_delay, count)
            else:
                rng = self._rng
                for _ in range(count):
                    effect = WorkEffect(cpu_work=work_per_item)
                    for perturbation in active:
                        effect = perturbation.apply(effect, rng)
                    total_cpu += effect.cpu_work
                    total_delay += effect.blocking_delay
        else:
            total_cpu = _repeated_add(work_per_item, count)
        if total_delay > 0:
            yield self.env.timeout(total_delay)
        if total_cpu > 0:
            yield self.cpu.execute(total_cpu, label=label)
        return self.env.now - started

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Machine {self.name!r}>"
