"""Simulated Grid machine.

A machine bundles a FIFO CPU, a relative speed factor, and a set of
:class:`~repro.grid.perturbation.Perturbation` models.  Query operators
execute labelled work through :meth:`Machine.work`, which applies
matching perturbations (cost inflation and/or thread-blocking sleeps)
and charges the CPU.
"""

from __future__ import annotations

import random
import typing

from repro.grid.perturbation import Perturbation, WorkEffect
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.resources import Cpu, SpeedFunction


class Machine:
    """A named computational resource on the simulated Grid."""

    def __init__(self, env: Environment, name: str,
                 speed: float | SpeedFunction = 1.0,
                 rng: random.Random | None = None) -> None:
        self.env = env
        self.name = name
        self.cpu = Cpu(env, speed=speed)
        self.perturbations: list[Perturbation] = []
        self._rng = rng or random.Random(0)

    def add_perturbation(self, perturbation: Perturbation) -> None:
        """Attach a perturbation model to this machine."""
        self.perturbations.append(perturbation)

    def clear_perturbations(self) -> None:
        self.perturbations.clear()

    def effect_of(self, label: str, work: float) -> WorkEffect:
        """Perturbed (cpu_work, delay) for ``work`` units of ``label``."""
        effect = WorkEffect(cpu_work=work)
        for perturbation in self.perturbations:
            if perturbation.matches(label, self.env.now):
                effect = perturbation.apply(effect, self._rng)
        return effect

    def work(self, label: str, work: float
             ) -> typing.Generator[Event, typing.Any, float]:
        """Execute labelled work; returns the elapsed time.

        Usage inside a process: ``elapsed = yield from machine.work(...)``.
        Blocking delays (sleep injections) occur before the CPU burst,
        mirroring the paper's "sleep() call before the processing of
        each tuple".
        """
        started = self.env.now
        effect = self.effect_of(label, work)
        if effect.blocking_delay > 0:
            yield self.env.timeout(effect.blocking_delay)
        if effect.cpu_work > 0:
            yield self.cpu.execute(effect.cpu_work, label=label)
        return self.env.now - started

    def work_batch(self, label: str, work_per_item: float, count: int
                   ) -> typing.Generator[Event, typing.Any, float]:
        """Execute ``count`` items of labelled work as one CPU burst.

        Perturbation effects are evaluated once per item (so stochastic
        cost factors draw from the RNG exactly as often as ``count``
        sequential :meth:`work` calls would, and sleep injections block
        once per item), but the summed blocking delay and CPU work are
        charged as a single timeout plus a single CPU task — one or two
        simulator events per batch instead of per tuple.  ``count=1``
        is exactly :meth:`work`.
        """
        if count <= 0:
            return 0.0
        started = self.env.now
        total_cpu = 0.0
        total_delay = 0.0
        for _ in range(count):
            effect = self.effect_of(label, work_per_item)
            total_cpu += effect.cpu_work
            total_delay += effect.blocking_delay
        if total_delay > 0:
            yield self.env.timeout(total_delay)
        if total_cpu > 0:
            yield self.cpu.execute(total_cpu, label=label)
        return self.env.now - started

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Machine {self.name!r}>"
