"""The Grid context: one object bundling the simulated world.

A :class:`GridContext` owns the simulation environment, the network
fabric, the resource registry, the serialization cost model and the
named random streams.  Every service and operator receives the context
instead of five separate collaborators, which keeps construction
signatures short and the wiring explicit.
"""

from __future__ import annotations

from repro.grid.machine import Machine
from repro.grid.registry import ResourceRegistry
from repro.net.network import Network, NetworkConfig
from repro.net.serialization import SerializationModel
from repro.sim.environment import Environment
from repro.sim.rand import RandomStreams
from repro.sim.resources import SpeedFunction
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.trace import Tracer


class GridContext:
    """The fully-wired simulated Grid."""

    def __init__(self, seed: int = 0,
                 network_config: NetworkConfig | None = None,
                 serialization: SerializationModel | None = None,
                 trace_max_events: int | None = None,
                 metrics_enabled: bool = True) -> None:
        self.env = Environment()
        self.random = RandomStreams(seed)
        self.network = Network(self.env, network_config)
        self.registry = ResourceRegistry()
        self.serialization = serialization or SerializationModel()
        self.tracer = Tracer(self.env, max_events=trace_max_events)
        self.metrics = MetricsRegistry(self.env, enabled=metrics_enabled)
        self._services: list = []
        #: Installed fault injector; None leaves every chaos hook on
        #: its zero-cost fast path (no events, no draws, no streams).
        self.chaos = None

    def install_chaos(self, config) -> None:
        """Install (or clear) the chaos injector for this grid.

        A ``None``, disabled, or empty-schedule
        :class:`~repro.chaos.config.ChaosConfig` installs nothing,
        preserving the bit-identical baseline timeline: chaos with no
        faults to inject must not exist as far as the simulation can
        tell.
        """
        if (config is None or not config.enabled
                or config.schedule.is_empty):
            self.chaos = None
            self.network.chaos = None
            return
        from repro.chaos.injector import ChaosInjector
        self.chaos = ChaosInjector(config, self)
        self.network.chaos = self.chaos
        self.chaos.start()

    def call_retry_policy(self):
        """The control-plane retry policy, when chaos is installed."""
        if self.chaos is None:
            return None
        return self.chaos.config.call_retry

    def track_service(self, service) -> None:
        """Record a service for machine-level failure injection."""
        self._services.append(service)

    def services_on(self, machine_name: str) -> list:
        """All live services hosted on ``machine_name``."""
        return [service for service in self._services
                if service.machine.name == machine_name
                and not service.crashed]

    def fail_machine(self, machine_name: str) -> list:
        """Crash every service on ``machine_name``; returns them."""
        victims = self.services_on(machine_name)
        for service in victims:
            service.crash()
        self.tracer.record("failure", machine_name, "machine failed",
                           services_lost=len(victims))
        return victims

    def crash_machine(self, machine_name: str) -> list:
        """Permanently fail-stop ``machine_name``; returns lost services.

        Beyond :meth:`fail_machine` (which only kills the *services*,
        leaving the host available for replacement deployments), this
        also crashes the machine itself: the CPU gate closes forever
        and every placement layer excludes it from now on — heartbeats
        never resume, so the GDQS declares it dead rather than suspect.
        """
        machine = self.registry.machine(machine_name)
        machine.crash()
        victims = self.services_on(machine_name)
        for service in victims:
            service.crash()
        self.tracer.record("failure", machine_name, "machine crashed",
                           services_lost=len(victims))
        return victims

    def add_machine(self, name: str, speed: float | SpeedFunction = 1.0,
                    compute: bool = True, spare: bool = False,
                    site: str | None = None,
                    lazy: bool = False) -> Machine | None:
        """Create and register a machine in one step.

        With ``lazy`` the machine is registered as a spec and only
        built on first access (placement, fault injection, direct
        lookup) — a fleet of mostly-idle machines costs nothing at
        startup.  Laziness is invisible to determinism: the machine's
        RNG is the named stream ``machine:{name}``, derived purely
        from the master seed, so *when* the machine is built cannot
        change any draw.  Returns the machine, or None when lazy.
        """
        def build() -> Machine:
            return Machine(self.env, name, speed=speed,
                           rng=self.random.stream(f"machine:{name}"),
                           metrics=self.metrics)

        if lazy:
            self.registry.add_machine_spec(name, build, compute=compute,
                                           spare=spare, site=site)
            return None
        machine = build()
        self.registry.add_machine(machine, compute=compute, spare=spare,
                                  site=site)
        return machine

    def machine(self, name: str) -> Machine:
        return self.registry.machine(name)

    @property
    def now(self) -> float:
        return self.env.now
