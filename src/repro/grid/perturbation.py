"""Perturbation models for Grid resources.

The paper creates artificial load in two ways (§3.2): "(i) programming
a computation to iterate over the same function multiple times", which
multiplies the CPU cost of an operation, and "(ii) inserting sleep()
calls", which blocks the evaluating thread without consuming CPU.  The
rapid-change experiments (Fig. 5) additionally vary the cost factor
per incoming tuple "in a normally distributed way, so that the mean
value remains stable".

A perturbation targets operator *labels* (e.g. ``"ws-call"`` or
``"join-probe"``) on one machine and is active over a time window.  It
transforms a requested unit of work into ``(cpu_work, blocking_delay)``.
"""

from __future__ import annotations

import abc
import dataclasses
import random

from repro.errors import ConfigurationError


@dataclasses.dataclass(slots=True)
class WorkEffect:
    """Result of applying perturbations to a unit of work."""

    cpu_work: float
    blocking_delay: float = 0.0


class Perturbation(abc.ABC):
    """Base class for machine perturbations.

    ``target`` is matched against operator labels; ``"*"`` matches all
    work on the machine.  ``start``/``end`` bound the active window in
    simulated time.

    ``deterministic`` declares that :meth:`apply` is a pure function of
    its input effect (no RNG draws), letting batch work charges apply
    the perturbation once per batch instead of once per item.  The base
    default is ``False`` — the safe assumption for subclasses.
    """

    deterministic = False

    def __init__(self, target: str = "*", start: float = 0.0,
                 end: float = float("inf")) -> None:
        if end < start:
            raise ConfigurationError(
                f"perturbation window empty: [{start}, {end})")
        self.target = target
        self.start = start
        self.end = end

    def matches(self, label: str, now: float) -> bool:
        """True when this perturbation applies to ``label`` at ``now``."""
        in_window = self.start <= now < self.end
        return in_window and (self.target == "*" or self.target == label)

    @abc.abstractmethod
    def apply(self, effect: WorkEffect, rng: random.Random) -> WorkEffect:
        """Transform the work effect (may draw from ``rng``)."""


class CostFactor(Perturbation):
    """Multiplies the CPU cost of matching work.

    The paper's "10/20/30 times costlier" Web Service perturbations.
    """

    deterministic = True

    def __init__(self, factor: float, target: str = "*", start: float = 0.0,
                 end: float = float("inf")) -> None:
        super().__init__(target, start, end)
        if factor <= 0:
            raise ConfigurationError(f"cost factor must be positive: {factor}")
        self.factor = factor

    def apply(self, effect: WorkEffect, rng: random.Random) -> WorkEffect:
        return WorkEffect(effect.cpu_work * self.factor,
                          effect.blocking_delay)


class SleepInjection(Perturbation):
    """Adds a fixed blocking delay before matching work.

    The paper's ``sleep(10msecs)`` inserted before each join tuple:
    the delay blocks the evaluator thread but leaves the CPU free.
    """

    deterministic = True

    def __init__(self, sleep_ms: float, target: str = "*",
                 start: float = 0.0, end: float = float("inf")) -> None:
        super().__init__(target, start, end)
        if sleep_ms < 0:
            raise ConfigurationError(f"negative sleep: {sleep_ms}")
        self.sleep_ms = sleep_ms

    def apply(self, effect: WorkEffect, rng: random.Random) -> WorkEffect:
        return WorkEffect(effect.cpu_work,
                          effect.blocking_delay + self.sleep_ms)


class StochasticCostFactor(Perturbation):
    """Per-task cost factor drawn from a truncated normal distribution.

    Used for the rapid-change experiments (Fig. 5): the factor for each
    incoming tuple is drawn from N(mean, sigma) clipped to
    ``[low, high]``, with sigma chosen so ~99.7% of the mass lies in
    the range (range/6), keeping the mean stable as in the paper.
    """

    def __init__(self, low: float, high: float, target: str = "*",
                 mean: float | None = None, start: float = 0.0,
                 end: float = float("inf")) -> None:
        super().__init__(target, start, end)
        if low <= 0 or high < low:
            raise ConfigurationError(
                f"invalid stochastic factor range: [{low}, {high}]")
        self.low = low
        self.high = high
        self.mean = (low + high) / 2.0 if mean is None else mean
        self.sigma = (high - low) / 6.0

    def draw(self, rng: random.Random) -> float:
        """Sample one cost factor."""
        if self.sigma == 0:
            return self.mean
        value = rng.gauss(self.mean, self.sigma)
        return min(self.high, max(self.low, value))

    def apply(self, effect: WorkEffect, rng: random.Random) -> WorkEffect:
        return WorkEffect(effect.cpu_work * self.draw(rng),
                          effect.blocking_delay)


class JitterFactor(Perturbation):
    """Small multiplicative noise modelling real-machine fluctuations.

    The paper notes that "slight fluctuations in performance ... are
    inevitable in a real wide-area environment" and uses them to probe
    spurious adaptations.  Factors are drawn per task from
    N(1, sigma), clipped to stay positive.
    """

    def __init__(self, sigma: float, target: str = "*", start: float = 0.0,
                 end: float = float("inf")) -> None:
        super().__init__(target, start, end)
        if sigma < 0:
            raise ConfigurationError(f"negative jitter sigma: {sigma}")
        self.sigma = sigma

    def apply(self, effect: WorkEffect, rng: random.Random) -> WorkEffect:
        factor = max(0.05, rng.gauss(1.0, self.sigma))
        return WorkEffect(effect.cpu_work * factor, effect.blocking_delay)
