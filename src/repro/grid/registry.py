"""Resource registry and metadata catalog.

OGSA-DQP's GDQS "contacts resource registries that contain the
addresses of the computational and data resources available and
updates the metadata catalog of the system" (§2).  This module is that
registry: it records which machines exist, which may evaluate query
fragments, where each table's Grid Data Service lives, and which Web
Service operations are available on which machines.

Two fleet-scale features live here:

* **Sites.**  Every machine belongs to a site (``DEFAULT_SITE`` when
  none is named).  Sites are the aggregation tier of the two-level
  monitoring/placement topology: the scheduler's fleet index keeps one
  incrementally-maintained load summary per site and one per machine
  within its site, so placement picks least-loaded-site then
  least-loaded-machine without touching the whole fleet.  A grid that
  never names a site has exactly one implicit site, which degenerates
  to the flat (pre-site) ordering bit-for-bit.

* **Lazy machines.**  ``add_machine_spec`` registers a *description*
  of a machine plus a factory; the :class:`~repro.grid.machine.Machine`
  object (CPU, RNG stream, metric gauges) is only built on first
  access — first placement, first fault injection, first direct
  lookup.  A 1,000-machine scenario therefore pays construction cost
  only for the machines queries actually touch.  Determinism is
  unaffected: machine RNGs are independent named streams
  (:meth:`repro.sim.rand.RandomStreams.stream`), so materialization
  order cannot perturb any draw.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import PlanningError
from repro.grid.machine import Machine

#: Site of every machine registered without an explicit site.
DEFAULT_SITE = "default"


@dataclasses.dataclass
class TableMetadata:
    """Catalog entry for a table exposed as a Grid Data Service."""

    table_name: str
    gds_endpoint: str
    machine_name: str
    cardinality: int
    tuple_bytes: int


@dataclasses.dataclass
class OperationMetadata:
    """Catalog entry for a Web Service operation (typed foreign function)."""

    operation_name: str
    machine_names: list[str]
    base_work_ms: float


@dataclasses.dataclass
class MachineSpec:
    """A registered-but-not-yet-built machine.

    ``factory`` is a zero-argument callable returning the
    :class:`Machine`; the registry invokes it at most once, on first
    access, and then notifies every materialization listener.
    """

    name: str
    factory: typing.Callable[[], Machine]


class ResourceRegistry:
    """Names and metadata for every resource on the simulated Grid."""

    def __init__(self) -> None:
        self._machines: dict[str, Machine] = {}
        self._specs: dict[str, MachineSpec] = {}
        self._compute_machines: list[str] = []
        self._compute_set: set[str] = set()
        self._spare_machines: list[str] = []
        self._sites: dict[str, str] = {}
        self._site_members: dict[str, list[str]] = {}
        self._tables: dict[str, TableMetadata] = {}
        self._operations: dict[str, OperationMetadata] = {}
        #: Called with each Machine right after lazy materialization
        #: (eagerly-added machines never fire these: their creator
        #: already holds the object and wires it up directly).
        self._materialize_listeners: list = []

    # -- machines --------------------------------------------------------

    def _register_name(self, name: str, compute: bool, spare: bool,
                       site: str | None) -> None:
        if name in self._machines or name in self._specs:
            raise PlanningError(f"duplicate machine: {name}")
        if compute:
            self._compute_machines.append(name)
            self._compute_set.add(name)
        if spare:
            self._spare_machines.append(name)
        site = site or DEFAULT_SITE
        self._sites[name] = site
        self._site_members.setdefault(site, []).append(name)

    def add_machine(self, machine: Machine, compute: bool = True,
                    spare: bool = False, site: str | None = None) -> None:
        """Register ``machine``.

        ``compute`` marks it schedulable by the optimizer; ``spare``
        marks it a standby used only by failure recovery; ``site``
        names its aggregation site (``DEFAULT_SITE`` when omitted).
        """
        self._register_name(machine.name, compute, spare, site)
        self._machines[machine.name] = machine

    def add_machine_spec(self, name: str,
                         factory: typing.Callable[[], Machine],
                         compute: bool = True, spare: bool = False,
                         site: str | None = None) -> None:
        """Register a lazy machine built by ``factory`` on first access."""
        self._register_name(name, compute, spare, site)
        self._specs[name] = MachineSpec(name, factory)

    def on_materialize(self, listener) -> None:
        """Call ``listener(machine)`` after each lazy materialization."""
        self._materialize_listeners.append(listener)

    def _materialize(self, name: str) -> Machine:
        spec = self._specs.pop(name)
        machine = spec.factory()
        self._machines[name] = machine
        for listener in self._materialize_listeners:
            listener(machine)
        return machine

    def machine(self, name: str) -> Machine:
        machine = self._machines.get(name)
        if machine is not None:
            return machine
        if name in self._specs:
            return self._materialize(name)
        raise PlanningError(f"unknown machine: {name}")

    def peek(self, name: str) -> Machine | None:
        """The machine if already built, else None (no materialization).

        Raises for names the registry has never heard of, so typos
        fail loudly instead of reading as "not built yet".
        """
        machine = self._machines.get(name)
        if machine is None and name not in self._specs:
            raise PlanningError(f"unknown machine: {name}")
        return machine

    def is_materialized(self, name: str) -> bool:
        return name in self._machines

    def machines(self) -> list[Machine]:
        """Every machine, materializing any outstanding lazy specs.

        Deliberately eager — callers iterating "all machines" expect
        objects.  Hot paths at fleet scale should use
        :meth:`materialized_machines` (or names) instead.
        """
        for name in list(self._specs):
            self._materialize(name)
        return list(self._machines.values())

    def materialized_machines(self) -> list[Machine]:
        """Machines built so far, in registration-then-access order."""
        return list(self._machines.values())

    def machine_names(self) -> list[str]:
        """Every registered name, built or not, in registration order."""
        names = [name for name in self._sites]
        return names

    def compute_machines(self) -> list[str]:
        """Names of machines the optimizer may schedule fragments on."""
        return list(self._compute_machines)

    def is_compute(self, name: str) -> bool:
        return name in self._compute_set

    def spare_machines(self) -> list[str]:
        """Standby machines reserved for failure recovery."""
        return list(self._spare_machines)

    # -- sites -----------------------------------------------------------

    def site_of(self, name: str) -> str:
        try:
            return self._sites[name]
        except KeyError:
            raise PlanningError(f"unknown machine: {name}") from None

    def sites(self) -> list[str]:
        """Site names in first-registration order."""
        return list(self._site_members)

    def site_members(self, site: str) -> list[str]:
        """Machine names registered under ``site``, in order."""
        return list(self._site_members.get(site, ()))

    # -- tables ------------------------------------------------------------

    def add_table(self, metadata: TableMetadata) -> None:
        if metadata.table_name in self._tables:
            raise PlanningError(f"duplicate table: {metadata.table_name}")
        self._tables[metadata.table_name] = metadata

    def table(self, table_name: str) -> TableMetadata:
        try:
            return self._tables[table_name]
        except KeyError:
            raise PlanningError(f"unknown table: {table_name}") from None

    def has_table(self, table_name: str) -> bool:
        return table_name in self._tables

    # -- operations ----------------------------------------------------------

    def add_operation(self, metadata: OperationMetadata) -> None:
        if metadata.operation_name in self._operations:
            raise PlanningError(
                f"duplicate operation: {metadata.operation_name}")
        self._operations[metadata.operation_name] = metadata

    def operation(self, operation_name: str) -> OperationMetadata:
        try:
            return self._operations[operation_name]
        except KeyError:
            raise PlanningError(
                f"unknown operation: {operation_name}") from None

    def has_operation(self, operation_name: str) -> bool:
        return operation_name in self._operations
