"""Resource registry and metadata catalog.

OGSA-DQP's GDQS "contacts resource registries that contain the
addresses of the computational and data resources available and
updates the metadata catalog of the system" (§2).  This module is that
registry: it records which machines exist, which may evaluate query
fragments, where each table's Grid Data Service lives, and which Web
Service operations are available on which machines.
"""

from __future__ import annotations

import dataclasses

from repro.errors import PlanningError
from repro.grid.machine import Machine


@dataclasses.dataclass
class TableMetadata:
    """Catalog entry for a table exposed as a Grid Data Service."""

    table_name: str
    gds_endpoint: str
    machine_name: str
    cardinality: int
    tuple_bytes: int


@dataclasses.dataclass
class OperationMetadata:
    """Catalog entry for a Web Service operation (typed foreign function)."""

    operation_name: str
    machine_names: list[str]
    base_work_ms: float


class ResourceRegistry:
    """Names and metadata for every resource on the simulated Grid."""

    def __init__(self) -> None:
        self._machines: dict[str, Machine] = {}
        self._compute_machines: list[str] = []
        self._spare_machines: list[str] = []
        self._tables: dict[str, TableMetadata] = {}
        self._operations: dict[str, OperationMetadata] = {}

    # -- machines --------------------------------------------------------

    def add_machine(self, machine: Machine, compute: bool = True,
                    spare: bool = False) -> None:
        """Register ``machine``.

        ``compute`` marks it schedulable by the optimizer; ``spare``
        marks it a standby used only by failure recovery.
        """
        if machine.name in self._machines:
            raise PlanningError(f"duplicate machine: {machine.name}")
        self._machines[machine.name] = machine
        if compute:
            self._compute_machines.append(machine.name)
        if spare:
            self._spare_machines.append(machine.name)

    def machine(self, name: str) -> Machine:
        try:
            return self._machines[name]
        except KeyError:
            raise PlanningError(f"unknown machine: {name}") from None

    def machines(self) -> list[Machine]:
        return list(self._machines.values())

    def compute_machines(self) -> list[str]:
        """Names of machines the optimizer may schedule fragments on."""
        return list(self._compute_machines)

    def spare_machines(self) -> list[str]:
        """Standby machines reserved for failure recovery."""
        return list(self._spare_machines)

    # -- tables ------------------------------------------------------------

    def add_table(self, metadata: TableMetadata) -> None:
        if metadata.table_name in self._tables:
            raise PlanningError(f"duplicate table: {metadata.table_name}")
        self._tables[metadata.table_name] = metadata

    def table(self, table_name: str) -> TableMetadata:
        try:
            return self._tables[table_name]
        except KeyError:
            raise PlanningError(f"unknown table: {table_name}") from None

    def has_table(self, table_name: str) -> bool:
        return table_name in self._tables

    # -- operations ----------------------------------------------------------

    def add_operation(self, metadata: OperationMetadata) -> None:
        if metadata.operation_name in self._operations:
            raise PlanningError(
                f"duplicate operation: {metadata.operation_name}")
        self._operations[metadata.operation_name] = metadata

    def operation(self, operation_name: str) -> OperationMetadata:
        try:
            return self._operations[operation_name]
        except KeyError:
            raise PlanningError(
                f"unknown operation: {operation_name}") from None

    def has_operation(self, operation_name: str) -> bool:
        return operation_name in self._operations
