"""Simulated Grid fabric: machines, perturbations, registry, context."""

from repro.grid.container import GridContext
from repro.grid.machine import Machine
from repro.grid.perturbation import (
    CostFactor,
    JitterFactor,
    Perturbation,
    SleepInjection,
    StochasticCostFactor,
    WorkEffect,
)
from repro.grid.registry import (
    OperationMetadata,
    ResourceRegistry,
    TableMetadata,
)

__all__ = [
    "CostFactor",
    "GridContext",
    "JitterFactor",
    "Machine",
    "OperationMetadata",
    "Perturbation",
    "ResourceRegistry",
    "SleepInjection",
    "StochasticCostFactor",
    "TableMetadata",
    "WorkEffect",
]
