"""Event tracing for analysis of adaptive behaviour.

The paper's evaluation narrates *when* things happened — how many raw
events the engine produced, how often the detector notified the
diagnoser, when rebalancing took effect.  The :class:`Tracer` records
exactly that timeline: every grid context owns one, and the adaptivity
components append structured events as they act.  Experiments and
examples render it with :func:`format_timeline`.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

#: Well-known event categories.
CATEGORY_QUERY = "query"
CATEGORY_MONITORING = "monitoring"
CATEGORY_ASSESSMENT = "assessment"
CATEGORY_RESPONSE = "response"
CATEGORY_FAILURE = "failure"


@dataclasses.dataclass(frozen=True)
class TraceEvent:
    """One recorded occurrence."""

    timestamp: float
    category: str
    source: str
    description: str
    data: tuple = ()

    def data_dict(self) -> dict:
        return dict(self.data)


class Tracer:
    """Append-only event log in simulation-time order."""

    def __init__(self, env) -> None:
        self._env = env
        self.events: list[TraceEvent] = []
        self.enabled = True

    def record(self, category: str, source: str, description: str,
               **data: typing.Any) -> None:
        """Record one event at the current simulation time."""
        if not self.enabled:
            return
        self.events.append(TraceEvent(
            timestamp=self._env.now,
            category=category,
            source=source,
            description=description,
            data=tuple(sorted(data.items()))))

    def clear(self) -> None:
        self.events.clear()

    def in_category(self, category: str) -> list[TraceEvent]:
        return [event for event in self.events
                if event.category == category]

    def between(self, start: float, end: float) -> list[TraceEvent]:
        """Events with ``start <= timestamp < end``."""
        return [event for event in self.events
                if start <= event.timestamp < end]

    def counts_by_category(self) -> dict[str, int]:
        counter: collections.Counter = collections.Counter(
            event.category for event in self.events)
        return dict(counter)


def format_timeline(events: typing.Sequence[TraceEvent],
                    categories: typing.AbstractSet[str] | None = None
                    ) -> str:
    """Render events as an aligned, second-resolution timeline."""
    lines = []
    for event in events:
        if categories is not None and event.category not in categories:
            continue
        extras = " ".join(f"{key}={value}" for key, value in event.data)
        line = (f"{event.timestamp / 1000.0:9.3f}s  "
                f"[{event.category:<10}] {event.source}: "
                f"{event.description}")
        if extras:
            line = f"{line}  ({extras})"
        lines.append(line)
    return "\n".join(lines)
