"""Event tracing for analysis of adaptive behaviour.

The paper's evaluation narrates *when* things happened — how many raw
events the engine produced, how often the detector notified the
diagnoser, when rebalancing took effect.  The :class:`Tracer` records
exactly that timeline: every grid context owns one, and the adaptivity
components append structured events as they act.  Experiments and
examples render it with :func:`format_timeline`.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

#: Well-known event categories.
CATEGORY_QUERY = "query"
CATEGORY_MONITORING = "monitoring"
CATEGORY_ASSESSMENT = "assessment"
CATEGORY_RESPONSE = "response"
CATEGORY_FAILURE = "failure"
CATEGORY_SCHEDULER = "scheduler"


@dataclasses.dataclass(frozen=True, slots=True)
class TraceEvent:
    """One recorded occurrence."""

    timestamp: float
    category: str
    source: str
    description: str
    data: tuple = ()

    def data_dict(self) -> dict:
        return dict(self.data)


class Tracer:
    """Append-only event log in simulation-time order.

    By default every event is retained (experiments replay the full
    timeline).  Long-running or memory-sensitive runs may pass
    ``max_events`` to keep only the most recent events in a ring
    buffer; :attr:`recorded_by_category` still counts *every* event
    ever recorded, so aggregate statistics survive eviction.
    """

    def __init__(self, env, max_events: int | None = None) -> None:
        if max_events is not None and max_events < 1:
            raise ValueError(f"max_events must be >= 1: {max_events}")
        self._env = env
        self.max_events = max_events
        #: Retained events: a plain list under full retention, a
        #: bounded deque (ring buffer) when ``max_events`` is set.
        #: Both support append/iteration/indexing identically.
        self.events: typing.MutableSequence[TraceEvent] = (
            [] if max_events is None
            else collections.deque(maxlen=max_events))
        #: category -> events recorded since construction/clear(),
        #: including any evicted from the ring buffer.
        self.recorded_by_category: collections.Counter = (
            collections.Counter())
        self.enabled = True

    @property
    def recorded_total(self) -> int:
        """Events recorded since construction/clear, evicted or not."""
        return sum(self.recorded_by_category.values())

    @property
    def dropped_total(self) -> int:
        """Events evicted from the ring buffer so far."""
        return self.recorded_total - len(self.events)

    def record(self, category: str, source: str, description: str,
               **data: typing.Any) -> None:
        """Record one event at the current simulation time."""
        if not self.enabled:
            return
        self.recorded_by_category[category] += 1
        self.events.append(TraceEvent(
            timestamp=self._env.now,
            category=category,
            source=source,
            description=description,
            data=tuple(sorted(data.items()))))

    def clear(self) -> None:
        self.events.clear()
        self.recorded_by_category.clear()

    def in_category(self, category: str) -> list[TraceEvent]:
        return [event for event in self.events
                if event.category == category]

    def between(self, start: float, end: float) -> list[TraceEvent]:
        """Events with ``start <= timestamp < end``."""
        return [event for event in self.events
                if start <= event.timestamp < end]

    def counts_by_category(self) -> dict[str, int]:
        """Counts over currently *retained* events (ring-buffer view)."""
        counter: collections.Counter = collections.Counter(
            event.category for event in self.events)
        return dict(counter)


def format_timeline(events: typing.Sequence[TraceEvent],
                    categories: typing.AbstractSet[str] | None = None
                    ) -> str:
    """Render events as an aligned, second-resolution timeline."""
    lines = []
    for event in events:
        if categories is not None and event.category not in categories:
            continue
        extras = " ".join(f"{key}={value}" for key, value in event.data)
        line = (f"{event.timestamp / 1000.0:9.3f}s  "
                f"[{event.category:<10}] {event.source}: "
                f"{event.description}")
        if extras:
            line = f"{line}  ({extras})"
        lines.append(line)
    return "\n".join(lines)
