"""Simulated-time metrics: counters, gauges, histograms, time series.

The :class:`MetricsRegistry` lives on the :class:`GridContext` next to
the :class:`~repro.telemetry.trace.Tracer` and gives every layer of the
stack — machines, exchanges, the adaptivity pipeline, the scheduler —
named instruments keyed by label sets, in the always-on measurement
style the grid-tuning literature treats as the prerequisite for
adaptive control.

Recording is **zero-cost to the simulation**: an instrument update is a
plain attribute mutation that may read the simulation clock but never
schedules a DES event, charges CPU work, or draws randomness.  The
event timeline is therefore bit-identical with metrics enabled or
disabled (property-tested in ``tests/properties``).  A disabled
registry hands out shared no-op instruments so call sites stay
unconditional.

Exporters: :meth:`MetricsRegistry.snapshot` (one dict per instrument),
:meth:`MetricsRegistry.write_jsonl` (one JSON object per line) and
:meth:`MetricsRegistry.to_prometheus` (text exposition format).  The
per-query :class:`AdaptivityReport` summarises one query's adaptivity
health — adaptations applied, detection latency, realized tuple
balance — and rides along in both exports.
"""

from __future__ import annotations

import collections
import dataclasses
import json
import math
import typing

from repro.sim.environment import Environment

#: Quantiles reported by histogram summaries.
QUANTILES = (0.50, 0.95, 0.99)


def percentile(values: typing.Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (must be non-empty)."""
    if not values:
        raise ValueError("percentile of empty sequence")
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[rank - 1]


def _label_key(labels: typing.Mapping[str, str]) -> tuple:
    return tuple(sorted(labels.items()))


class Instrument:
    """Base: a named, labelled measurement owned by one registry."""

    kind = "instrument"

    def __init__(self, name: str, labels: typing.Mapping[str, str]) -> None:
        self.name = name
        self.labels = dict(labels)

    def payload(self) -> dict:
        """Kind-specific snapshot fields."""
        raise NotImplementedError

    def snapshot(self) -> dict:
        record = {"type": self.kind, "name": self.name,
                  "labels": dict(self.labels)}
        record.update(self.payload())
        return record


class Counter(Instrument):
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, labels: typing.Mapping[str, str]) -> None:
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def payload(self) -> dict:
        return {"value": self.value}


class Gauge(Instrument):
    """A point-in-time value: set directly, or read from a callback.

    Callback gauges (``fn``) are evaluated only at snapshot time, so an
    expensive observable (a CPU's utilisation, a machine's contention
    factor) costs nothing while the simulation runs.
    """

    kind = "gauge"

    def __init__(self, name: str, labels: typing.Mapping[str, str],
                 fn: typing.Callable[[], float] | None = None) -> None:
        super().__init__(name, labels)
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        self._value = value

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def payload(self) -> dict:
        return {"value": self.value}


class Histogram(Instrument):
    """A distribution of observed values with p50/p95/p99 summaries."""

    kind = "histogram"

    def __init__(self, name: str, labels: typing.Mapping[str, str]) -> None:
        super().__init__(name, labels)
        self._values: list[float] = []
        # Dirty-flag cache of the sorted samples: quantile queries and
        # the p50/p95/p99 export sorted the full list per call — three
        # sorts per histogram per export.  The cache sorts once after
        # each run of observes and every quantile reads it, which is
        # value-identical (same nearest-rank over the same samples).
        self._sorted: list[float] | None = None
        self.total = 0.0

    def observe(self, value: float) -> None:
        self._values.append(value)
        self._sorted = None
        self.total += value

    @property
    def count(self) -> int:
        return len(self._values)

    def _ordered(self) -> list[float]:
        if self._sorted is None:
            self._sorted = sorted(self._values)
        return self._sorted

    def quantile(self, fraction: float) -> float:
        if not self._values:
            raise ValueError("percentile of empty sequence")
        ordered = self._ordered()
        rank = max(1, math.ceil(fraction * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> dict:
        """count/sum/min/max/mean plus the standard quantiles."""
        if not self._values:
            return {"count": 0, "sum": 0.0}
        ordered = self._ordered()
        stats = {
            "count": len(ordered),
            "sum": self.total,
            "min": ordered[0],
            "max": ordered[-1],
            "mean": self.total / len(ordered),
        }
        for fraction in QUANTILES:
            rank = max(1, math.ceil(fraction * len(ordered)))
            stats[f"p{int(fraction * 100)}"] = ordered[rank - 1]
        return stats

    def payload(self) -> dict:
        return self.summary()


class SeriesSampler(Instrument):
    """A bounded time series of ``(sim_time, value)`` samples.

    Keeps the most recent ``maxlen`` samples (the tail of a long run is
    what occupancy/queue-depth plots need) and counts every sample ever
    recorded so eviction is visible.
    """

    kind = "series"

    def __init__(self, name: str, labels: typing.Mapping[str, str],
                 env: Environment, maxlen: int) -> None:
        super().__init__(name, labels)
        self._env = env
        self._samples: collections.deque = collections.deque(maxlen=maxlen)
        self.recorded = 0

    def sample(self, value: float) -> None:
        self._samples.append((self._env.now, value))
        self.recorded += 1

    @property
    def samples(self) -> list[tuple[float, float]]:
        return list(self._samples)

    def payload(self) -> dict:
        return {"recorded": self.recorded,
                "samples": [[t, v] for t, v in self._samples]}


class _NullInstrument:
    """Shared no-op stand-in handed out by a disabled registry."""

    value = 0.0
    count = 0
    total = 0.0
    recorded = 0
    samples: list = []

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def sample(self, value: float) -> None:
        pass

    def summary(self) -> dict:
        return {"count": 0, "sum": 0.0}


_NULL = _NullInstrument()


@dataclasses.dataclass(frozen=True)
class AdaptivityReport:
    """One query's adaptivity health, as the paper's §3.2 reports it."""

    query_id: str
    response_time_ms: float
    adaptations_applied: int
    proposals_sent: int
    cost_notifications: int
    raw_monitoring_events: int
    #: max/min tuples per consumer (1.0 = perfectly balanced).
    tuple_balance_ratio: float
    tuples_per_consumer: tuple
    #: :meth:`Histogram.summary` of detector->proposal latency (ms);
    #: ``{"count": 0, ...}`` when no proposal was ever raised.
    detection_latency_ms: dict = dataclasses.field(default_factory=dict)
    #: Name of the adaptation policy that ran the control loop
    #: ("static" when adaptivity was disabled).
    policy: str = "static"
    #: Workload mass moved by one adaptation and reversed by a later
    #: one (sum of sign-flipped weight-delta overlaps); controller
    #: churn, not fault handling.
    oscillation: float = 0.0

    def to_dict(self) -> dict:
        record = dataclasses.asdict(self)
        record["tuples_per_consumer"] = list(self.tuples_per_consumer)
        record["type"] = "adaptivity_report"
        return record


class MetricsRegistry:
    """Get-or-create home of every instrument in one simulated world."""

    def __init__(self, env: Environment, enabled: bool = True,
                 series_maxlen: int = 2048) -> None:
        self.env = env
        self.enabled = enabled
        self.series_maxlen = series_maxlen
        self._instruments: dict[tuple, Instrument] = {}
        self.reports: list[AdaptivityReport] = []

    # -- instrument factories (get-or-create by (kind, name, labels)) ----

    def _get(self, kind: str, name: str, labels: dict,
             factory: typing.Callable[[], Instrument]):
        if not self.enabled:
            return _NULL
        key = (kind, name, _label_key(labels))
        instrument = self._instruments.get(key)
        if instrument is None:
            instrument = factory()
            self._instruments[key] = instrument
        return instrument

    # ``name``/``kind`` are positional-only so labels may reuse those
    # words (the detector labels its raw-event counter kind="m1"/"m2").

    def counter(self, name: str, /, **labels: str):
        return self._get(Counter.kind, name, labels,
                         lambda: Counter(name, labels))

    def gauge(self, name: str, /,
              fn: typing.Callable[[], float] | None = None, **labels: str):
        return self._get(Gauge.kind, name, labels,
                         lambda: Gauge(name, labels, fn=fn))

    def histogram(self, name: str, /, **labels: str):
        return self._get(Histogram.kind, name, labels,
                         lambda: Histogram(name, labels))

    def series(self, name: str, /, **labels: str):
        return self._get(SeriesSampler.kind, name, labels,
                         lambda: SeriesSampler(name, labels, self.env,
                                               self.series_maxlen))

    def find(self, kind: str, name: str, /, **labels: str):
        """An already-registered instrument, or None."""
        return self._instruments.get((kind, name, _label_key(labels)))

    def instruments(self) -> list[Instrument]:
        return list(self._instruments.values())

    # -- per-query reports ----------------------------------------------

    def add_report(self, report: AdaptivityReport) -> None:
        if self.enabled:
            self.reports.append(report)

    # -- exporters -------------------------------------------------------

    def snapshot(self) -> list[dict]:
        """One plain dict per instrument, then one per query report."""
        records = [instrument.snapshot()
                   for instrument in self._instruments.values()]
        records.extend(report.to_dict() for report in self.reports)
        return records

    def write_jsonl(self, path) -> int:
        """Write the snapshot as JSON Lines; returns the record count."""
        records = self.snapshot()
        with open(path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
        return len(records)

    def to_prometheus(self, prefix: str = "repro_") -> str:
        """Prometheus text exposition of counters/gauges/histograms.

        Series samplers export their latest value as a gauge (the
        exposition format has no native time-series type; the JSONL
        export carries the full series).
        """
        lines: list[str] = []
        seen_types: set[str] = set()

        def label_text(labels: typing.Mapping[str, str],
                       extra: typing.Mapping[str, str] | None = None
                       ) -> str:
            merged = dict(labels)
            if extra:
                merged.update(extra)
            if not merged:
                return ""
            body = ",".join(f'{key}="{value}"'
                            for key, value in sorted(merged.items()))
            return "{" + body + "}"

        def declare(name: str, prom_type: str) -> None:
            if name not in seen_types:
                seen_types.add(name)
                lines.append(f"# TYPE {name} {prom_type}")

        for instrument in self._instruments.values():
            name = prefix + instrument.name
            if isinstance(instrument, Counter):
                declare(name, "counter")
                lines.append(f"{name}{label_text(instrument.labels)} "
                             f"{instrument.value}")
            elif isinstance(instrument, Gauge):
                declare(name, "gauge")
                lines.append(f"{name}{label_text(instrument.labels)} "
                             f"{instrument.value}")
            elif isinstance(instrument, Histogram):
                declare(name, "summary")
                stats = instrument.summary()
                for fraction in QUANTILES:
                    key = f"p{int(fraction * 100)}"
                    if key in stats:
                        quantile_labels = label_text(
                            instrument.labels, {"quantile": str(fraction)})
                        lines.append(
                            f"{name}{quantile_labels} {stats[key]}")
                lines.append(f"{name}_count{label_text(instrument.labels)} "
                             f"{stats['count']}")
                lines.append(f"{name}_sum{label_text(instrument.labels)} "
                             f"{stats['sum']}")
            elif isinstance(instrument, SeriesSampler):
                declare(name, "gauge")
                samples = instrument.samples
                latest = samples[-1][1] if samples else 0.0
                lines.append(f"{name}{label_text(instrument.labels)} "
                             f"{latest}")
        return "\n".join(lines) + ("\n" if lines else "")
