"""Observability: event tracing of the adaptivity pipeline."""

from repro.telemetry.trace import (
    CATEGORY_ASSESSMENT,
    CATEGORY_FAILURE,
    CATEGORY_MONITORING,
    CATEGORY_QUERY,
    CATEGORY_RESPONSE,
    CATEGORY_SCHEDULER,
    TraceEvent,
    Tracer,
    format_timeline,
)

__all__ = [
    "CATEGORY_ASSESSMENT",
    "CATEGORY_FAILURE",
    "CATEGORY_MONITORING",
    "CATEGORY_QUERY",
    "CATEGORY_RESPONSE",
    "CATEGORY_SCHEDULER",
    "TraceEvent",
    "Tracer",
    "format_timeline",
]
