"""Observability: event tracing and metrics of the adaptivity pipeline."""

from repro.telemetry.metrics import (
    AdaptivityReport,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SeriesSampler,
    percentile,
)
from repro.telemetry.trace import (
    CATEGORY_ASSESSMENT,
    CATEGORY_FAILURE,
    CATEGORY_MONITORING,
    CATEGORY_QUERY,
    CATEGORY_RESPONSE,
    CATEGORY_SCHEDULER,
    TraceEvent,
    Tracer,
    format_timeline,
)

__all__ = [
    "AdaptivityReport",
    "CATEGORY_ASSESSMENT",
    "CATEGORY_FAILURE",
    "CATEGORY_MONITORING",
    "CATEGORY_QUERY",
    "CATEGORY_RESPONSE",
    "CATEGORY_SCHEDULER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SeriesSampler",
    "TraceEvent",
    "Tracer",
    "format_timeline",
    "percentile",
]
