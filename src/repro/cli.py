"""Command-line interface: run ad-hoc queries on the demo grid.

Installed as ``repro-query``::

    repro-query "select EntropyAnalyser(p.sequence) \
                 from protein_sequences p" --perturb-ws 10 --response R1

Prints the result summary, the adaptation statistics, and optionally
the traced adaptivity timeline.

A multi-query mode drives the scheduler with an open-loop Poisson
workload over the Q1/Q2 catalog instead of one query::

    repro-query --workload 0.6 --max-concurrent 4 --seed 7

Both modes are bit-for-bit reproducible from ``--seed``: the grid's
data, perturbation noise and the workload driver's arrival sequence
all derive from it.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import (
    AdaptivityConfig,
    FaultToleranceConfig,
    SchedulerConfig,
)
from repro.sched import WorkloadDriver, WorkloadSpec
from repro.telemetry import format_timeline
from repro.workloads import (
    DemoGrid,
    DemoGridSpec,
    Q1,
    Q2,
    perturb_join_sleep,
    perturb_ws_cost,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-query",
        description=("Run a query on the simulated Grid deployment of "
                     "'Adapting to Changing Resource Performance in Grid "
                     "Query Processing' (VLDB DMG 2005)."))
    parser.add_argument("query", nargs="?", default=None,
                        help="SQL text (demo query class); omit with "
                             "--workload")
    parser.add_argument("--workload", type=float, metavar="QPS",
                        help="multi-query mode: drive Poisson arrivals "
                             "at QPS queries/second over the Q1/Q2 "
                             "catalog instead of one query")
    parser.add_argument("--workload-duration", type=float, default=30000.0,
                        metavar="MS",
                        help="arrival window for --workload "
                             "(default 30000 ms)")
    parser.add_argument("--max-concurrent", type=int, default=4,
                        help="scheduler: sessions running at once "
                             "(default 4)")
    parser.add_argument("--max-queued", type=int, default=16,
                        help="scheduler: admission queue bound "
                             "(default 16)")
    parser.add_argument("--static", action="store_true",
                        help="disable adaptivity (the static system)")
    parser.add_argument("--response", choices=["R1", "R2"], default="R2",
                        help="response policy (default R2, prospective)")
    parser.add_argument("--assessment", choices=["A1", "A2"], default="A1",
                        help="assessment policy (default A1)")
    parser.add_argument("--machines", type=int, default=2,
                        help="compute machines (default 2)")
    parser.add_argument("--degree", type=int, default=None,
                        help="cap intra-operator parallelism")
    parser.add_argument("--sequences", type=int, default=3000,
                        help="protein_sequences cardinality")
    parser.add_argument("--interactions", type=int, default=4700,
                        help="protein_interactions cardinality")
    parser.add_argument("--seed", type=int, default=0,
                        help="simulation seed")
    parser.add_argument("--perturb-ws", type=float, metavar="FACTOR",
                        help="make the WS call FACTOR times costlier on "
                             "the first compute machine")
    parser.add_argument("--perturb-sleep", type=float, metavar="MS",
                        help="sleep MS before each join tuple on the "
                             "first compute machine")
    parser.add_argument("--fail-machine", metavar="NAME",
                        help="crash NAME mid-run (enables fault "
                             "tolerance and one spare)")
    parser.add_argument("--fail-at", type=float, default=5000.0,
                        metavar="MS", help="failure time (default 5000)")
    parser.add_argument("--timeline", action="store_true",
                        help="print the traced adaptivity timeline")
    parser.add_argument("--rows", type=int, default=5, metavar="N",
                        help="result rows to print (default 5)")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the run's metrics snapshot (machine "
                             "utilisation, adaptivity counters, per-query "
                             "reports) as JSON Lines to PATH")
    return parser


def write_metrics(args: argparse.Namespace, grid: DemoGrid) -> None:
    if args.metrics_out:
        count = grid.context.metrics.write_jsonl(args.metrics_out)
        print(f"metrics: {count} records written to {args.metrics_out}")


def run_workload(args: argparse.Namespace, grid: DemoGrid,
                 adaptivity: AdaptivityConfig) -> int:
    """Multi-query mode: open-loop Poisson arrivals into the scheduler."""
    scheduler = grid.scheduler(SchedulerConfig(
        max_concurrent=args.max_concurrent, max_queued=args.max_queued))
    driver = WorkloadDriver(scheduler, WorkloadSpec(
        arrival_rate_qps=args.workload,
        duration_ms=args.workload_duration,
        catalog=(Q1, Q2),
        adaptivity=adaptivity))
    report = driver.run()
    print(f"offered: {report.offered} queries "
          f"({args.workload:g}/s over "
          f"{args.workload_duration / 1000.0:g} s, seed {args.seed})")
    print(f"admitted: {report.admitted}  rejected: {report.rejected}  "
          f"completed: {report.completed}")
    print(f"throughput: {report.throughput_qps:.2f} queries/s "
          f"(makespan {report.makespan_ms / 1000.0:.2f} s simulated)")
    print(f"queue wait: p50 {report.queue_wait_p50_ms / 1000.0:.2f} s, "
          f"p95 {report.queue_wait_p95_ms / 1000.0:.2f} s")
    print(f"response:   p50 {report.response_p50_ms / 1000.0:.2f} s, "
          f"p95 {report.response_p95_ms / 1000.0:.2f} s")
    utilisation = ", ".join(
        f"{name} {value:.0%}"
        for name, value in sorted(report.machine_utilisation.items()))
    print(f"utilisation: {utilisation}")
    write_metrics(args, grid)
    if args.timeline:
        print()
        print(format_timeline(grid.context.tracer.events,
                              categories={"scheduler"}))
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.query is None and args.workload is None:
        build_parser().error("a query is required unless --workload is "
                             "given")
    spec = DemoGridSpec(
        compute_machines=args.machines,
        sequences_cardinality=args.sequences,
        interactions_cardinality=args.interactions,
        seed=args.seed,
        spare_machines=1 if args.fail_machine else 0)
    fault_tolerance = None
    if args.fail_machine:
        fault_tolerance = FaultToleranceConfig(enabled=True)
    grid = DemoGrid(spec, fault_tolerance=fault_tolerance)
    if args.perturb_ws:
        perturb_ws_cost(grid, args.perturb_ws)
    if args.perturb_sleep:
        perturb_join_sleep(grid, args.perturb_sleep)
    if args.fail_machine:
        grid.fail_machine_at(args.fail_machine, at_ms=args.fail_at)

    if args.static:
        adaptivity = AdaptivityConfig.disabled()
    else:
        adaptivity = AdaptivityConfig(response=args.response,
                                      assessment=args.assessment)
    if args.workload is not None:
        return run_workload(args, grid, adaptivity)
    result = grid.run(args.query, adaptivity, degree=args.degree)

    stats = result.stats
    print(f"response time: {result.response_time_ms / 1000.0:.2f} s "
          "(simulated)")
    print(f"results: {stats.result_count} rows "
          f"({', '.join(result.schema.names())})")
    for row in result.rows[:args.rows]:
        print(" ", row.values)
    if stats.result_count > args.rows:
        print(f"  ... {stats.result_count - args.rows} more")
    print(f"adaptations: {stats.adaptations_accepted} accepted / "
          f"{stats.proposals_sent} proposed; tuples per machine: "
          f"{stats.tuples_per_consumer}")
    if stats.machines_recovered:
        print(f"failures recovered: {stats.machines_recovered} "
              f"({stats.tuples_replayed_for_recovery} tuples replayed)")
    write_metrics(args, grid)
    if args.timeline:
        print()
        print(format_timeline(
            grid.context.tracer.events,
            categories={"monitoring", "assessment", "response",
                        "failure"}))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
