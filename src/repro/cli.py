"""Command-line interface: run ad-hoc queries on the demo grid.

Installed as ``repro-query``::

    repro-query "select EntropyAnalyser(p.sequence) \
                 from protein_sequences p" --perturb-ws 10 --response R1

Prints the result summary, the adaptation statistics, and optionally
the traced adaptivity timeline.

A multi-query mode drives the scheduler with an open-loop Poisson
workload over the Q1/Q2 catalog instead of one query::

    repro-query --workload 0.6 --max-concurrent 4 --seed 7

Both modes are bit-for-bit reproducible from ``--seed``: the grid's
data, perturbation noise and the workload driver's arrival sequence
all derive from it.
"""

from __future__ import annotations

import argparse
import sys

from repro.chaos import ChaosConfig, MachineCrash, MachineFreeze, RetryPolicy
from repro.config import (
    AdaptivityConfig,
    FaultToleranceConfig,
    SchedulerConfig,
)
from repro.errors import ConfigurationError, QueryFailedError
from repro.policy import default_registry
from repro.sched import WorkloadDriver, WorkloadSpec
from repro.telemetry import format_timeline
from repro.workloads import (
    COORDINATOR,
    DATA_HOST,
    DemoGrid,
    DemoGridSpec,
    Q1,
    Q2,
    compute_machine_name,
    perturb_join_sleep,
    perturb_ws_cost,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-query",
        description=("Run a query on the simulated Grid deployment of "
                     "'Adapting to Changing Resource Performance in Grid "
                     "Query Processing' (VLDB DMG 2005)."))
    parser.add_argument("query", nargs="?", default=None,
                        help="SQL text (demo query class); omit with "
                             "--workload")
    parser.add_argument("--workload", type=float, metavar="QPS",
                        help="multi-query mode: drive Poisson arrivals "
                             "at QPS queries/second over the Q1/Q2 "
                             "catalog instead of one query")
    parser.add_argument("--workload-duration", type=float, default=30000.0,
                        metavar="MS",
                        help="arrival window for --workload "
                             "(default 30000 ms)")
    parser.add_argument("--max-concurrent", type=int, default=4,
                        help="scheduler: sessions running at once "
                             "(default 4)")
    parser.add_argument("--max-queued", type=int, default=16,
                        help="scheduler: admission queue bound "
                             "(default 16)")
    parser.add_argument("--static", action="store_true",
                        help="disable adaptivity (the static system)")
    parser.add_argument("--policy", choices=default_registry().names(),
                        default=None, metavar="NAME",
                        help="adaptation policy by name (overrides "
                             "--assessment/--response; one of: "
                             + ", ".join(default_registry().names()) + ")")
    parser.add_argument("--response", choices=["R1", "R2"], default="R2",
                        help="response policy (default R2, prospective); "
                             "alias for --policy paper-<A><R>")
    parser.add_argument("--assessment", choices=["A1", "A2"], default="A1",
                        help="assessment policy (default A1); alias for "
                             "--policy paper-<A><R>")
    parser.add_argument("--machines", type=int, default=2,
                        help="compute machines (default 2)")
    parser.add_argument("--degree", type=int, default=None,
                        help="cap intra-operator parallelism")
    parser.add_argument("--sequences", type=int, default=3000,
                        help="protein_sequences cardinality")
    parser.add_argument("--interactions", type=int, default=4700,
                        help="protein_interactions cardinality")
    parser.add_argument("--seed", type=int, default=0,
                        help="simulation seed")
    parser.add_argument("--perturb-ws", type=float, metavar="FACTOR",
                        help="make the WS call FACTOR times costlier on "
                             "the first compute machine")
    parser.add_argument("--perturb-sleep", type=float, metavar="MS",
                        help="sleep MS before each join tuple on the "
                             "first compute machine")
    parser.add_argument("--fail-machine", metavar="NAME",
                        help="crash NAME mid-run (enables fault "
                             "tolerance and one spare)")
    parser.add_argument("--fail-at", type=float, default=5000.0,
                        metavar="MS", help="failure time (default 5000)")
    parser.add_argument("--chaos-drop", type=float, default=0.0,
                        metavar="P", help="drop each remote data/"
                        "notify/request/response message with "
                        "probability P (seed-reproducible)")
    parser.add_argument("--chaos-duplicate", type=float, default=0.0,
                        metavar="P", help="duplicate each remote "
                        "message with probability P")
    parser.add_argument("--chaos-delay", type=float, default=0.0,
                        metavar="P", help="add extra link occupancy to "
                        "each remote message with probability P")
    parser.add_argument("--chaos-delay-ms", type=float, default=25.0,
                        metavar="MS", help="extra delay per delayed "
                        "message (default 25 ms)")
    parser.add_argument("--chaos-ws-fail", type=float, default=0.0,
                        metavar="P", help="fail each Web Service "
                        "invocation transiently with probability P")
    parser.add_argument("--chaos-freeze", action="append", default=[],
                        metavar="MACHINE:AT_MS:DURATION_MS",
                        help="freeze MACHINE for DURATION_MS starting "
                        "at AT_MS (repeatable; enables fault tolerance "
                        "with a suspect timeout)")
    parser.add_argument("--chaos-crash", action="append", default=[],
                        metavar="MACHINE:AT_MS",
                        help="permanently crash MACHINE at AT_MS "
                        "(repeatable; enables fault tolerance and one "
                        "spare; queries that cannot recover settle "
                        "with a typed failure)")
    parser.add_argument("--query-timeout", type=float, default=None,
                        metavar="MS", help="workload mode: abort any "
                        "query still running after MS (typed "
                        "deadline-exceeded failure)")
    parser.add_argument("--retries", type=int, default=None, metavar="N",
                        help="workload mode: re-place a failed query "
                        "up to N total attempts, blacklisting the "
                        "machine that sank the previous attempt")
    parser.add_argument("--max-recoveries", type=int, default=None,
                        metavar="N", help="per-query machine-recovery "
                        "budget: the N+1th machine loss fails the "
                        "query with a typed outcome (default: "
                        "unlimited)")
    parser.add_argument("--suspect-timeout", type=float, default=None,
                        metavar="MS", help="quarantine a clone silent "
                        "for MS (between heartbeat interval and "
                        "failure timeout; default 1000 with "
                        "--chaos-freeze)")
    parser.add_argument("--timeline", action="store_true",
                        help="print the traced adaptivity timeline")
    parser.add_argument("--rows", type=int, default=5, metavar="N",
                        help="result rows to print (default 5)")
    parser.add_argument("--metrics-out", metavar="PATH", default=None,
                        help="write the run's metrics snapshot (machine "
                             "utilisation, adaptivity counters, per-query "
                             "reports) as JSON Lines to PATH")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top 20 "
                             "functions by cumulative time to stderr")
    parser.add_argument("--profile-out", metavar="PATH", default=None,
                        help="dump the raw pstats profile to PATH "
                             "(implies --profile; inspect with "
                             "'python -m pstats PATH')")
    return parser


def write_metrics(args: argparse.Namespace, grid: DemoGrid) -> None:
    if args.metrics_out:
        count = grid.context.metrics.write_jsonl(args.metrics_out)
        print(f"metrics: {count} records written to {args.metrics_out}")


def run_workload(args: argparse.Namespace, grid: DemoGrid,
                 adaptivity: AdaptivityConfig) -> int:
    """Multi-query mode: open-loop Poisson arrivals into the scheduler."""
    retry = None
    if args.retries is not None:
        retry = RetryPolicy(max_attempts=args.retries,
                            backoff_base_ms=100.0, backoff_cap_ms=2000.0)
    scheduler = grid.scheduler(SchedulerConfig(
        max_concurrent=args.max_concurrent, max_queued=args.max_queued,
        query_timeout_ms=args.query_timeout, retry=retry))
    driver = WorkloadDriver(scheduler, WorkloadSpec(
        arrival_rate_qps=args.workload,
        duration_ms=args.workload_duration,
        catalog=(Q1, Q2),
        adaptivity=adaptivity))
    report = driver.run()
    print(f"offered: {report.offered} queries "
          f"({args.workload:g}/s over "
          f"{args.workload_duration / 1000.0:g} s, seed {args.seed})")
    print(f"admitted: {report.admitted}  rejected: {report.rejected}  "
          f"completed: {report.completed}")
    print(f"outcomes: {report.completed} succeeded, {report.failed} "
          f"failed, {report.retried} retries, {report.timed_out} "
          f"timeouts (availability {report.availability:.0%})")
    print(f"throughput: {report.throughput_qps:.2f} queries/s "
          f"(makespan {report.makespan_ms / 1000.0:.2f} s simulated)")
    print(f"queue wait: p50 {report.queue_wait_p50_ms / 1000.0:.2f} s, "
          f"p95 {report.queue_wait_p95_ms / 1000.0:.2f} s")
    print(f"response:   p50 {report.response_p50_ms / 1000.0:.2f} s, "
          f"p95 {report.response_p95_ms / 1000.0:.2f} s")
    utilisation = ", ".join(
        f"{name} {value:.0%}"
        for name, value in sorted(report.machine_utilisation.items()))
    print(f"utilisation: {utilisation}")
    if grid.chaos is not None and grid.chaos.machines_crashed:
        print(f"crashes: {grid.chaos.machines_crashed} machines "
              "permanently lost")
    write_metrics(args, grid)
    if args.timeline:
        print()
        print(format_timeline(grid.context.tracer.events,
                              categories={"scheduler"}))
    return 0


def _validated_chaos(parser: argparse.ArgumentParser,
                     args: argparse.Namespace,
                     machine_names: list[str]) -> ChaosConfig | None:
    for flag, value in (("--chaos-drop", args.chaos_drop),
                        ("--chaos-duplicate", args.chaos_duplicate),
                        ("--chaos-delay", args.chaos_delay),
                        ("--chaos-ws-fail", args.chaos_ws_fail)):
        if not 0.0 <= value <= 1.0:
            parser.error(f"{flag} must be a probability in [0, 1], "
                         f"got {value:g}")
    if args.chaos_delay_ms < 0:
        parser.error(f"--chaos-delay-ms must be >= 0, "
                     f"got {args.chaos_delay_ms:g}")
    freezes = []
    for text in args.chaos_freeze:
        parts = text.split(":")
        if len(parts) != 3:
            parser.error(f"--chaos-freeze expects "
                         f"MACHINE:AT_MS:DURATION_MS, got {text!r}")
        machine = parts[0]
        if machine not in machine_names:
            parser.error(f"--chaos-freeze: unknown machine {machine!r} "
                         f"(expected one of: {', '.join(machine_names)})")
        try:
            freezes.append(MachineFreeze(machine, float(parts[1]),
                                         float(parts[2])))
        except (ValueError, ConfigurationError) as exc:
            parser.error(f"--chaos-freeze {text!r}: {exc}")
    crashes = []
    for text in args.chaos_crash:
        parts = text.split(":")
        if len(parts) != 2:
            parser.error(f"--chaos-crash expects MACHINE:AT_MS, "
                         f"got {text!r}")
        machine = parts[0]
        if machine not in machine_names:
            parser.error(f"--chaos-crash: unknown machine {machine!r} "
                         f"(expected one of: {', '.join(machine_names)})")
        try:
            crashes.append(MachineCrash(machine, float(parts[1])))
        except (ValueError, ConfigurationError) as exc:
            parser.error(f"--chaos-crash {text!r}: {exc}")
    if not (args.chaos_drop or args.chaos_duplicate or args.chaos_delay
            or args.chaos_ws_fail or freezes or crashes):
        return None
    return ChaosConfig.lossy(
        drop_probability=args.chaos_drop,
        duplicate_probability=args.chaos_duplicate,
        delay_probability=args.chaos_delay,
        delay_ms=args.chaos_delay_ms,
        ws_failure_probability=args.chaos_ws_fail,
        freezes=tuple(freezes),
        crashes=tuple(crashes))


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if not (args.profile or args.profile_out):
        return _run(parser, args)
    # Profiling wraps the whole run (grid construction included) so
    # the kernel's scheduling hot path is visible.  The report goes to
    # stderr: stdout stays identical with and without --profile.
    import cProfile
    import pstats
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        status = _run(parser, args)
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        stats.sort_stats("cumulative").print_stats(20)
        if args.profile_out:
            stats.dump_stats(args.profile_out)
            print(f"profile: pstats dump written to {args.profile_out} "
                  "(inspect with 'python -m pstats')", file=sys.stderr)
    return status


def _run(parser: argparse.ArgumentParser,
         args: argparse.Namespace) -> int:
    if args.query is None and args.workload is None:
        parser.error("a query is required unless --workload is given")
    machine_names = [COORDINATOR, DATA_HOST] + [
        compute_machine_name(i) for i in range(args.machines)]
    if args.fail_at < 0:
        parser.error(f"--fail-at must be >= 0, got {args.fail_at:g}")
    if args.fail_machine and args.fail_machine not in machine_names:
        parser.error(f"--fail-machine: unknown machine "
                     f"{args.fail_machine!r} (expected one of: "
                     f"{', '.join(machine_names)})")
    chaos = _validated_chaos(parser, args, machine_names)
    has_crashes = bool(chaos is not None and chaos.schedule.crashes)
    spec = DemoGridSpec(
        compute_machines=args.machines,
        sequences_cardinality=args.sequences,
        interactions_cardinality=args.interactions,
        seed=args.seed,
        spare_machines=1 if (args.fail_machine or has_crashes) else 0)
    if args.max_recoveries is not None and args.max_recoveries < 0:
        parser.error(f"--max-recoveries must be >= 0, got "
                     f"{args.max_recoveries}")
    fault_tolerance = None
    if args.fail_machine or has_crashes:
        fault_tolerance = FaultToleranceConfig(
            enabled=True, max_recoveries=args.max_recoveries)
    wants_suspect = (args.suspect_timeout is not None
                     or (chaos is not None and chaos.schedule.freezes))
    if wants_suspect:
        suspect_ms = (args.suspect_timeout
                      if args.suspect_timeout is not None else 1000.0)
        base = fault_tolerance or FaultToleranceConfig(enabled=True)
        try:
            fault_tolerance = base.replace(enabled=True,
                                           suspect_timeout_ms=suspect_ms)
        except ConfigurationError as exc:
            parser.error(f"--suspect-timeout: {exc}")
    grid = DemoGrid(spec, fault_tolerance=fault_tolerance, chaos=chaos)
    if args.perturb_ws:
        perturb_ws_cost(grid, args.perturb_ws)
    if args.perturb_sleep:
        perturb_join_sleep(grid, args.perturb_sleep)
    if args.fail_machine:
        grid.fail_machine_at(args.fail_machine, at_ms=args.fail_at)

    if args.static:
        adaptivity = AdaptivityConfig.disabled()
    else:
        adaptivity = AdaptivityConfig(policy=args.policy,
                                      response=args.response,
                                      assessment=args.assessment)
    if args.workload is not None:
        return run_workload(args, grid, adaptivity)
    try:
        result = grid.run(args.query, adaptivity, degree=args.degree)
    except QueryFailedError as exc:
        failure = exc.failure
        print(f"query failed: {failure.cause} "
              f"(machine {failure.failed_machine or 'n/a'}, "
              f"{failure.elapsed_ms / 1000.0:.2f} s elapsed, "
              f"{failure.recoveries} recoveries)")
        write_metrics(args, grid)
        return 1

    stats = result.stats
    print(f"response time: {result.response_time_ms / 1000.0:.2f} s "
          "(simulated)")
    print(f"results: {stats.result_count} rows "
          f"({', '.join(result.schema.names())})")
    for row in result.rows[:args.rows]:
        print(" ", row.values)
    if stats.result_count > args.rows:
        print(f"  ... {stats.result_count - args.rows} more")
    print(f"adaptations: {stats.adaptations_accepted} accepted / "
          f"{stats.proposals_sent} proposed ({stats.policy}); "
          f"tuples per machine: {stats.tuples_per_consumer}")
    if stats.machines_recovered:
        print(f"failures recovered: {stats.machines_recovered} "
              f"({stats.tuples_replayed_for_recovery} tuples replayed)")
    if grid.chaos is not None:
        counters = grid.chaos.counters()
        print(f"chaos: {counters['messages_dropped']} dropped, "
              f"{counters['messages_duplicated']} duplicated, "
              f"{counters['messages_delayed']} delayed, "
              f"{counters['ws_failures_injected']} ws failures; retries "
              f"send {counters['send_retries']} / call "
              f"{counters['call_retries']} / ws {counters['ws_retries']}")
        if counters["machines_crashed"]:
            print(f"crashes: {counters['machines_crashed']} machines "
                  "permanently lost")
        if stats.clones_quarantined or stats.clones_reintegrated:
            print(f"quarantine: {stats.clones_quarantined} clones "
                  f"quarantined, {stats.clones_reintegrated} "
                  "reintegrated")
    write_metrics(args, grid)
    if args.timeline:
        print()
        print(format_timeline(
            grid.context.tracer.events,
            categories={"monitoring", "assessment", "response",
                        "failure"}))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
