"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class at API boundaries while the
subsystems keep precise types for their own failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Misuse of the discrete-event simulation kernel."""


class NetworkError(ReproError):
    """Invalid network topology or undeliverable message."""


class ServiceError(ReproError):
    """Service-fabric failures (unknown endpoint, bad dispatch, ...)."""


class SchemaError(ReproError):
    """Schema mismatch or unknown column."""


class ParseError(ReproError):
    """The mini-SQL parser rejected a query string."""


class PlanningError(ReproError):
    """The optimizer could not build a valid distributed plan."""


class ExecutionError(ReproError):
    """A query operator failed during evaluation."""


class RecoveryError(ReproError):
    """Checkpoint/recovery-log protocol violation."""


class AdaptationError(ReproError):
    """Invalid adaptivity configuration or control-message state."""


class ConfigurationError(ReproError):
    """An invalid configuration value was supplied."""


class QueryFailedError(ReproError):
    """A query terminated with a typed failure outcome.

    Raised by synchronous facades (``QueryProcessor.run``) when the
    query's :class:`~repro.dqp.gdqs.QueryHandle` completes with a
    :class:`~repro.dqp.gdqs.QueryFailed` instead of a result.  The
    outcome rides on ``failure`` so callers can inspect the cause,
    the machine that failed, and the elapsed time.
    """

    def __init__(self, failure) -> None:
        super().__init__(
            f"query {failure.query_id} failed: {failure.cause} "
            f"(machine {failure.failed_machine or 'n/a'}, "
            f"{failure.elapsed_ms:.0f} ms elapsed, "
            f"{failure.recoveries} recoveries)")
        self.failure = failure


class SchedulerError(ReproError):
    """Misuse of the multi-query scheduler."""


class AdmissionRejected(SchedulerError):
    """The scheduler refused a query: concurrency and queue are full.

    Carries enough context for callers (workload drivers, services) to
    account the rejection: how many sessions were running and queued at
    the instant of refusal.
    """

    def __init__(self, query_text: str, running: int, queued: int,
                 max_concurrent: int, max_queued: int) -> None:
        super().__init__(
            f"admission rejected ({running}/{max_concurrent} running, "
            f"{queued}/{max_queued} queued): {query_text!r}")
        self.query_text = query_text
        self.running = running
        self.queued = queued
        self.max_concurrent = max_concurrent
        self.max_queued = max_queued
