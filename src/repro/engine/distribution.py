"""Tuple distribution policies for exchange producers.

Two policies implement the workload vector ``W`` of §3.1:

* :class:`WeightedRoundRobin` for stateless subplans (Q1's WS calls):
  a smooth weighted round-robin that interleaves consumers so the
  realised tuple ratio tracks the weights at any prefix.
* :class:`HashBucketPolicy` for stateful subplans (Q2's hash join):
  keys hash into a fixed set of buckets, and buckets are assigned to
  consumers proportionally to the weights (the Flux-style indirection
  the paper's "hash function applied to the join attribute" needs to
  be re-balanceable).  Reassignment moves as few buckets as possible,
  and operator state moves with its buckets.

Weight vectors are normalised, validated and comparable through the
module helpers, which the Diagnoser also uses.
"""

from __future__ import annotations

import abc
import typing
import zlib

from repro.data.batch import Batch
from repro.data.tuples import Row
from repro.errors import AdaptationError


def normalise_weights(weights: typing.Sequence[float]) -> list[float]:
    """Scale ``weights`` to sum to 1, validating the input."""
    if not weights:
        raise AdaptationError("empty weight vector")
    if any(w < 0 for w in weights):
        raise AdaptationError(f"negative weight in {list(weights)}")
    total = sum(weights)
    if total <= 0:
        raise AdaptationError(f"weight vector sums to zero: {list(weights)}")
    return [w / total for w in weights]


def inverse_cost_weights(costs: typing.Sequence[float]) -> list[float]:
    """The balanced vector W' with ``w_i`` inversely proportional to
    the per-tuple cost ``c(p_i)`` (§3.1, Assessment)."""
    if any(c <= 0 for c in costs):
        raise AdaptationError(f"costs must be positive: {list(costs)}")
    return normalise_weights([1.0 / c for c in costs])


def max_relative_change(old: typing.Sequence[float],
                        new: typing.Sequence[float]) -> float:
    """max_i |w'_i - w_i| / w_i — the quantity compared to thresA."""
    if len(old) != len(new):
        raise AdaptationError(
            f"weight vectors differ in length: {len(old)} vs {len(new)}")
    worst = 0.0
    for w_old, w_new in zip(old, new):
        if w_old <= 0:
            if w_new > 0:
                return float("inf")
            continue
        worst = max(worst, abs(w_new - w_old) / w_old)
    return worst


def stable_hash(key: typing.Any) -> int:
    """Deterministic hash (CRC32) independent of PYTHONHASHSEED."""
    return zlib.crc32(repr(key).encode())


class DistributionPolicy(abc.ABC):
    """Maps each tuple to a consumer index under the current weights."""

    def __init__(self, consumer_count: int,
                 weights: typing.Sequence[float] | None = None) -> None:
        if consumer_count < 1:
            raise AdaptationError(
                f"need at least one consumer: {consumer_count}")
        self.consumer_count = consumer_count
        if weights is None:
            weights = [1.0] * consumer_count
        if len(weights) != consumer_count:
            raise AdaptationError(
                f"{len(weights)} weights for {consumer_count} consumers")
        self.weights = normalise_weights(weights)

    @abc.abstractmethod
    def route(self, row: Row) -> int:
        """Consumer index for ``row``."""

    def route_batch(self, rows: typing.Sequence[Row]
                    ) -> list[tuple[int, typing.Sequence[Row]]]:
        """Split a batch by destination, preserving per-channel order.

        Routes the rows in sequence — so stateful policies (round-robin
        credits) advance exactly as ``len(rows)`` :meth:`route` calls
        would — and returns ``(consumer_index, rows)`` groups in
        first-appearance order.  A batch under a changing weight vector
        therefore splits identically to the per-tuple stream.

        ``rows`` may be a :class:`~repro.data.batch.Batch`; a group's
        row container may likewise be a ``Batch`` (the single-consumer
        pass-through), so callers must not assume ``list``.
        """
        grouped: dict[int, list[Row]] = {}
        for row in rows:
            grouped.setdefault(self.route(row), []).append(row)
        return list(grouped.items())

    @abc.abstractmethod
    def update_weights(self, weights: typing.Sequence[float]) -> None:
        """Install a new workload vector."""

    @property
    def is_stateful_safe(self) -> bool:
        """True when the policy keeps equal keys on equal consumers."""
        return False


class WeightedRoundRobin(DistributionPolicy):
    """Smooth weighted round-robin (as used by e.g. nginx).

    Each consumer has a running credit; every route picks the consumer
    with the highest credit and debits the total weight, producing an
    evenly interleaved sequence whose ratios match the weights.
    """

    def __init__(self, consumer_count: int,
                 weights: typing.Sequence[float] | None = None) -> None:
        super().__init__(consumer_count, weights)
        self._credit = [0.0] * consumer_count

    def route(self, row: Row) -> int:
        for index in range(self.consumer_count):
            self._credit[index] += self.weights[index]
        best = max(range(self.consumer_count), key=lambda i: self._credit[i])
        self._credit[best] -= 1.0
        return best

    def route_batch(self, rows: typing.Sequence[Row]
                    ) -> list[tuple[int, typing.Sequence[Row]]]:
        # Single consumer: every route picks index 0 and leaves the
        # credit at exactly 0.0 (+1.0, max, -1.0), so skipping the
        # per-row credit walk is state- and output-identical.  The
        # whole batch passes through unsplit — on the columnar plane
        # this keeps a column-backed Batch intact with zero per-row
        # work (the compute -> sink channel is always WRR-of-1).
        if self.consumer_count == 1:
            return [(0, rows)] if len(rows) else []
        if isinstance(rows, Batch) and rows.is_columnar:
            # The credit walk never reads row content, so a columnar
            # batch routes without materializing a single Row: compute
            # the target sequence (advancing the credits exactly as
            # len(rows) route() calls would), then gather columns per
            # target in first-appearance order.
            count = len(rows)
            if count == 0:
                return []
            credit = self._credit
            weights = self.weights
            indices = range(self.consumer_count)
            groups: dict[int, list[int]] = {}
            for position in range(count):
                for index in indices:
                    credit[index] += weights[index]
                best = max(indices, key=lambda i: credit[i])
                credit[best] -= 1.0
                groups.setdefault(best, []).append(position)
            if len(groups) == 1:
                return [(next(iter(groups)), rows)]
            columns = rows.columns()
            tids = rows.tids()
            return [(target,
                     Batch.from_columns(
                         [[column[i] for i in positions]
                          for column in columns],
                         [tids[i] for i in positions]))
                    for target, positions in groups.items()]
        return DistributionPolicy.route_batch(self, rows)

    def update_weights(self, weights: typing.Sequence[float]) -> None:
        self.weights = normalise_weights(weights)
        # Keep the accrued credits: zeroing them made every consumer
        # tie on the first post-update route, so max() always picked
        # the lowest index and frequent rebalances burst all tuples to
        # consumer 0.  Smooth-WRR credits stay within (-1, 1) of their
        # own accord; the clamp just bounds any carry-over from a very
        # skewed previous vector.
        self._credit = [min(1.0, max(-1.0, credit))
                        for credit in self._credit]


class HashBucketPolicy(DistributionPolicy):
    """Hash-partitioning with a re-assignable bucket -> consumer map."""

    def __init__(self, consumer_count: int, key_position: int,
                 bucket_count: int = 256,
                 weights: typing.Sequence[float] | None = None,
                 bucket_map: typing.Sequence[int] | None = None) -> None:
        super().__init__(consumer_count, weights)
        if bucket_count < consumer_count:
            raise AdaptationError(
                f"bucket_count {bucket_count} < consumers {consumer_count}")
        self.key_position = key_position
        self.bucket_count = bucket_count
        if bucket_map is None:
            bucket_map = assign_buckets(self.weights, bucket_count)
        self.bucket_map = list(bucket_map)
        self._validate_map()

    def _validate_map(self) -> None:
        if len(self.bucket_map) != self.bucket_count:
            raise AdaptationError(
                f"bucket map length {len(self.bucket_map)} != "
                f"{self.bucket_count}")
        if any(not 0 <= b < self.consumer_count for b in self.bucket_map):
            raise AdaptationError("bucket map references unknown consumer")

    @property
    def is_stateful_safe(self) -> bool:
        return True

    def bucket_of(self, row: Row) -> int:
        key = row.values[self.key_position]
        return stable_hash(key) % self.bucket_count

    def route(self, row: Row) -> int:
        return self.bucket_map[self.bucket_of(row)]

    def route_batch(self, rows: typing.Sequence[Row]
                    ) -> list[tuple[int, typing.Sequence[Row]]]:
        # Vectorized hash-key extraction + bucket partitioning: one
        # tight loop with the map, the CRC and the key position bound
        # as locals.  Same hash, same map lookup, same first-appearance
        # group order as the per-row ``route`` walk.
        bucket_map = self.bucket_map
        bucket_count = self.bucket_count
        key_position = self.key_position
        crc32 = zlib.crc32
        if isinstance(rows, Batch) and rows.is_columnar:
            # Hash over the key column and partition by *row position*,
            # then gather each group's columns — no Row materialization
            # and one output block per consumer.  A single-group batch
            # passes through whole.
            keys = rows.column(key_position)
            targets = [bucket_map[crc32(repr(key).encode()) % bucket_count]
                       for key in keys]
            positions: dict[int, list[int]] = {}
            for position, target in enumerate(targets):
                group = positions.get(target)
                if group is None:
                    positions[target] = [position]
                else:
                    group.append(position)
            if len(positions) == 1:
                return [(next(iter(positions)), rows)]
            columns = rows.columns()
            tids = rows.tids()
            return [(target,
                     Batch.from_columns(
                         [[column[i] for i in group] for column in columns],
                         [tids[i] for i in group]))
                    for target, group in positions.items()]
        grouped: dict[int, list[Row]] = {}
        for row in rows:
            bucket = crc32(repr(row.values[key_position]).encode()) \
                % bucket_count
            grouped.setdefault(bucket_map[bucket], []).append(row)
        return list(grouped.items())

    def update_weights(self, weights: typing.Sequence[float],
                       bucket_map: typing.Sequence[int] | None = None
                       ) -> None:
        """Install new weights and the map realising them.

        When several producers feed the same consumer group they must
        share one map, so the Responder computes it centrally and
        passes it in; a lone producer may omit it and get a
        minimal-movement rebalance of its current map.
        """
        self.weights = normalise_weights(weights)
        if bucket_map is None:
            bucket_map = rebalance_buckets(self.bucket_map, self.weights)
        self.bucket_map = list(bucket_map)
        self._validate_map()


def assign_buckets(weights: typing.Sequence[float],
                   bucket_count: int) -> list[int]:
    """Initial contiguous bucket assignment proportional to weights.

    Uses largest-remainder apportionment so every consumer with
    positive weight receives at least its floor share and the counts
    sum exactly to ``bucket_count``.
    """
    weights = normalise_weights(weights)
    quotas = [w * bucket_count for w in weights]
    counts = [int(q) for q in quotas]
    remainders = sorted(range(len(weights)),
                        key=lambda i: quotas[i] - counts[i], reverse=True)
    shortfall = bucket_count - sum(counts)
    for i in range(shortfall):
        counts[remainders[i % len(remainders)]] += 1
    bucket_map: list[int] = []
    for consumer, count in enumerate(counts):
        bucket_map.extend([consumer] * count)
    return bucket_map


def rebalance_buckets(current_map: typing.Sequence[int],
                      weights: typing.Sequence[float]) -> list[int]:
    """Minimal-movement reassignment of buckets to match ``weights``.

    Consumers over their target count give buckets away (from the end
    of their held list) to consumers under theirs; untouched buckets —
    and thus their operator state — stay put.
    """
    weights = normalise_weights(weights)
    bucket_count = len(current_map)
    consumer_count = len(weights)
    quotas = [w * bucket_count for w in weights]
    targets = [int(q) for q in quotas]
    remainders = sorted(range(consumer_count),
                        key=lambda i: quotas[i] - targets[i], reverse=True)
    shortfall = bucket_count - sum(targets)
    for i in range(shortfall):
        targets[remainders[i % consumer_count]] += 1

    held: list[list[int]] = [[] for _ in range(consumer_count)]
    for bucket, consumer in enumerate(current_map):
        held[consumer].append(bucket)

    surplus: list[int] = []
    for consumer in range(consumer_count):
        while len(held[consumer]) > targets[consumer]:
            surplus.append(held[consumer].pop())
    new_map = list(current_map)
    for consumer in range(consumer_count):
        while len(held[consumer]) < targets[consumer]:
            bucket = surplus.pop()
            held[consumer].append(bucket)
            new_map[bucket] = consumer
    return new_map


def rebalance_outstanding(
        assignments: typing.Mapping[int, typing.Sequence[Row]],
        weights: typing.Sequence[float]) -> dict[int, list[tuple[Row, int]]]:
    """Plan a minimal-movement reshuffle of outstanding tuples.

    ``assignments`` maps consumer index to its outstanding (unsent or
    unacknowledged) tuples.  Returns, per source consumer, the list of
    ``(row, new_consumer)`` moves needed so outstanding counts become
    proportional to ``weights``.  Used for R1 on stateless subplans,
    where any tuple may run anywhere.
    """
    weights = normalise_weights(weights)
    consumer_count = len(weights)
    outstanding = {c: list(rows) for c, rows in assignments.items()}
    total = sum(len(rows) for rows in outstanding.values())
    if total == 0:
        return {}
    quotas = [w * total for w in weights]
    targets = [int(q) for q in quotas]
    remainders = sorted(range(consumer_count),
                        key=lambda i: quotas[i] - targets[i], reverse=True)
    shortfall = total - sum(targets)
    for i in range(shortfall):
        targets[remainders[i % consumer_count]] += 1

    deficits = [targets[c] - len(outstanding.get(c, []))
                for c in range(consumer_count)]
    moves: dict[int, list[tuple[Row, int]]] = {}
    receivers = [c for c in range(consumer_count) if deficits[c] > 0]
    # Drained receivers advance a cursor instead of ``pop(0)``-ing the
    # list head, which re-shifted every remaining element and made the
    # plan O(n²) in the receiver count.  The visit order — and thus
    # every (row, target) pair — is identical to the shifting version.
    front = 0
    for source in range(consumer_count):
        excess = -deficits[source]
        if excess <= 0:
            continue
        # Move the most recently assigned tuples first: they are the
        # least likely to have started processing at the consumer.
        candidates = outstanding.get(source, [])[::-1][:excess]
        for row in candidates:
            while front < len(receivers) and deficits[receivers[front]] == 0:
                front += 1
            if front == len(receivers):
                break
            target = receivers[front]
            deficits[target] -= 1
            moves.setdefault(source, []).append((row, target))
    return moves
