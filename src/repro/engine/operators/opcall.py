"""The operation_call operator: Web Services as typed foreign functions.

"Arbitrary Web Services can play the role of typed foreign functions
and be invoked from queries (with the operation call operator being
responsible for the execution)" (§2).  The call's CPU burst carries
the operation's work label, which is what the paper's WS perturbations
(10x/20x/30x costlier) target.
"""

from __future__ import annotations

import typing

from repro.data.batch import Batch
from repro.engine.operators.base import END, EvalContext, Operator, UnaryOperator
from repro.services.ws import WebServiceOperation


class OperationCall(UnaryOperator):
    """Invokes a WS operation per tuple, appending the result column."""

    def __init__(self, ctx: EvalContext, child: Operator,
                 operation: WebServiceOperation, arg_position: int) -> None:
        super().__init__(ctx, child)
        self.operation = operation
        self.arg_position = arg_position
        self.calls_made = 0
        self.ws_retries = 0

    def _retry_transient_failures(self) -> typing.Generator:
        """Re-attempt the call while chaos makes it fail transiently.

        Each failed attempt already paid the operation's work (the
        request reached the service and died there); the retry backs
        off per the ``ws_retry`` policy and pays the work again.
        """
        chaos = self.ctx.grid.chaos
        if chaos is None:
            return
        attempt = 0
        while chaos.ws_call_fails(self.operation.name):
            attempt += 1
            self.ws_retries += 1
            chaos.count_retry("ws")
            backoff = chaos.retry_backoff_ms(chaos.config.ws_retry, attempt)
            if backoff > 0:
                yield self.env.timeout(backoff)
            yield from self.ctx.machine.work(
                self.operation.work_label, self.operation.base_work_ms)

    def next(self) -> typing.Generator:
        row = yield from self.child.next()
        if row is END:
            return END
        # Invocation plumbing plus the (perturbable) service work.
        yield from self.ctx.machine.work(
            "opcall", self.ctx.cost.opcall_overhead_work)
        yield from self.ctx.machine.work(
            self.operation.work_label, self.operation.base_work_ms)
        yield from self._retry_transient_failures()
        result = self.operation.invoke(row.values[self.arg_position])
        self.calls_made += 1
        return row.replace_values(row.values + (result,))

    def next_batch(self, max_rows: int) -> typing.Generator:
        if max_rows == 1:
            return (yield from Operator.next_batch(self, max_rows))
        batch = yield from self.child.next_batch(max_rows)
        if batch is END:
            return END
        yield from self.ctx.machine.work_batch(
            "opcall", self.ctx.cost.opcall_overhead_work, len(batch))
        yield from self.ctx.machine.work_batch(
            self.operation.work_label, self.operation.base_work_ms,
            len(batch))
        if (self.ctx.engine_config.columnar
                and self.ctx.grid.chaos is None):
            # Vectorized result column: invoke over the argument column
            # and append the results as a new column; tids carry over
            # unchanged (replace_values inherits provenance).  Gated on
            # no chaos so the per-row retry generator — and with it the
            # chaos RNG draw order — is untouched whenever failures are
            # possible (_retry_transient_failures returns immediately
            # without drawing when chaos is None).
            invoke = self.operation.invoke
            results = [invoke(value)
                       for value in batch.column(self.arg_position)]
            self.calls_made += len(results)
            return Batch.from_columns(batch.columns() + [results],
                                      batch.tids())
        out = []
        for row in batch:
            yield from self._retry_transient_failures()
            result = self.operation.invoke(row.values[self.arg_position])
            self.calls_made += 1
            out.append(row.replace_values(row.values + (result,)))
        return batch.replace_rows(out)
