"""Operator protocol for the iterator-model query engine.

OGSA-DQP "adopts the iterator pipelining model of execution" [13]:
each subplan is driven by one evaluator thread calling ``next()`` down
an operator chain.  In the simulation an operator's ``open``/``next``/
``close`` are *generators* so they can wait on simulated time (CPU
bursts, queue waits, network sends); callers use
``row = yield from op.next()``.

``next`` returns a :class:`~repro.data.tuples.Row` or the :data:`END`
sentinel.  After END, ``next`` may be called again: exchange consumers
can "reopen" when a retrospective repartition replays tuples to them,
and all operators must tolerate that.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import CostModel, EngineConfig
from repro.engine.metrics import SubplanMetrics
from repro.grid.container import GridContext
from repro.grid.machine import Machine


class _EndOfStream:
    """Singleton sentinel returned by ``next`` when a stream ends."""

    def __repr__(self) -> str:
        return "END"


END = _EndOfStream()


@dataclasses.dataclass
class EvalContext:
    """Shared collaborators for the operators of one subplan instance."""

    grid: GridContext
    machine: Machine
    metrics: SubplanMetrics
    cost: CostModel
    engine_config: EngineConfig
    #: Local MonitoringEventDetector hook (None when monitoring is off).
    monitor: typing.Any = None

    @property
    def env(self):
        return self.grid.env


class Operator:
    """Base class for physical operators."""

    def __init__(self, ctx: EvalContext) -> None:
        self.ctx = ctx
        self.env = ctx.env

    def open(self) -> typing.Generator:
        """Prepare for evaluation (recursively opens children)."""
        return
        yield  # pragma: no cover - generator form

    def next(self) -> typing.Generator:
        """Produce the next row, or END."""
        raise NotImplementedError

    def finish(self) -> typing.Generator:
        """Root-operator hook run by the evaluator after END.

        Exchange producers flush and announce here; the sink fires its
        completion event.  Default: no-op.
        """
        return
        yield  # pragma: no cover - generator form

    def close(self) -> typing.Generator:
        """Release resources (recursively closes children)."""
        return
        yield  # pragma: no cover - generator form


class UnaryOperator(Operator):
    """An operator with a single child."""

    def __init__(self, ctx: EvalContext, child: Operator) -> None:
        super().__init__(ctx)
        self.child = child

    def open(self) -> typing.Generator:
        yield from self.child.open()

    def close(self) -> typing.Generator:
        yield from self.child.close()
