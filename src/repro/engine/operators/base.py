"""Operator protocol for the batch-granular iterator-model engine.

OGSA-DQP "adopts the iterator pipelining model of execution" [13]:
each subplan is driven by one evaluator thread pulling down an
operator chain.  In the simulation an operator's ``open``/``next``/
``next_batch``/``close`` are *generators* so they can wait on
simulated time (CPU bursts, queue waits, network sends); callers use
``row = yield from op.next()`` or
``batch = yield from op.next_batch(n)``.

``next`` returns a :class:`~repro.data.tuples.Row` or the :data:`END`
sentinel; ``next_batch`` returns a non-empty
:class:`~repro.data.batch.Batch` of up to ``max_rows`` rows, or END.
The batch path is the hot path: vectorized operators aggregate their
per-tuple CPU costs into one ``machine.work_batch`` call per batch,
so the simulator schedules events per morsel instead of per tuple.
``next_batch(1)`` degrades to exactly one ``next()`` call, preserving
the original per-tuple semantics when ``EngineConfig.batch_size`` is 1.

After END, ``next``/``next_batch`` may be called again: exchange
consumers can "reopen" when a retrospective repartition replays tuples
to them, and all operators must tolerate that.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import CostModel, EngineConfig
from repro.data.batch import Batch
from repro.engine.metrics import SubplanMetrics
from repro.grid.container import GridContext
from repro.grid.machine import Machine


class _EndOfStream:
    """Singleton sentinel returned by ``next`` when a stream ends."""

    def __repr__(self) -> str:
        return "END"


END = _EndOfStream()


@dataclasses.dataclass
class EvalContext:
    """Shared collaborators for the operators of one subplan instance."""

    grid: GridContext
    machine: Machine
    metrics: SubplanMetrics
    cost: CostModel
    engine_config: EngineConfig
    #: Local MonitoringEventDetector hook (None when monitoring is off).
    monitor: typing.Any = None

    @property
    def env(self):
        return self.grid.env


class Operator:
    """Base class for physical operators."""

    def __init__(self, ctx: EvalContext) -> None:
        self.ctx = ctx
        self.env = ctx.env

    def open(self) -> typing.Generator:
        """Prepare for evaluation (recursively opens children)."""
        return
        yield  # pragma: no cover - generator form

    def next(self) -> typing.Generator:
        """Produce the next row, or END."""
        raise NotImplementedError

    def next_batch(self, max_rows: int) -> typing.Generator:
        """Produce a non-empty batch of up to ``max_rows`` rows, or END.

        The default bridges to the per-tuple path: it gathers rows by
        calling :meth:`next` until the morsel is full or the stream
        ends, returning a partial batch when rows precede END (END is a
        state, not a token — the next call re-derives it).  With
        ``max_rows=1`` this is exactly one ``next()`` call.  Vectorized
        operators override it to aggregate per-tuple costs into one
        simulator event per batch.
        """
        rows = []
        while len(rows) < max_rows:
            row = yield from self.next()
            if row is END:
                break
            rows.append(row)
        if rows:
            return Batch(rows)
        return END

    def finish(self) -> typing.Generator:
        """Root-operator hook run by the evaluator after END.

        Exchange producers flush and announce here; the sink fires its
        completion event.  Default: no-op.
        """
        return
        yield  # pragma: no cover - generator form

    def close(self) -> typing.Generator:
        """Release resources (recursively closes children)."""
        return
        yield  # pragma: no cover - generator form


class UnaryOperator(Operator):
    """An operator with a single child."""

    def __init__(self, ctx: EvalContext, child: Operator) -> None:
        super().__init__(ctx)
        self.child = child

    def open(self) -> typing.Generator:
        yield from self.child.open()

    def close(self) -> typing.Generator:
        yield from self.child.close()
