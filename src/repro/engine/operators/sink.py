"""Result sink: the root of the query plan on the coordinator.

Deduplicates results by provenance id, making the whole pipeline
exactly-once under retrospective replays, and fires a completion event
the GDQS uses to measure the query response time.
"""

from __future__ import annotations

import typing

from repro.data.tuples import Row
from repro.engine.operators.base import END, EvalContext, Operator, UnaryOperator


class ResultSink(UnaryOperator):
    """Collects deduplicated result rows and signals completion.

    With an attached :class:`~repro.engine.operators.aggregate.
    GroupAggregator`, accepted rows are additionally folded into their
    groups and :meth:`final_rows` returns the aggregated output.
    """

    def __init__(self, ctx: EvalContext, child: Operator,
                 aggregator=None) -> None:
        super().__init__(ctx, child)
        self.aggregator = aggregator
        self.results: list[Row] = []
        self._seen: set = set()
        self.duplicates_dropped = 0
        self.done = ctx.env.event()
        #: Time of the most recent completion (updated if late replays
        #: reopen the result channel).
        self.completed_at: float | None = None

    def next(self) -> typing.Generator:
        row = yield from self.child.next()
        if row is END:
            return END
        yield from self.ctx.machine.work("sink", self.ctx.cost.sink_work)
        if row.tid in self._seen:
            self.duplicates_dropped += 1
        else:
            self._seen.add(row.tid)
            self.results.append(row)
            if self.aggregator is not None:
                self.aggregator.add(row)
        return row

    def next_batch(self, max_rows: int) -> typing.Generator:
        if max_rows == 1:
            return (yield from Operator.next_batch(self, max_rows))
        batch = yield from self.child.next_batch(max_rows)
        if batch is END:
            return END
        yield from self.ctx.machine.work_batch(
            "sink", self.ctx.cost.sink_work, len(batch))
        if self.aggregator is None:
            # Bulk dedup: the overwhelmingly common case is a batch of
            # entirely-new tids (duplicates only appear under replays),
            # verified in one set-disjointness probe.  Falls back to
            # the row loop on any duplicate — including intra-batch
            # ones, which the uniqueness check catches.
            tids = batch.tids()
            unique = set(tids)
            if len(unique) == len(tids) and self._seen.isdisjoint(unique):
                self._seen |= unique
                self.results.extend(batch.rows)
                return batch
        for row in batch:
            if row.tid in self._seen:
                self.duplicates_dropped += 1
            else:
                self._seen.add(row.tid)
                self.results.append(row)
                if self.aggregator is not None:
                    self.aggregator.add(row)
        return batch

    def final_rows(self) -> list[Row]:
        """The query's output rows (aggregated when grouping is on)."""
        if self.aggregator is not None:
            return self.aggregator.results()
        return list(self.results)

    def finish(self) -> typing.Generator:
        """Completion: all result channels drained and announced."""
        self.completed_at = self.env.now
        if not self.done.triggered:
            self.done.succeed(self.env.now)
        return
        yield  # pragma: no cover - generator form
