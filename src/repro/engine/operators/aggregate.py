"""Grouped aggregation over the deduplicated result stream.

The :class:`GroupAggregator` is attached to the coordinator's result
sink and consumes rows *after* provenance deduplication, so aggregates
are exactly-once under retrospective repartitioning and failure
recovery by construction — a replayed tuple can reach the sink twice
but contributes to the aggregates once.
"""

from __future__ import annotations

import typing

from repro.data.tuples import Row
from repro.errors import ExecutionError


class _Count:
    def initial(self):
        return 0

    def add(self, state, value):
        return state + 1

    def result(self, state):
        return state


class _Sum:
    def initial(self):
        return 0.0

    def add(self, state, value):
        return state + value

    def result(self, state):
        return state


class _Avg:
    def initial(self):
        return (0.0, 0)

    def add(self, state, value):
        total, count = state
        return (total + value, count + 1)

    def result(self, state):
        total, count = state
        if count == 0:
            return 0.0
        return total / count


class _Min:
    def initial(self):
        return None

    def add(self, state, value):
        if state is None or value < state:
            return value
        return state

    def result(self, state):
        return state


class _Max:
    def initial(self):
        return None

    def add(self, state, value):
        if state is None or value > state:
            return value
        return state

    def result(self, state):
        return state


AGGREGATE_IMPLEMENTATIONS = {
    "count": _Count(),
    "sum": _Sum(),
    "avg": _Avg(),
    "min": _Min(),
    "max": _Max(),
}


class GroupAggregator:
    """Incremental GROUP BY evaluation.

    ``aggregates`` is a list of ``(function_name, input_position)``
    pairs (position None for ``count(*)``); ``output_layout`` lists the
    select items in order as ``("group", i)`` / ``("agg", j)`` entries.
    """

    def __init__(self, group_positions: typing.Sequence[int],
                 aggregates: typing.Sequence[tuple],
                 output_layout: typing.Sequence[tuple]) -> None:
        self.group_positions = list(group_positions)
        self.aggregates = []
        for function_name, position in aggregates:
            try:
                implementation = AGGREGATE_IMPLEMENTATIONS[function_name]
            except KeyError:
                raise ExecutionError(
                    f"unknown aggregate {function_name!r}") from None
            self.aggregates.append((implementation, position))
        self.output_layout = list(output_layout)
        self._groups: dict[tuple, list] = {}
        self.rows_consumed = 0

    def add(self, row: Row) -> None:
        """Fold one (already deduplicated) row into its group."""
        key = tuple(row.values[p] for p in self.group_positions)
        states = self._groups.get(key)
        if states is None:
            states = [implementation.initial()
                      for implementation, _p in self.aggregates]
            self._groups[key] = states
        for index, (implementation, position) in enumerate(self.aggregates):
            value = row.values[position] if position is not None else None
            states[index] = implementation.add(states[index], value)
        self.rows_consumed += 1

    @property
    def group_count(self) -> int:
        return len(self._groups)

    def results(self) -> list[Row]:
        """Final rows, one per group, in select-list column order.

        Groups are emitted in sorted key order for determinism.
        """
        rows = []
        for key in sorted(self._groups, key=repr):
            states = self._groups[key]
            values = []
            for tag, index in self.output_layout:
                if tag == "group":
                    values.append(key[index])
                else:
                    implementation, _position = self.aggregates[index]
                    values.append(implementation.result(states[index]))
            rows.append(Row(tuple(values), ("agg",) + key))
        return rows
