"""Stateless per-tuple operators: selection and projection.

Both carry vectorized columnar paths (``EngineConfig.columnar``):
selection evaluates a :class:`~repro.data.tuples.ColumnPredicate`'s
test directly over the column array and gathers surviving positions
column-wise; projection is a column select that never touches rows.
Opaque predicates and row-backed batches fall back to the row loop —
either way the kept rows (and charged work) are identical.
"""

from __future__ import annotations

import typing

from repro.data.batch import Batch
from repro.data.tuples import ColumnPredicate, Row
from repro.engine.operators.base import END, EvalContext, Operator, UnaryOperator


class Select(UnaryOperator):
    """Filters rows through a predicate on row values."""

    def __init__(self, ctx: EvalContext, child: Operator,
                 predicate: typing.Callable[[Row], bool],
                 description: str = "predicate") -> None:
        super().__init__(ctx, child)
        self.predicate = predicate
        self.description = description

    def next(self) -> typing.Generator:
        while True:
            row = yield from self.child.next()
            if row is END:
                return END
            yield from self.ctx.machine.work(
                "select", self.ctx.cost.select_work)
            if self.predicate(row):
                return row

    def _filter_columnar(self, batch: Batch) -> Batch | None:
        """Vectorized filter; None when every row is dropped.

        Runs the predicate's scalar test over the key column, then
        gathers the surviving positions from every column.  An all-pass
        batch is returned as-is (the common case for selective-upstream
        plans); the kept set is identical to the row loop's.
        """
        test = self.predicate.test
        keep = [i for i, value in
                enumerate(batch.column(self.predicate.position))
                if test(value)]
        if not keep:
            return None
        if len(keep) == len(batch):
            return batch
        columns = batch.columns()
        tids = batch.tids()
        return Batch.from_columns(
            [[column[i] for i in keep] for column in columns],
            [tids[i] for i in keep])

    def next_batch(self, max_rows: int) -> typing.Generator:
        if max_rows == 1:
            return (yield from Operator.next_batch(self, max_rows))
        columnar = (self.ctx.engine_config.columnar
                    and isinstance(self.predicate, ColumnPredicate))
        # The predicate is charged per input row; empty post-filter
        # batches are retried so callers only ever see non-empty ones.
        while True:
            batch = yield from self.child.next_batch(max_rows)
            if batch is END:
                return END
            yield from self.ctx.machine.work_batch(
                "select", self.ctx.cost.select_work, len(batch))
            if columnar:
                kept_batch = self._filter_columnar(batch)
                if kept_batch is not None:
                    return kept_batch
                continue
            kept = [row for row in batch if self.predicate(row)]
            if kept:
                return batch.replace_rows(kept)


class Project(UnaryOperator):
    """Projects rows onto a list of column positions."""

    def __init__(self, ctx: EvalContext, child: Operator,
                 positions: typing.Sequence[int]) -> None:
        super().__init__(ctx, child)
        self.positions = list(positions)

    def next(self) -> typing.Generator:
        row = yield from self.child.next()
        if row is END:
            return END
        yield from self.ctx.machine.work(
            "project", self.ctx.cost.project_work)
        return row.project(self.positions)

    def next_batch(self, max_rows: int) -> typing.Generator:
        if max_rows == 1:
            return (yield from Operator.next_batch(self, max_rows))
        batch = yield from self.child.next_batch(max_rows)
        if batch is END:
            return END
        yield from self.ctx.machine.work_batch(
            "project", self.ctx.cost.project_work, len(batch))
        if self.ctx.engine_config.columnar:
            # Column select: shares the kept column lists and the tid
            # column; no per-row allocation.  Content matches
            # row.project(positions) for every row.
            return batch.select_columns(self.positions)
        return batch.replace_rows(
            [row.project(self.positions) for row in batch])
