"""Stateless per-tuple operators: selection and projection."""

from __future__ import annotations

import typing

from repro.data.tuples import Row
from repro.engine.operators.base import END, EvalContext, Operator, UnaryOperator


class Select(UnaryOperator):
    """Filters rows through a predicate on row values."""

    def __init__(self, ctx: EvalContext, child: Operator,
                 predicate: typing.Callable[[Row], bool],
                 description: str = "predicate") -> None:
        super().__init__(ctx, child)
        self.predicate = predicate
        self.description = description

    def next(self) -> typing.Generator:
        while True:
            row = yield from self.child.next()
            if row is END:
                return END
            yield from self.ctx.machine.work(
                "select", self.ctx.cost.select_work)
            if self.predicate(row):
                return row


class Project(UnaryOperator):
    """Projects rows onto a list of column positions."""

    def __init__(self, ctx: EvalContext, child: Operator,
                 positions: typing.Sequence[int]) -> None:
        super().__init__(ctx, child)
        self.positions = list(positions)

    def next(self) -> typing.Generator:
        row = yield from self.child.next()
        if row is END:
            return END
        yield from self.ctx.machine.work(
            "project", self.ctx.cost.project_work)
        return row.project(self.positions)
