"""Stateless per-tuple operators: selection and projection."""

from __future__ import annotations

import typing

from repro.data.tuples import Row
from repro.engine.operators.base import END, EvalContext, Operator, UnaryOperator


class Select(UnaryOperator):
    """Filters rows through a predicate on row values."""

    def __init__(self, ctx: EvalContext, child: Operator,
                 predicate: typing.Callable[[Row], bool],
                 description: str = "predicate") -> None:
        super().__init__(ctx, child)
        self.predicate = predicate
        self.description = description

    def next(self) -> typing.Generator:
        while True:
            row = yield from self.child.next()
            if row is END:
                return END
            yield from self.ctx.machine.work(
                "select", self.ctx.cost.select_work)
            if self.predicate(row):
                return row

    def next_batch(self, max_rows: int) -> typing.Generator:
        if max_rows == 1:
            return (yield from Operator.next_batch(self, max_rows))
        # The predicate is charged per input row; empty post-filter
        # batches are retried so callers only ever see non-empty ones.
        while True:
            batch = yield from self.child.next_batch(max_rows)
            if batch is END:
                return END
            yield from self.ctx.machine.work_batch(
                "select", self.ctx.cost.select_work, len(batch))
            kept = [row for row in batch if self.predicate(row)]
            if kept:
                return batch.replace_rows(kept)


class Project(UnaryOperator):
    """Projects rows onto a list of column positions."""

    def __init__(self, ctx: EvalContext, child: Operator,
                 positions: typing.Sequence[int]) -> None:
        super().__init__(ctx, child)
        self.positions = list(positions)

    def next(self) -> typing.Generator:
        row = yield from self.child.next()
        if row is END:
            return END
        yield from self.ctx.machine.work(
            "project", self.ctx.cost.project_work)
        return row.project(self.positions)

    def next_batch(self, max_rows: int) -> typing.Generator:
        if max_rows == 1:
            return (yield from Operator.next_batch(self, max_rows))
        batch = yield from self.child.next_batch(max_rows)
        if batch is END:
            return END
        yield from self.ctx.machine.work_batch(
            "project", self.ctx.cost.project_work, len(batch))
        return batch.replace_rows(
            [row.project(self.positions) for row in batch])
