"""The enhanced exchange operator: producers and consumers.

OGSA-DQP encapsulates all data communication in an exchange operator
[12] split into two independently running halves (§3.1, Response):

* the :class:`ExchangeProducer` forms the local root of a subplan.  It
  routes tuples to consumer instances under the current workload
  vector, ships them in buffers (synchronous, SOAP/HTTP-style sends),
  inserts checkpoint tuples, keeps per-channel recovery logs, emits the
  M1/M2 monitoring events, and executes distribution updates — both
  prospective (R2) and retrospective (R1, replaying recovery logs);
* the :class:`ExchangeConsumer` forms the leaf of a subplan.  It owns
  the incoming queue ("the incoming queues within exchanges can fit
  the complete dataset"), acknowledges checkpoints, tracks per-producer
  completion via end-of-stream announcements, and applies tuple
  discards issued during retrospective moves.

Channel completion uses tid-set accounting: a producer announces the
set of tuple ids attributed to the channel; the channel is complete
when every announced tid has been settled (returned to the subplan or
discarded).  Announcements are revised when retrospective moves change
the attribution, which lets consumers "reopen" safely.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.data.batch import Batch
from repro.data.tuples import Row, Tid
from repro.engine.control import (
    RECHECK,
    ChannelAnnouncement,
    DataBuffer,
    DiscardTuples,
    ProgressReport,
)
from repro.engine.distribution import (
    DistributionPolicy,
    HashBucketPolicy,
    rebalance_outstanding,
)
from repro.engine.operators.base import END, EvalContext, Operator, UnaryOperator
from repro.errors import ExecutionError
from repro.net.message import KIND_CONTROL, KIND_DATA
from repro.recovery.checkpoint import Acknowledgement, Checkpoint
from repro.recovery.log import RecoveryLog
from repro.sim.stores import Store


@dataclasses.dataclass(frozen=True)
class ConsumerRef:
    """Address of one consumer instance of a partitioned subplan."""

    endpoint: str       # GQES service endpoint hosting the consumer
    channel_key: str    # routes to the right consumer inside the GQES
    instance_id: str    # subplan instance (for monitoring attribution)
    machine_name: str


class ExchangeProducer(UnaryOperator):
    """Subplan-root exchange half: routes, buffers, ships, logs."""

    def __init__(self, ctx: EvalContext, child: Operator, producer_id: str,
                 target_subplan_id: str,
                 consumers: typing.Sequence[ConsumerRef],
                 policy: DistributionPolicy, row_bytes: int,
                 estimated_total: int,
                 state_channel: bool = False) -> None:
        super().__init__(ctx, child)
        if policy.consumer_count != len(consumers):
            raise ExecutionError(
                f"{producer_id}: policy for {policy.consumer_count} "
                f"consumers, got {len(consumers)}")
        self.producer_id = producer_id
        self.target_subplan_id = target_subplan_id
        self.consumers = list(consumers)
        self.policy = policy
        self.row_bytes = row_bytes
        self.estimated_total = estimated_total
        self.service: typing.Any = None  # attached by the hosting GQES
        #: Per-tuple recovery-log cost, folded once: charged on every
        #: routed row, so the two-field lookup and multiply stay off
        #: the per-tuple path.
        self._log_work = (ctx.cost.log_append_work
                          + ctx.cost.log_append_work_per_byte * row_bytes)
        #: Columnar plane: buffers and wire messages carry whole
        #: :class:`Batch` blocks (chunked at the same checkpoint/flush
        #: boundaries as the per-row wire) instead of individual rows.
        #: Pure host-side packaging — block boundaries, events and the
        #: rows delivered are identical — so state channels opt out:
        #: their per-row wire entries feed the late-build drain's
        #: one-row-per-get protocol, which blocks would repackage.
        self._block_wire = (ctx.engine_config.columnar
                            and ctx.engine_config.batch_size > 1
                            and not state_channel)
        count = len(consumers)
        self._buffers: list[list] = [[] for _ in range(count)]
        self._buffer_rows: list[int] = [0] * count
        self._logs: list[RecoveryLog | None] = [
            RecoveryLog(ref.channel_key)
            if ctx.engine_config.logging_enabled else None
            for ref in consumers]
        #: Build channels of stateful subplans: the routed rows *are*
        #: the downstream operator state, so the producer retains every
        #: row it routes (insertion order) and, whenever a bucket-map
        #: change moves buckets, copies the moved buckets' rows to
        #: their new consumers before the probe side is rerouted —
        #: see :meth:`_replay_state_moves`.
        self.state_channel = state_channel
        self._retained: dict[Tid, Row] | None = (
            {} if state_channel else None)
        #: Every consumer that ever owned each bucket.  Old owners keep
        #: their copy of a moved bucket (state channels never retract)
        #: and may still be probed by tuples queued before the move, so
        #: build rows produced *after* the move must reach them too —
        #: see :meth:`_multicast_targets`.
        self._bucket_owners: list[set[int]] | None = None
        if state_channel and isinstance(policy, HashBucketPolicy):
            self._bucket_owners = [{owner} for owner in policy.bucket_map]
        #: Fast path: stays False until a bucket-map change first gives
        #: a bucket a second owner.
        self._multicast = False
        #: Tids currently attributed to each channel (buffered or sent).
        self._attributed: list[set[Tid]] = [set() for _ in range(count)]
        #: Tids actually transmitted on each channel.
        self._on_wire: list[set[Tid]] = [set() for _ in range(count)]
        self._since_checkpoint: list[int] = [0] * count
        self._checkpoint_seq: list[int] = [0] * count
        self._channel_sent_rows: list[int] = [0] * count
        self._announced: list[frozenset | None] = [None] * count
        self._revision: list[int] = [0] * count
        self.routed_total = 0
        self.finished = False
        self.applied_epoch = 0
        #: Highest epoch whose replay phase has fully completed
        #: (deliveries confirmed).  A chaos-duplicated or retried
        #: update call observing ``epoch <= applied_epoch`` waits for
        #: this before acknowledging — see :meth:`apply_update_replay`.
        self._replay_settled_epoch = 0
        self._replay_waiters: list = []
        #: True between the replay and discard phases of an update
        #: (used by termination detection).
        self.moving = False
        self._pending_discards: list[tuple[int, frozenset]] = []
        #: Most recent update applied (kept so the GDQS can roll an
        #: orphaned two-phase update forward if the Responder dies).
        self.last_update = None
        self.adaptations_applied = 0
        self.retrospective_moves = 0
        self.state_replays = 0
        self.tuples_moved = 0
        self.tuples_replayed_for_recovery = 0
        self.buffers_sent = 0
        self.send_retries = 0
        metrics = ctx.grid.metrics
        self._metric_tuples_sent = metrics.counter(
            "exchange_tuples_sent", producer=producer_id)
        self._metric_bytes_sent = metrics.counter(
            "exchange_bytes_sent", producer=producer_id)
        self._metric_buffers_sent = metrics.counter(
            "exchange_buffers_sent", producer=producer_id)
        self._metric_adaptations = metrics.counter(
            "exchange_adaptations_applied", producer=producer_id)
        self._metric_occupancy = metrics.series(
            "exchange_buffer_occupancy", producer=producer_id)

    # -- counters used by experiments -------------------------------------

    @property
    def sent_per_consumer(self) -> list[int]:
        """Rows currently attributed per consumer (the tuple ratio)."""
        return [len(tids) for tids in self._attributed]

    def progress(self) -> ProgressReport:
        """Progress estimation reply for the Responder ([7])."""
        return ProgressReport(self.producer_id, self.routed_total,
                              self.estimated_total)

    # -- iterator protocol -------------------------------------------------

    def next(self) -> typing.Generator:
        row = yield from self.child.next()
        if row is END:
            return END
        # A replay reopened the subplan after it had finished: clear the
        # flag so termination detection waits for the new outputs to be
        # flushed and re-announced.
        self.finished = False
        if self.ctx.monitor is not None:
            yield from self.ctx.machine.work(
                "instrument", self.ctx.cost.instrument_work_per_tuple)
        index = self.policy.route(row)
        yield from self._enqueue(index, row)
        if self._multicast:
            for extra in self._multicast_targets(row, index):
                yield from self._enqueue(extra, row)
        self.routed_total += 1
        return row

    def next_batch(self, max_rows: int) -> typing.Generator:
        # Cap the morsel at the rows left until the fullest channel
        # buffer rotates: a morsel never straddles a flush boundary, so
        # buffers ship as soon as their 50th row is produced — the same
        # pipeline latency as the per-tuple path — instead of waiting
        # for the whole morsel's upstream work.  Morsels re-align at
        # each boundary (e.g. 32, 32, 18, 32, ... for buffer size 50).
        max_rows = max(1, min(
            max_rows,
            min(self.ctx.engine_config.buffer_size - filled
                for filled in self._buffer_rows)))
        if max_rows == 1:
            return (yield from Operator.next_batch(self, max_rows))
        batch = yield from self.child.next_batch(max_rows)
        if batch is END:
            return END
        self.finished = False
        if self.ctx.monitor is not None:
            yield from self.ctx.machine.work_batch(
                "instrument", self.ctx.cost.instrument_work_per_tuple,
                len(batch))
        # Route and place the whole batch synchronously (no simulated
        # time passes), so a distribution update arriving mid-batch
        # sees every row in the buffers/logs — exactly as the per-tuple
        # path, where routing and buffering are atomic per row.  The
        # aggregated log cost and the rotated-out full buffers are paid
        # and transmitted afterwards.
        logged = 0
        sends: list[tuple[int, list, int]] = []
        extras: dict[int, list[Row]] = {}
        for index, group in self.policy.route_batch(batch):
            group_logged, group_sends = self._place_batch(index, group)
            logged += group_logged
            sends.extend(group_sends)
            if self._multicast:
                for row in group:
                    for extra in self._multicast_targets(row, index):
                        extras.setdefault(extra, []).append(row)
        for index, group in extras.items():
            group_logged, group_sends = self._place_batch(index, group)
            logged += group_logged
            sends.extend(group_sends)
        self.routed_total += len(batch)
        yield from self._settle_batch(logged, sends)
        return batch

    def finish(self) -> typing.Generator:
        """Flush every buffer and announce (or re-announce) channels."""
        yield from self._flush_all()
        self.finished = True
        self._announce_all()

    # -- internals ----------------------------------------------------------

    def _enqueue(self, index: int, row: Row) -> typing.Generator:
        self._buffers[index].append(row)
        self._buffer_rows[index] += 1
        self._attributed[index].add(row.tid)
        if self._retained is not None:
            self._retained[row.tid] = row
        log = self._logs[index]
        if log is not None:
            yield from self.ctx.machine.work("log-append", self._log_work)
            log.append(row)
        self._since_checkpoint[index] += 1
        self._channel_sent_rows[index] += 1
        if (log is not None
                and self._since_checkpoint[index]
                >= self.ctx.engine_config.checkpoint_interval):
            self._insert_checkpoint(index)
        if self._buffer_rows[index] >= self.ctx.engine_config.buffer_size:
            yield from self._flush(index)

    def _place_batch(self, index: int, rows: typing.Sequence[Row]
                     ) -> tuple[int, list[tuple[int, list, int]]]:
        """Synchronously buffer and log ``rows`` on channel ``index``.

        The batch-granular half of :meth:`_enqueue` that must not yield:
        rows are chunked at exactly the per-tuple checkpoint and
        buffer-flush boundaries, with full buffers rotated out for later
        transmission.  Returns ``(logged_count, sends)`` where ``sends``
        are rotated buffers as ``(index, items, row_count)``; the caller
        charges the aggregated log-append work and transmits via
        :meth:`_settle_batch`.

        ``rows`` may be a :class:`Batch` (the routing fast paths hand
        whole batches through).  On the block wire each chunk lands in
        the buffer as one ``Batch`` block — sliced column-wise when the
        source is column-backed, so no ``Row`` is materialized — with
        checkpoint markers between blocks exactly where the per-row
        wire would put them.
        """
        log = self._logs[index]
        config = self.ctx.engine_config
        block_wire = self._block_wire
        is_batch = isinstance(rows, Batch)
        if is_batch and not block_wire:
            rows = rows.rows
            is_batch = False
        sends: list[tuple[int, list, int]] = []
        logged = 0
        position = 0
        total = len(rows)
        while position < total:
            take = total - position
            if log is not None:
                take = min(take, config.checkpoint_interval
                           - self._since_checkpoint[index])
            take = min(take, config.buffer_size - self._buffer_rows[index])
            if block_wire:
                if is_batch:
                    chunk = rows.slice(position, position + take)
                else:
                    chunk = Batch(rows[position:position + take])
                position += take
                chunk_rows = len(chunk)
                self._buffers[index].append(chunk)
                self._attributed[index].update(chunk.tids())
                if log is not None:
                    log.append_block(chunk)
                    logged += chunk_rows
            else:
                chunk = rows[position:position + take]
                position += take
                chunk_rows = len(chunk)
                self._buffers[index].extend(chunk)
                self._attributed[index].update(row.tid for row in chunk)
                if self._retained is not None:
                    self._retained.update((row.tid, row) for row in chunk)
                if log is not None:
                    log.append_batch(chunk)
                    logged += chunk_rows
            self._buffer_rows[index] += chunk_rows
            self._since_checkpoint[index] += chunk_rows
            self._channel_sent_rows[index] += chunk_rows
            if (log is not None
                    and self._since_checkpoint[index]
                    >= config.checkpoint_interval):
                self._insert_checkpoint(index)
            if self._buffer_rows[index] >= config.buffer_size:
                sends.append((index, self._buffers[index],
                              self._buffer_rows[index]))
                self._buffers[index] = []
                self._buffer_rows[index] = 0
        return logged, sends

    def _settle_batch(self, logged: int,
                      sends: typing.Sequence[tuple[int, list, int]]
                      ) -> typing.Generator:
        """Pay a placed batch's aggregated costs and transmit its sends."""
        if logged:
            yield from self.ctx.machine.work_batch(
                "log-append", self._log_work, logged)
        for index, items, row_count in sends:
            yield from self._transmit(index, items, row_count)

    def _insert_checkpoint(self, index: int) -> None:
        self._since_checkpoint[index] = 0
        self._checkpoint_seq[index] += 1
        marker = Checkpoint(self._checkpoint_seq[index], self.producer_id,
                            self._channel_sent_rows[index])
        self._buffers[index].append(marker)
        log = self._logs[index]
        if log is not None:
            log.seal(marker.checkpoint_id)

    def _flush_all(self) -> typing.Generator:
        for index in range(len(self.consumers)):
            yield from self._flush(index)

    def _flush(self, index: int) -> typing.Generator:
        items = self._buffers[index]
        if not items:
            return
        self._buffers[index] = []
        row_count = self._buffer_rows[index]
        self._buffer_rows[index] = 0
        yield from self._transmit(index, items, row_count)

    def _transmit(self, index: int, items: list, row_count: int
                  ) -> typing.Generator:
        """Serialize and send one (already rotated-out) buffer."""
        consumer = self.consumers[index]
        serialization = self.ctx.grid.serialization
        started = self.env.now
        # Columnar payloads are charged the per-column serialization
        # terms (0.0 by default, so the block wire stays cost-neutral).
        column_count = 0
        for item in items:
            if isinstance(item, Batch):
                column_count = max(column_count, item.width)
        yield from self.ctx.machine.work(
            "serialize", serialization.serialize_work(row_count,
                                                      column_count))
        payload = DataBuffer(consumer.channel_key, self.producer_id,
                             items, row_count)
        wire_bytes = serialization.wire_size_batch(row_count, self.row_bytes,
                                                   column_count)
        # Synchronous send: the SOAP/HTTP call returns at delivery.
        chaos = self.ctx.grid.chaos
        if chaos is None:
            yield self.service.send(consumer.endpoint, KIND_DATA, payload,
                                    size_bytes=wire_bytes)
        else:
            yield from self._send_with_retry(consumer.endpoint, payload,
                                             wire_bytes, chaos)
        send_cost = self.env.now - started
        self.buffers_sent += 1
        self._metric_buffers_sent.inc()
        self._metric_tuples_sent.inc(row_count)
        self._metric_bytes_sent.inc(wire_bytes)
        self._metric_occupancy.sample(sum(self._buffer_rows))
        on_wire = self._on_wire[index]
        on_wire_add = on_wire.add
        for item in items:
            if isinstance(item, Row):
                on_wire_add(item.tid)
            elif isinstance(item, Batch):
                on_wire.update(item.tids())
        if self.ctx.monitor is not None and row_count:
            yield from self.ctx.machine.work(
                "monitor", self.ctx.cost.monitor_event_work)
            self.ctx.monitor.submit_m2(
                producer_id=self.producer_id,
                recipient_channel=consumer.channel_key,
                send_cost_ms=send_cost,
                tuple_count=row_count)

    def _send_with_retry(self, endpoint: str, payload, wire_bytes: int,
                         chaos) -> typing.Generator:
        """Send a data buffer, re-sending on chaos-induced silence.

        Unbounded by construction (the config layer rejects a bounded
        ``send_retry``): a data buffer must eventually arrive.  A
        duplicate delivery caused by a timed-out-but-delivered original
        is harmless — tid provenance de-duplicates downstream.  The
        elapsed retry time flows into the M2 send cost, so sustained
        loss surfaces to the Diagnoser as channel expense.
        """
        policy = chaos.config.send_retry
        attempt = 0
        while True:
            attempt += 1
            delivered = self.service.send(endpoint, KIND_DATA, payload,
                                          size_bytes=wire_bytes)
            winner, _ = yield self.env.any_of(
                [delivered, self.env.timeout(policy.timeout_ms)])
            if winner is delivered:
                return
            self.send_retries += 1
            chaos.count_retry("send")
            backoff = chaos.retry_backoff_ms(policy, attempt)
            if backoff > 0:
                yield self.env.timeout(backoff)

    def _announce_all(self) -> None:
        for index, consumer in enumerate(self.consumers):
            current = frozenset(self._attributed[index])
            if self._announced[index] == current:
                continue
            self._announced[index] = current
            self._revision[index] += 1
            announcement = ChannelAnnouncement(
                consumer.channel_key, self.producer_id, current,
                self._revision[index])
            self.service.send(consumer.endpoint, KIND_CONTROL, announcement)

    # -- distribution updates (the Response stage) ---------------------------

    def redirect_instance(self, instance_id: str, new_endpoint: str
                          ) -> typing.Generator:
        """Re-point channels of ``instance_id`` at a replacement host
        and replay the recovery logs (failure recovery, per [18]).

        Every logged (sent but unacknowledged) tuple of the affected
        channels is re-sent to the new endpoint; tuples already in the
        outgoing buffer go there on the next flush anyway.  Returns the
        number of channels redirected.
        """
        redirected = 0
        for index, ref in enumerate(self.consumers):
            if ref.instance_id != instance_id:
                continue
            self.consumers[index] = dataclasses.replace(
                ref, endpoint=new_endpoint)
            self._on_wire[index] = set()
            self._announced[index] = None  # force a fresh announcement
            log = self._logs[index]
            if log is not None:
                # Re-attribute the channel to what the replacement can
                # actually receive: the unacknowledged (logged) tuples.
                # Acknowledged tuples were fully processed and their
                # outputs flushed downstream before the ack, so they
                # need no replay and must not be awaited.
                self._attributed[index] = {
                    row.tid for row in log.outstanding()}
            if log is not None:
                yield from self.ctx.machine.work(
                    "log-extract",
                    self.ctx.cost.log_extract_work * max(1, len(log)))
                buffered_tids = {row.tid
                                 for row in self._buffered_rows(index)}
                for row in log.outstanding():
                    if row.tid in buffered_tids:
                        continue  # still buffered; flushes below
                    # Direct resend: already logged, must not re-log.
                    self._buffers[index].append(row)
                    self._buffer_rows[index] += 1
                    self.tuples_replayed_for_recovery += 1
            yield from self._flush(index)
            redirected += 1
        if self.finished and redirected:
            yield from self._flush_all()
            self._announce_all()
        return redirected

    def handle_ack(self, ack: Acknowledgement) -> None:
        """Prune the recovery log up to an acknowledged checkpoint."""
        for index, consumer in enumerate(self.consumers):
            if consumer.channel_key == ack.channel_key:
                log = self._logs[index]
                if log is not None:
                    log.acknowledge(ack.checkpoint_id)
                return

    def apply_update_replay(self, update) -> typing.Generator:
        """Phase 1 of a distribution update: new policy, then replays.

        Installs the new weights (and bucket map), and for
        retrospective (R1) updates extracts the moved tuples from the
        recovery logs and replays them on their new channels, with
        delivery confirmed before returning.  The matching discards are
        planned here but only issued by :meth:`apply_update_discard`,
        so the Responder can sequence replays across all producers of
        a stateful subplan (build side first) before any state is torn
        down.

        Returns True when the update was applied (False for a stale
        epoch).  The ack is the Responder's sequencing primitive — it
        only reroutes the probe side of a join once the build side's
        replay call returned — so a duplicate of an in-flight update
        (chaos can duplicate the request, and the duplicate would hit
        the stale-epoch path and ack instantly with the same
        correlation id) must wait for the original application to
        finish before returning.
        """
        if update.epoch <= self.applied_epoch:
            yield from self._await_replay_settled(update.epoch)
            return False
        self.applied_epoch = update.epoch
        self.last_update = update
        self.moving = True
        old_bucket_map = None
        if isinstance(self.policy, HashBucketPolicy):
            if self._retained is not None:
                old_bucket_map = list(self.policy.bucket_map)
            self.policy.update_weights(update.weights, update.bucket_map)
            if self._bucket_owners is not None:
                for bucket, owner in enumerate(self.policy.bucket_map):
                    owners = self._bucket_owners[bucket]
                    owners.add(owner)
                    if len(owners) > 1:
                        self._multicast = True
        else:
            self.policy.update_weights(update.weights)
        self.adaptations_applied += 1
        self._metric_adaptations.inc()
        self._pending_discards = []
        if old_bucket_map is not None:
            # State channel: the consumers' operator state is exactly
            # the rows this producer routed, so a bucket-map change is
            # served from the retained rows — for *every* update kind.
            # Prospective updates and quarantine deploys have no logs
            # to replay, and even the retrospective log path only
            # covers unacknowledged tuples; the retained copy covers
            # the whole bucket.
            yield from self._replay_state_moves(old_bucket_map)
        elif update.retrospective and self.ctx.engine_config.logging_enabled:
            self.retrospective_moves += 1
            yield from self._replay_moves(self._plan_moves())
        if self.finished:
            yield from self._flush_all()
        self._replay_settled_epoch = update.epoch
        waiters, self._replay_waiters = self._replay_waiters, []
        for event in waiters:
            event.succeed(None)
        return True

    def _await_replay_settled(self, epoch: int) -> typing.Generator:
        """Block until the replay phase of ``epoch`` has completed."""
        while self._replay_settled_epoch < epoch:
            event = self.env.event()
            self._replay_waiters.append(event)
            yield event

    def apply_update_discard(self) -> typing.Generator:
        """Phase 2: retract moved tuples from their old consumers.

        FIFO links guarantee each discard is observed after the data it
        refers to; revised channel announcements follow the discards on
        the same links.  Waits for the replay phase of the current
        epoch first: a duplicated replay request can ack the Responder
        early, letting this phase start while the replay is in flight.
        """
        yield from self._await_replay_settled(self.applied_epoch)
        for index, discard_tids in self._pending_discards:
            consumer = self.consumers[index]
            self.service.send(
                consumer.endpoint, KIND_CONTROL,
                DiscardTuples(consumer.channel_key, self.producer_id,
                              discard_tids))
        self._pending_discards = []
        if self.finished:
            yield from self._flush_all()
            self._announce_all()
        self.moving = False
        return
        yield  # pragma: no cover - kept a generator for uniform callers

    def _multicast_targets(self, row: Row, primary: int) -> tuple:
        """Former owners of ``row``'s bucket, beyond the current one.

        A moved bucket's old consumers keep its state and may still be
        probed by tuples that were queued (or frozen in transit) before
        the move, so state rows produced after the move are multicast
        to every consumer that ever owned the bucket.  Downstream
        insertion is tid-idempotent, so the copies are harmless where
        the old state turns out to be dead.
        """
        owners = self._bucket_owners[self.policy.bucket_of(row)]
        if len(owners) == 1:
            return ()
        return tuple(sorted(owners - {primary}))

    def _replay_state_moves(self, old_bucket_map: list) -> typing.Generator:
        """Copy the moved buckets' rows to their new consumers.

        State channels never retract.  The old consumer keeps its copy
        of a moved bucket — in-flight probes racing the update still
        find complete state there, while the new consumer receives the
        full bucket (delivery confirmed before this phase returns, and
        the Responder only reroutes the probe producers afterwards).
        Downstream insertion is tid-idempotent and the sink dedups
        join outputs by provenance, so the copy is exactly-once where
        it matters: in the result.
        """
        new_map = self.policy.bucket_map
        moved = {bucket for bucket, owner in enumerate(old_bucket_map)
                 if new_map[bucket] != owner}
        if not moved or not self._retained:
            return
        # Scanning the retained state is log-extract-shaped work.
        yield from self.ctx.machine.work(
            "state-extract",
            self.ctx.cost.log_extract_work * max(1, len(self._retained)))
        replays: dict[int, list[Row]] = {}
        for row in self._retained.values():
            bucket = self.policy.bucket_of(row)
            if bucket not in moved:
                continue
            target = new_map[bucket]
            if row.tid in self._attributed[target]:
                continue  # that consumer already holds this row
            replays.setdefault(target, []).append(row)
        if not replays:
            return
        self.state_replays += 1
        if self.ctx.engine_config.batch_size == 1:
            for target, replay_rows in replays.items():
                for row in replay_rows:
                    yield from self._enqueue(target, row)
                    self.tuples_moved += 1
        else:
            logged = 0
            sends: list[tuple[int, list, int]] = []
            for target, replay_rows in replays.items():
                target_logged, target_sends = self._place_batch(
                    target, replay_rows)
                logged += target_logged
                sends.extend(target_sends)
                self.tuples_moved += len(replay_rows)
            yield from self._settle_batch(logged, sends)
        yield from self._flush_all()

    def _replay_moves(self, moves: dict[int, list[tuple[Row, int]]]
                      ) -> typing.Generator:
        """Retract moved tuples from their channels and replay them."""
        if not any(moves.values()):
            return
        for index, channel_moves in moves.items():
            moved_tids = {row.tid for row, _target in channel_moves}
            buffered_kept = []
            for item in self._buffers[index]:
                if isinstance(item, Row):
                    if item.tid in moved_tids:
                        self._buffer_rows[index] -= 1
                    else:
                        buffered_kept.append(item)
                elif isinstance(item, Batch):
                    kept, removed = item.filter_tids(moved_tids)
                    self._buffer_rows[index] -= removed
                    if len(kept):
                        buffered_kept.append(kept)
                else:
                    buffered_kept.append(item)
            self._buffers[index] = buffered_kept
            log = self._logs[index]
            if log is not None:
                yield from self.ctx.machine.work(
                    "log-extract",
                    self.ctx.cost.log_extract_work * max(1, len(log)))
                log.remove(moved_tids)
            self._attributed[index] -= moved_tids
            discard_tids = moved_tids & self._on_wire[index]
            self._on_wire[index] -= moved_tids
            if discard_tids:
                self._pending_discards.append((index, frozenset(discard_tids)))
        # Replay moved tuples on their new channels and confirm delivery
        # (synchronous flush): the receiving consumers observe replayed
        # state before any discard can tear the old copy down.
        if self.ctx.engine_config.batch_size == 1:
            for channel_moves in moves.values():
                for row, target in channel_moves:
                    yield from self._enqueue(target, row)
                    self.tuples_moved += 1
        else:
            replays: dict[int, list[Row]] = {}
            for channel_moves in moves.values():
                for row, target in channel_moves:
                    replays.setdefault(target, []).append(row)
                    self.tuples_moved += 1
            logged = 0
            sends: list[tuple[int, list, int]] = []
            for target, replay_rows in replays.items():
                target_logged, target_sends = self._place_batch(
                    target, replay_rows)
                logged += target_logged
                sends.extend(target_sends)
            yield from self._settle_batch(logged, sends)
        yield from self._flush_all()

    def _buffered_rows(self, index: int) -> list[Row]:
        """The rows currently buffered on channel ``index``, in order
        (wire blocks expanded, checkpoint markers skipped)."""
        rows: list[Row] = []
        for item in self._buffers[index]:
            if isinstance(item, Row):
                rows.append(item)
            elif isinstance(item, Batch):
                rows.extend(item.rows)
        return rows

    def _plan_moves(self) -> dict[int, list[tuple[Row, int]]]:
        """Which outstanding tuples move where under the new policy."""
        outstanding: dict[int, list[Row]] = {}
        for index in range(len(self.consumers)):
            rows = []
            buffered = self._buffered_rows(index)
            log = self._logs[index]
            if log is not None:
                rows.extend(log.outstanding())
                buffered_tids = {row.tid for row in buffered}
                # Buffered rows are also logged; avoid double counting.
                rows = [row for row in rows if row.tid not in buffered_tids]
            rows.extend(buffered)
            outstanding[index] = rows
        if isinstance(self.policy, HashBucketPolicy):
            moves: dict[int, list[tuple[Row, int]]] = {}
            for index, rows in outstanding.items():
                for row in rows:
                    target = self.policy.route(row)
                    if target != index:
                        moves.setdefault(index, []).append((row, target))
            return moves
        return rebalance_outstanding(outstanding, self.policy.weights)


class ExchangeConsumer(Operator):
    """Subplan-leaf exchange half: the incoming queue and its protocol."""

    def __init__(self, ctx: EvalContext, channel_key: str,
                 expected_producers: typing.Sequence[str],
                 defer_acks: bool = False) -> None:
        super().__init__(ctx)
        self.channel_key = channel_key
        self.expected_producers = list(expected_producers)
        #: Build channels of stateful operators defer acknowledgements:
        #: their tuples *are* the operator state and must stay logged.
        self.defer_acks = defer_acks
        self.queue = Store(ctx.env)
        self.service: typing.Any = None  # attached by the hosting GQES
        #: The fragment's root producer, flushed before each
        #: acknowledgement: an ack asserts the tuples are "not needed
        #: any more", which requires their outputs to be durable at the
        #: next stage (otherwise a crash after the ack loses results
        #: that no recovery log can regenerate).
        self.ack_flush_producer: ExchangeProducer | None = None
        self._settled: dict[str, set] = {
            pid: set() for pid in self.expected_producers}
        self._announcements: dict[str, ChannelAnnouncement] = {}
        self._producer_endpoints: dict[str, str] = {}
        self.aborted = False
        self.rows_received = 0
        self.rows_discarded = 0
        self.acks_sent = 0
        #: Data rows currently queued (wire blocks counted by their row
        #: count), the quantity the queue-depth series samples — entry
        #: counts would under-report 50-row blocks as depth 1.
        self._queued_rows = 0
        metrics = ctx.grid.metrics
        self._metric_rows_received = metrics.counter(
            "exchange_rows_received", channel=channel_key)
        self._metric_rows_discarded = metrics.counter(
            "exchange_rows_discarded", channel=channel_key)
        self._metric_queue_depth = metrics.series(
            "exchange_queue_depth", channel=channel_key)

    # -- GQES-facing entry points ------------------------------------------

    def deliver(self, producer_id: str, sender_endpoint: str,
                items: typing.Sequence) -> None:
        """Enqueue a deserialized buffer (called by the hosting GQES)."""
        self._producer_endpoints[producer_id] = sender_endpoint
        # One bulk enqueue per buffer: the unbounded queue never blocks
        # puts, so this is the fire-and-forget per-item loop minus the
        # per-item StorePut events.
        self.queue.put_many((producer_id, item) for item in items)
        for item in items:
            if isinstance(item, Row):
                self._queued_rows += 1
            elif isinstance(item, Batch):
                self._queued_rows += len(item)
        self._metric_queue_depth.sample(self._queued_rows)

    def inject_recheck(self) -> None:
        """Force the evaluator to re-evaluate channel completion."""
        self.queue.put((None, RECHECK))

    def apply_discard(self, discard: DiscardTuples) -> int:
        """Drop retracted tuples still waiting in the queue.

        Retracted rows may sit in the queue as individual entries or
        inside wire blocks; blocks are filtered in place (an event-free
        rebuild, like ``remove_if``).
        """
        tids = discard.tids
        removed_rows = [0]

        def filter_entry(entry):
            producer_id, item = entry
            if isinstance(item, Row) and item.tid in tids:
                removed_rows[0] += 1
                return None
            if isinstance(item, Batch):
                kept, removed = item.filter_tids(tids)
                if removed:
                    removed_rows[0] += removed
                    return (producer_id, kept) if len(kept) else None
            return entry

        self.queue.remap(filter_entry)
        removed = removed_rows[0]
        self.rows_discarded += removed
        self._queued_rows -= removed
        self._metric_rows_discarded.inc(removed)
        self._metric_queue_depth.sample(self._queued_rows)
        return removed

    def apply_announcement(self, announcement: ChannelAnnouncement) -> None:
        """Install (or revise) a producer's end-of-stream announcement."""
        if announcement.producer_id not in self._settled:
            self._settled[announcement.producer_id] = set()
            self.expected_producers.append(announcement.producer_id)
        current = self._announcements.get(announcement.producer_id)
        if current is None or announcement.revision > current.revision:
            self._announcements[announcement.producer_id] = announcement

    def reset_producer(self, producer_id: str) -> None:
        """Forget a producer's announcement (failure recovery).

        The replacement incarnation re-announces from revision 1;
        settled tids are kept so re-deliveries remain accounted.
        """
        self._announcements.pop(producer_id, None)

    def is_complete(self) -> bool:
        """All producers announced and every announced tid settled."""
        for producer_id in self.expected_producers:
            announcement = self._announcements.get(producer_id)
            if announcement is None:
                return False
            if not announcement.sent_tids <= self._settled[producer_id]:
                return False
        return True

    # -- iterator protocol ----------------------------------------------------

    def next(self) -> typing.Generator:
        while True:
            if self.aborted:
                return END
            # Drain whatever is already queued (rows return, control
            # items — checkpoints, recheck sentinels — are absorbed)
            # before judging completion, so sentinels never linger.
            while len(self.queue) > 0:
                producer_id, item = yield self.queue.get()
                if isinstance(item, Batch):
                    return self._split_block(producer_id, item)
                row = yield from self._handle(producer_id, item)
                if row is not None:
                    return row
            if self.is_complete():
                return END
            waited_from = self.env.now
            producer_id, item = yield self.queue.get()
            waited = self.env.now - waited_from
            if waited > 0:
                self.ctx.metrics.record_wait(waited)
            if isinstance(item, Batch):
                return self._split_block(producer_id, item)
            row = yield from self._handle(producer_id, item)
            if row is not None:
                return row

    def _split_block(self, producer_id: str, block: Batch) -> Row:
        """Serve one row from a wire block on a per-tuple path.

        The remainder goes back to the queue head, so the per-row get
        cadence — one StoreGet per row served — matches the row wire
        exactly even when a degenerate caller (``max_rows=1``) meets a
        block.
        """
        head, rest = block.split_at(1)
        if len(rest):
            self.queue.put_back([(producer_id, rest)])
        self._handle_block(producer_id, head)
        return head[0]

    def _accept_block(self, producer_id: str, block: Batch,
                      need: int) -> Batch:
        """Absorb up to ``need`` rows of a wire block, re-queueing the
        rest, and return the accepted sub-block."""
        if len(block) > need:
            block, rest = block.split_at(need)
            self.queue.put_back([(producer_id, rest)])
        self._handle_block(producer_id, block)
        return block

    def next_batch(self, max_rows: int) -> typing.Generator:
        if max_rows == 1:
            return (yield from Operator.next_batch(self, max_rows))
        #: Accepted parts in arrival order: wire blocks (column-backed
        #: or row-backed) and individual rows, assembled into one batch
        #: at the end — a single whole block passes through untouched.
        parts: list = []
        count = 0
        while count < max_rows:
            if self.aborted:
                break
            # Synchronous drain: already-queued items are taken without
            # a StoreGet event each.  One entry per take: a block entry
            # can fill the whole morsel by itself.
            taken = self.queue.take(1)
            if taken:
                producer_id, item = taken[0]
                if isinstance(item, Batch):
                    block = self._accept_block(producer_id, item,
                                               max_rows - count)
                    parts.append(block)
                    count += len(block)
                    continue
                if not isinstance(item, Row) and count:
                    # A control item behind data must wait until the
                    # rows have flowed through the subplan: e.g. a
                    # checkpoint ack asserts their outputs are
                    # durable downstream.  Defer it and ship the
                    # partial batch.
                    self.queue.put_back(taken)
                    break
                row = yield from self._handle(producer_id, item)
                if row is not None:
                    parts.append(row)
                    count += 1
                continue
            if count:
                # Don't block while holding rows: ship a partial batch.
                break
            if self.is_complete():
                break
            waited_from = self.env.now
            producer_id, item = yield self.queue.get()
            waited = self.env.now - waited_from
            if waited > 0:
                self.ctx.metrics.record_wait(waited)
            if isinstance(item, Batch):
                block = self._accept_block(producer_id, item,
                                           max_rows - count)
                parts.append(block)
                count += len(block)
            else:
                row = yield from self._handle(producer_id, item)
                if row is not None:
                    parts.append(row)
                    count += 1
        if count:
            return self._assemble(parts)
        return END

    @staticmethod
    def _assemble(parts: list) -> Batch:
        """One batch from accepted rows and blocks, preserving order."""
        if len(parts) == 1 and isinstance(parts[0], Batch):
            return parts[0]
        if all(isinstance(part, Row) for part in parts):
            return Batch(parts)
        return Batch.concat([part if isinstance(part, Batch)
                             else Batch([part]) for part in parts])

    def try_next(self) -> typing.Generator:
        """Non-blocking variant: a Row, or None when the queue is idle."""
        while len(self.queue) > 0:
            producer_id, item = yield self.queue.get()
            if isinstance(item, Batch):
                return self._split_block(producer_id, item)
            row = yield from self._handle(producer_id, item)
            if row is not None:
                return row
        return None

    def _handle(self, producer_id: str, item: typing.Any
                ) -> typing.Generator:
        if item is RECHECK:
            return None
        if isinstance(item, Checkpoint):
            yield from self.ctx.machine.work("ack", self.ctx.cost.ack_work)
            if not self.defer_acks:
                if self.ack_flush_producer is not None:
                    yield from self.ack_flush_producer._flush_all()
                self._send_ack(item)
            return None
        if isinstance(item, Row):
            self.rows_received += 1
            self._queued_rows -= 1
            self._metric_rows_received.inc()
            self.ctx.metrics.record_consumed()
            settled = self._settled.setdefault(producer_id, set())
            settled.add(item.tid)
            return item
        raise ExecutionError(
            f"{self.channel_key}: unexpected queue item {item!r}")

    def _handle_block(self, producer_id: str, block: Batch) -> None:
        """Bulk bookkeeping for an accepted wire block.

        The vectorized counterpart of the ``Row`` arm of
        :meth:`_handle`: one counter update and one settled-set union
        per block instead of per row.  Pure bookkeeping — rows, unlike
        checkpoints, charge no work and schedule no events in either
        wire mode.
        """
        count = len(block)
        self.rows_received += count
        self._queued_rows -= count
        self._metric_rows_received.inc(count)
        self.ctx.metrics.record_consumed(count)
        settled = self._settled.setdefault(producer_id, set())
        settled.update(block.tids())

    def _send_ack(self, marker: Checkpoint) -> None:
        endpoint = self._producer_endpoints.get(marker.producer_id)
        if endpoint is None or self.service is None:
            return
        ack = Acknowledgement(marker.checkpoint_id, marker.producer_id,
                              self.channel_key)
        self.service.send(endpoint, KIND_CONTROL, ack)
        self.acks_sent += 1
