"""Table scan over a Grid Data Service."""

from __future__ import annotations

import typing

from repro.data.batch import Batch
from repro.engine.operators.base import END, EvalContext, Operator
from repro.services.gds import GridDataService


class TableScan(Operator):
    """Sequential scan of a co-located Grid Data Service.

    Each tuple fetch pays the table's OGSA-DAI wrapper cost
    (``gds.access_work_per_tuple``, plus the cost model's generic
    ``scan_work_per_tuple``) on the data host's CPU under the label
    ``scan:<table>``, so scans themselves can be perturbed.
    """

    def __init__(self, ctx: EvalContext, gds: GridDataService) -> None:
        super().__init__(ctx)
        self.gds = gds
        self.table_name = gds.relation.name
        self._cursor = 0

    @property
    def work_label(self) -> str:
        return f"scan:{self.table_name}"

    def open(self) -> typing.Generator:
        self._cursor = 0
        return
        yield  # pragma: no cover - generator form

    def next(self) -> typing.Generator:
        rows = self.gds.read(self._cursor, 1)
        if not rows:
            return END
        self._cursor += 1
        work = (self.gds.access_work_per_tuple
                + self.ctx.cost.scan_work_per_tuple)
        yield from self.ctx.machine.work(self.work_label, work)
        return rows[0]

    def next_batch(self, max_rows: int) -> typing.Generator:
        if max_rows == 1:
            return (yield from Operator.next_batch(self, max_rows))
        if self.ctx.engine_config.columnar:
            # Columnar source: slice the relation's column store so the
            # whole downstream plane stays columnar (same rows/tids as
            # the row read).
            batch = self.gds.read_block(self._cursor, max_rows)
            count = len(batch)
            if count == 0:
                return END
        else:
            rows = self.gds.read(self._cursor, max_rows)
            if not rows:
                return END
            count = len(rows)
            batch = Batch(rows)
        self._cursor += count
        work = (self.gds.access_work_per_tuple
                + self.ctx.cost.scan_work_per_tuple)
        yield from self.ctx.machine.work_batch(
            self.work_label, work, count)
        return batch
