"""Physical operators of the iterator-model engine."""

from repro.engine.operators.base import END, EvalContext, Operator, UnaryOperator
from repro.engine.operators.exchange import (
    ConsumerRef,
    ExchangeConsumer,
    ExchangeProducer,
)
from repro.engine.operators.filters import Project, Select
from repro.engine.operators.hashjoin import HashJoin
from repro.engine.operators.opcall import OperationCall
from repro.engine.operators.scan import TableScan
from repro.engine.operators.sink import ResultSink

__all__ = [
    "ConsumerRef",
    "END",
    "EvalContext",
    "ExchangeConsumer",
    "ExchangeProducer",
    "HashJoin",
    "Operator",
    "OperationCall",
    "Project",
    "ResultSink",
    "Select",
    "TableScan",
    "UnaryOperator",
]
