"""Partitioned hash join with repartitionable state.

The build side is drained into an in-memory hash table during
``open``; probing is pipelined.  The join participates in
retrospective (R1) state repartitioning:

* :meth:`insert_build` adds late build tuples that were moved *to*
  this instance (replayed from a producer's recovery log);
* :meth:`remove_build` drops the state of buckets moved *away*.

During the probe phase the join drains any newly arrived build tuples
from its build consumer before each probe step, so replays take effect
immediately.  Exactly-once results are guaranteed by sink-side
deduplication of the composed (probe tid, build tid) provenance.
"""

from __future__ import annotations

import typing

from repro.data.batch import Batch
from repro.data.tuples import Row, Tid
from repro.engine.operators.base import END, EvalContext, Operator

#: Work labels, used by perturbations (the paper's Q2 inserts a
#: sleep() "before the processing of each tuple by the join").
LABEL_BUILD = "join-build"
LABEL_PROBE = "join-probe"


class HashJoin(Operator):
    """Blocking-build, pipelined-probe equi-join."""

    def __init__(self, ctx: EvalContext, build_child: Operator,
                 probe_child: Operator, build_key_position: int,
                 probe_key_position: int) -> None:
        super().__init__(ctx)
        self.build_child = build_child
        self.probe_child = probe_child
        self.build_key_position = build_key_position
        self.probe_key_position = probe_key_position
        self._table: dict[typing.Any, list[Row]] = {}
        self._key_of_tid: dict[Tid, typing.Any] = {}
        self._pending: list[Row] = []
        self.build_count = 0
        self.probe_count = 0

    # -- state management (R1 support) ------------------------------------

    @property
    def state_size(self) -> int:
        """Number of build tuples currently held as state."""
        return len(self._key_of_tid)

    def insert_build_row(self, row: Row) -> None:
        """Add one build tuple to the hash table (idempotent by tid)."""
        if row.tid in self._key_of_tid:
            return
        key = row.values[self.build_key_position]
        self._table.setdefault(key, []).append(row)
        self._key_of_tid[row.tid] = key
        self.build_count += 1

    def remove_build(self, tids: typing.AbstractSet[Tid]) -> int:
        """Drop build tuples whose provenance is in ``tids``."""
        removed = 0
        for tid in tids:
            key = self._key_of_tid.pop(tid, None)
            if key is None:
                continue
            bucket = self._table.get(key, [])
            self._table[key] = [r for r in bucket if r.tid != tid]
            if not self._table[key]:
                del self._table[key]
            removed += 1
        return removed

    # -- evaluation --------------------------------------------------------

    def open(self) -> typing.Generator:
        yield from self.build_child.open()
        yield from self.probe_child.open()
        # Blocking build phase: drain the build channel completely
        # before probing, so every probe sees the full (local) state.
        # At batch_size 1 next_batch/work_batch degrade to exactly the
        # per-tuple next/work calls.
        max_rows = self.ctx.engine_config.batch_size
        while True:
            batch = yield from self.build_child.next_batch(max_rows)
            if batch is END:
                break
            yield from self.ctx.machine.work_batch(
                LABEL_BUILD, self.ctx.cost.join_build_work, len(batch))
            for row in batch:
                self.insert_build_row(row)

    def _drain_late_build(self) -> typing.Generator:
        """Absorb build tuples replayed after the build phase ended."""
        while True:
            row = yield from self.build_child.try_next()
            if row is None or row is END:
                return
            yield from self.ctx.machine.work(
                LABEL_BUILD, self.ctx.cost.join_build_work)
            self.insert_build_row(row)

    def next(self) -> typing.Generator:
        while True:
            if self._pending:
                return self._pending.pop(0)
            yield from self._drain_late_build()
            probe_row = yield from self.probe_child.next()
            if probe_row is END:
                return END
            yield from self.ctx.machine.work(
                LABEL_PROBE, self.ctx.cost.join_probe_work)
            self.probe_count += 1
            key = probe_row.values[self.probe_key_position]
            for build_row in self._table.get(key, []):
                self._pending.append(
                    probe_row.extend(build_row.values, build_row.tid))

    def next_batch(self, max_rows: int) -> typing.Generator:
        if max_rows == 1:
            return (yield from Operator.next_batch(self, max_rows))
        while True:
            if self._pending:
                # Ship held matches before pumping more input: the probe
                # channel may acknowledge a checkpoint while being
                # pumped, which asserts these outputs reached the next
                # stage already.
                take = min(max_rows, len(self._pending))
                out = self._pending[:take]
                del self._pending[:take]
                return Batch(out)
            yield from self._drain_late_build()
            probe = yield from self.probe_child.next_batch(max_rows)
            if probe is END:
                return END
            yield from self.ctx.machine.work_batch(
                LABEL_PROBE, self.ctx.cost.join_probe_work, len(probe))
            self.probe_count += len(probe)
            # Re-drain before matching: fetching and working the probe
            # batch takes simulated time, during which a retrospective
            # move may have replayed build tuples these probes must see
            # (they were enqueued before the probes were sent).
            yield from self._drain_late_build()
            for probe_row in probe:
                key = probe_row.values[self.probe_key_position]
                for build_row in self._table.get(key, []):
                    self._pending.append(
                        probe_row.extend(build_row.values, build_row.tid))

    def close(self) -> typing.Generator:
        yield from self.build_child.close()
        yield from self.probe_child.close()
        self._table.clear()
        self._key_of_tid.clear()
        self._pending.clear()
