"""Partitioned hash join with repartitionable state.

The build side is drained into an in-memory hash table during
``open``; probing is pipelined.  The join participates in
retrospective (R1) state repartitioning:

* :meth:`insert_build` adds late build tuples that were moved *to*
  this instance (replayed from a producer's recovery log);
* :meth:`remove_build` drops the state of buckets moved *away*.

During the probe phase the join drains any newly arrived build tuples
from its build consumer before each probe step, so replays take effect
immediately.  Exactly-once results are guaranteed by sink-side
deduplication of the composed (probe tid, build tid) provenance.

Held matches (``_pending``) are a FIFO: a probe tuple with a large
match fan-out produces many outputs that drain across several
``next``/``next_batch`` calls.  The queue is a ``collections.deque``
(plus, on the columnar plane, a column-backed block with a cursor) —
draining a list with ``pop(0)`` made skewed keys O(n²) in the
fan-out.
"""

from __future__ import annotations

import collections
import typing

from repro.data.batch import Batch
from repro.data.tuples import Row, Tid
from repro.engine.operators.base import END, EvalContext, Operator

#: Work labels, used by perturbations (the paper's Q2 inserts a
#: sleep() "before the processing of each tuple by the join").
LABEL_BUILD = "join-build"
LABEL_PROBE = "join-probe"


class HashJoin(Operator):
    """Blocking-build, pipelined-probe equi-join."""

    def __init__(self, ctx: EvalContext, build_child: Operator,
                 probe_child: Operator, build_key_position: int,
                 probe_key_position: int) -> None:
        super().__init__(ctx)
        self.build_child = build_child
        self.probe_child = probe_child
        self.build_key_position = build_key_position
        self.probe_key_position = probe_key_position
        self._table: dict[typing.Any, list[Row]] = {}
        self._key_of_tid: dict[Tid, typing.Any] = {}
        self._pending: collections.deque[Row] = collections.deque()
        # Column-backed held matches (columnar plane only).  At most
        # one of ``_pending`` / ``_pending_block`` is non-empty at any
        # time: matches are only produced when both are drained, so
        # output order is preserved across mixed next/next_batch calls.
        self._pending_block: Batch | None = None
        self.build_count = 0
        self.probe_count = 0

    # -- state management (R1 support) ------------------------------------

    @property
    def state_size(self) -> int:
        """Number of build tuples currently held as state."""
        return len(self._key_of_tid)

    def insert_build_row(self, row: Row) -> None:
        """Add one build tuple to the hash table (idempotent by tid)."""
        if row.tid in self._key_of_tid:
            return
        key = row.values[self.build_key_position]
        self._table.setdefault(key, []).append(row)
        self._key_of_tid[row.tid] = key
        self.build_count += 1

    def remove_build(self, tids: typing.AbstractSet[Tid]) -> int:
        """Drop build tuples whose provenance is in ``tids``."""
        removed = 0
        for tid in tids:
            key = self._key_of_tid.pop(tid, None)
            if key is None:
                continue
            bucket = self._table.get(key, [])
            self._table[key] = [r for r in bucket if r.tid != tid]
            if not self._table[key]:
                del self._table[key]
            removed += 1
        return removed

    # -- evaluation --------------------------------------------------------

    def open(self) -> typing.Generator:
        yield from self.build_child.open()
        yield from self.probe_child.open()
        # Blocking build phase: drain the build channel completely
        # before probing, so every probe sees the full (local) state.
        # At batch_size 1 next_batch/work_batch degrade to exactly the
        # per-tuple next/work calls.
        max_rows = self.ctx.engine_config.batch_size
        while True:
            batch = yield from self.build_child.next_batch(max_rows)
            if batch is END:
                break
            yield from self.ctx.machine.work_batch(
                LABEL_BUILD, self.ctx.cost.join_build_work, len(batch))
            self._insert_build_batch(batch)

    def _insert_build_batch(self, batch: Batch) -> None:
        """Bulk tid-idempotent insert (build-key grouping, hoisted)."""
        key_of_tid = self._key_of_tid
        table_setdefault = self._table.setdefault
        key_position = self.build_key_position
        inserted = 0
        for row in batch.rows:
            tid = row.tid
            if tid in key_of_tid:
                continue
            key = row.values[key_position]
            table_setdefault(key, []).append(row)
            key_of_tid[tid] = key
            inserted += 1
        self.build_count += inserted

    def _drain_late_build(self) -> typing.Generator:
        """Absorb build tuples replayed after the build phase ended."""
        while True:
            row = yield from self.build_child.try_next()
            if row is None or row is END:
                return
            yield from self.ctx.machine.work(
                LABEL_BUILD, self.ctx.cost.join_build_work)
            self.insert_build_row(row)

    def next(self) -> typing.Generator:
        while True:
            if self._pending:
                return self._pending.popleft()
            if self._pending_block is not None:
                head, rest = self._pending_block.split_at(1)
                self._pending_block = rest if len(rest) else None
                return head[0]
            yield from self._drain_late_build()
            probe_row = yield from self.probe_child.next()
            if probe_row is END:
                return END
            yield from self.ctx.machine.work(
                LABEL_PROBE, self.ctx.cost.join_probe_work)
            self.probe_count += 1
            key = probe_row.values[self.probe_key_position]
            for build_row in self._table.get(key, []):
                self._pending.append(
                    probe_row.extend(build_row.values, build_row.tid))

    def next_batch(self, max_rows: int) -> typing.Generator:
        if max_rows == 1:
            return (yield from Operator.next_batch(self, max_rows))
        columnar = self.ctx.engine_config.columnar
        while True:
            if self._pending:
                # Ship held matches before pumping more input: the probe
                # channel may acknowledge a checkpoint while being
                # pumped, which asserts these outputs reached the next
                # stage already.
                take = min(max_rows, len(self._pending))
                pending = self._pending
                return Batch([pending.popleft() for _ in range(take)])
            if self._pending_block is not None:
                block = self._pending_block
                if len(block) <= max_rows:
                    self._pending_block = None
                    return block
                head, rest = block.split_at(max_rows)
                self._pending_block = rest
                return head
            yield from self._drain_late_build()
            probe = yield from self.probe_child.next_batch(max_rows)
            if probe is END:
                return END
            yield from self.ctx.machine.work_batch(
                LABEL_PROBE, self.ctx.cost.join_probe_work, len(probe))
            self.probe_count += len(probe)
            # Re-drain before matching: fetching and working the probe
            # batch takes simulated time, during which a retrospective
            # move may have replayed build tuples these probes must see
            # (they were enqueued before the probes were sent).
            yield from self._drain_late_build()
            if columnar:
                self._match_columnar(probe)
            else:
                key_position = self.probe_key_position
                table_get = self._table.get
                pending_append = self._pending.append
                for probe_row in probe:
                    key = probe_row.values[key_position]
                    for build_row in table_get(key, ()):
                        pending_append(probe_row.extend(
                            build_row.values, build_row.tid))

    def _match_columnar(self, probe: Batch) -> None:
        """Vectorized probe: matches land in a column-backed block.

        Each output row is (probe values ++ build values) with the
        composed ``(probe_tid, build_tid)`` provenance — the exact
        content of ``Row.extend`` — but built as column appends, so no
        intermediate ``Row`` is allocated per match.
        """
        key_position = self.probe_key_position
        table_get = self._table.get
        columns: list[list] | None = None
        tids: list[Tid] = []
        probe_width = probe.width
        for probe_row in probe:
            key = probe_row.values[key_position]
            bucket = table_get(key)
            if not bucket:
                continue
            probe_values = probe_row.values
            probe_tid = probe_row.tid
            for build_row in bucket:
                if columns is None:
                    columns = [[] for _ in range(
                        probe_width + len(build_row.values))]
                for position, value in enumerate(probe_values):
                    columns[position].append(value)
                for position, value in enumerate(build_row.values,
                                                 probe_width):
                    columns[position].append(value)
                tids.append((probe_tid, build_row.tid))
        if tids:
            self._pending_block = Batch.from_columns(columns, tids)

    def close(self) -> typing.Generator:
        yield from self.build_child.close()
        yield from self.probe_child.close()
        self._table.clear()
        self._key_of_tid.clear()
        self._pending.clear()
        self._pending_block = None
