"""Subplan fragments and their evaluator processes.

A :class:`Fragment` is one deployed instance of a subplan on one
machine: an operator tree rooted at an exchange producer (or the
result sink), zero or more exchange-consumer leaves, and the metrics
object shared by them.  Its :meth:`run` generator is the evaluator
"thread": it pumps the root iterator, emits M1 monitoring events, and
handles end-of-stream including reopening when retrospective
repartitioning replays tuples after a channel had completed.
"""

from __future__ import annotations

import typing

from repro.core.notifications import M1Event
from repro.engine.operators.base import END, EvalContext, Operator
from repro.engine.operators.exchange import ExchangeConsumer, ExchangeProducer
from repro.engine.operators.hashjoin import HashJoin
from repro.sim.events import Event


class Fragment:
    """One subplan instance bound to a machine."""

    def __init__(self, ctx: EvalContext, subplan_id: str,
                 instance_index: int, root: Operator,
                 consumers: typing.Mapping[str, ExchangeConsumer],
                 producers: typing.Sequence[ExchangeProducer],
                 state_operators: typing.Mapping[str, HashJoin] | None = None,
                 m1_interval: int = 0) -> None:
        self.ctx = ctx
        self.env = ctx.env
        self.subplan_id = subplan_id
        self.instance_index = instance_index
        self.instance_id = f"{subplan_id}:{instance_index}"
        self.root = root
        #: channel_key -> consumer leaf.
        self.consumers = dict(consumers)
        self.producers = list(producers)
        #: channel_key -> stateful operator whose state that channel built.
        self.state_operators = dict(state_operators or {})
        self.m1_interval = m1_interval
        if isinstance(root, ExchangeProducer):
            # Acks assert durability of downstream results: consumers
            # flush the subplan's output before acknowledging.
            for consumer in self.consumers.values():
                consumer.ack_flush_producer = root
        self.reactivated: Event = ctx.env.event()
        self.completed = False
        #: Set when the hosting machine crashes: the evaluator stops
        #: abruptly, without flushing or announcing anything.
        self.halted = False
        self._produced_since_m1 = 0
        self.m1_events_emitted = 0

    # -- wiring ------------------------------------------------------------

    def attach_service(self, service) -> None:
        """Give exchange halves their hosting service for sends/acks."""
        for producer in self.producers:
            producer.service = service
        for consumer in self.consumers.values():
            consumer.service = service

    def wake(self) -> None:
        """Signal the evaluator that new input or control arrived."""
        if not self.reactivated.triggered:
            self.reactivated.succeed(None)

    def discard_state(self, channel_key: str,
                      tids: typing.AbstractSet) -> int:
        """Remove operator state built from retracted tuples."""
        operator = self.state_operators.get(channel_key)
        if operator is None:
            return 0
        return operator.remove_build(tids)

    # -- the evaluator "thread" ----------------------------------------------

    def run(self, query_complete: Event) -> typing.Generator:
        yield from self.root.open()
        # Opening may block for a long time (a hash join's build phase
        # drains its whole build channel); discard whatever accumulated
        # so the first M1 batch only measures steady-state processing.
        self.ctx.metrics.drain_batch()
        # The evaluator pumps morsels; at batch_size 1 every operator's
        # next_batch degrades to exactly one per-tuple next() call.
        batch_size = self.ctx.engine_config.batch_size
        if self.ctx.monitor is not None and self.m1_interval > 0:
            # The monitoring cadence bounds the morsel: a morsel larger
            # than m1_interval would hold back M1 events until the whole
            # morsel's work is done, delaying perturbation detection by
            # up to batch_size/m1_interval times the per-tuple schedule.
            batch_size = max(1, min(batch_size, self.m1_interval))
        while not self.halted:
            iteration_start = self.env.now
            item = yield from self.root.next_batch(batch_size)
            if self.halted:
                break
            if item is not END:
                produced = len(item)
                self.ctx.metrics.record_iteration(
                    self.env.now - iteration_start, produced)
                yield from self._maybe_emit_m1(produced)
                continue
            self.ctx.metrics.record_iteration(
                self.env.now - iteration_start, 0)
            # Re-arm before announcing so no wake-up is lost between
            # the END decision and the wait below.
            self.reactivated = self.env.event()
            yield from self.root.finish()
            if query_complete.triggered:
                break
            if any(len(consumer.queue) > 0
                   for consumer in self.consumers.values()):
                continue
            winner, _value = yield self.env.any_of(
                [query_complete, self.reactivated])
            if winner is query_complete:
                break
        if not self.halted:
            yield from self.root.close()
        self.completed = True

    def _maybe_emit_m1(self, produced: int = 1) -> typing.Generator:
        """Emit the M1 events a morsel of ``produced`` tuples is due.

        A batch may cross several ``m1_interval`` boundaries; each
        boundary contributes one M1 event (so the detector sees exactly
        as many raw events as the per-tuple pipeline would), all
        carrying the batch's aggregate per-tuple cost.
        """
        monitor = self.ctx.monitor
        if monitor is None or self.m1_interval <= 0:
            return
        self._produced_since_m1 += produced
        if self._produced_since_m1 < self.m1_interval:
            return
        emissions = self._produced_since_m1 // self.m1_interval
        self._produced_since_m1 -= emissions * self.m1_interval
        cost_per_tuple, avg_wait, window_produced = (
            self.ctx.metrics.drain_batch())
        if window_produced == 0:
            return
        yield from self.ctx.machine.work_batch(
            "monitor", self.ctx.cost.monitor_event_work, emissions)
        event = M1Event(
            instance_id=self.instance_id,
            subplan_id=self.subplan_id,
            machine_name=self.ctx.machine.name,
            cost_per_tuple_ms=cost_per_tuple,
            avg_wait_ms=avg_wait,
            selectivity=self.ctx.metrics.selectivity,
            produced_total=self.ctx.metrics.produced,
            timestamp=self.env.now)
        submit_batch = getattr(monitor, "submit_m1_batch", None)
        if emissions > 1 and submit_batch is not None:
            submit_batch(event, emissions)
        else:
            for _ in range(emissions):
                monitor.submit_m1(event)
        self.m1_events_emitted += emissions
