"""Engine-level control message payloads.

These travel as ``KIND_CONTROL`` messages between GQES services, on
the same FIFO links as data buffers — an ordering the protocols rely
on (a discard sent after a data buffer is observed after it).
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass
class DataBuffer:
    """Payload of a ``KIND_DATA`` message: a buffer of stream items.

    ``items`` holds data rows interleaved with checkpoint markers, in
    channel order.
    """

    channel_key: str
    producer_id: str
    items: list
    tuple_count: int


@dataclasses.dataclass(frozen=True)
class DiscardTuples:
    """Retract tuples previously sent on a channel (retrospective move).

    The consumer drops matching tuples from its incoming queue and from
    any operator state built from them.
    """

    channel_key: str
    producer_id: str
    tids: frozenset


@dataclasses.dataclass(frozen=True)
class ChannelAnnouncement:
    """End-of-stream announcement carrying the channel's full tid set.

    The consumer's channel is complete once every announced tid is
    settled (processed or discarded).  Revisions (higher ``revision``)
    replace earlier announcements after retrospective repartitioning.
    """

    channel_key: str
    producer_id: str
    sent_tids: frozenset
    revision: int


@dataclasses.dataclass(frozen=True)
class DistributionUpdate:
    """Responder -> producer: install a new workload vector.

    ``bucket_map`` accompanies hash-partitioned subplans so that every
    producer feeding the same consumer group installs an identical
    mapping.  ``retrospective`` selects R1 (redistribute recovery logs)
    over R2 (prospective only).
    """

    subplan_id: str
    weights: tuple
    bucket_map: tuple | None
    retrospective: bool
    epoch: int


@dataclasses.dataclass(frozen=True)
class ResetProducer:
    """Forget a producer's announcement on a channel (failure recovery).

    Sent by the GDQS when an evaluator is re-created after a failure:
    the replacement re-sends and re-announces under the same producer
    id, and its fresh revision numbering must win.  Settled tids are
    kept — re-deliveries of already-seen tuples stay deduplicated.
    """

    channel_key: str
    producer_id: str


@dataclasses.dataclass(frozen=True)
class QueryComplete:
    """GDQS -> all GQESs: the query finished; tear down."""

    query_id: str


@dataclasses.dataclass(frozen=True)
class ProgressReport:
    """Reply to the Responder's progress estimation request ([7])."""

    producer_id: str
    tuples_sent: int
    estimated_total: int

    @property
    def fraction_sent(self) -> float:
        if self.estimated_total <= 0:
            return 1.0
        return min(1.0, self.tuples_sent / self.estimated_total)


#: Sentinel injected into consumer queues to force a completion
#: re-check (after announcements, discards or query completion).
class Recheck:
    """Queue sentinel: re-evaluate channel completion."""

    _instance: typing.ClassVar["Recheck | None"] = None

    def __new__(cls) -> "Recheck":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance


RECHECK = Recheck()
