"""Self-monitoring counters for subplan evaluation.

Implements the measurement side of the paper's self-monitoring
operators [10]: per-instance tallies of tuples consumed/produced,
thread idle (wait) time, and processing time, plus the per-batch
accumulators from which exchange producers derive M1 events every
``m1_interval`` produced tuples.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class SubplanMetrics:
    """Counters for one subplan instance (one evaluator thread)."""

    instance_id: str
    consumed: int = 0
    produced: int = 0
    wait_ms_total: float = 0.0
    elapsed_ms_total: float = 0.0
    # Accumulators since the last M1 emission.
    batch_consumed: int = 0
    batch_produced: int = 0
    batch_wait_ms: float = 0.0
    batch_elapsed_ms: float = 0.0

    def record_wait(self, wait_ms: float) -> None:
        """A leaf operator waited ``wait_ms`` for input."""
        self.wait_ms_total += wait_ms
        self.batch_wait_ms += wait_ms

    def record_consumed(self, count: int = 1) -> None:
        self.consumed += count
        self.batch_consumed += count

    def record_iteration(self, elapsed_ms: float, produced: int) -> None:
        """One pump iteration took ``elapsed_ms`` and produced tuples."""
        self.elapsed_ms_total += elapsed_ms
        self.batch_elapsed_ms += elapsed_ms
        self.produced += produced
        self.batch_produced += produced

    @property
    def selectivity(self) -> float:
        """Output/input ratio so far (1.0 before any input)."""
        if self.consumed == 0:
            return 1.0
        return self.produced / self.consumed

    def drain_batch(self) -> tuple[float, float, int]:
        """Return and reset (cost_per_tuple, avg_wait, batch_produced).

        ``cost_per_tuple`` is processing time — elapsed minus wait — per
        produced tuple over the batch, matching M1's "cost of processing
        an incoming tuple" with the idle time reported separately.
        """
        produced = self.batch_produced
        wait = self.batch_wait_ms
        processing = max(0.0, self.batch_elapsed_ms - wait)
        self.batch_consumed = 0
        self.batch_produced = 0
        self.batch_wait_ms = 0.0
        self.batch_elapsed_ms = 0.0
        if produced == 0:
            return 0.0, 0.0, 0
        return processing / produced, wait / produced, produced
