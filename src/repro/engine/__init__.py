"""Query execution engine: operators, distribution, evaluator."""

from repro.engine.control import (
    ChannelAnnouncement,
    DataBuffer,
    DiscardTuples,
    DistributionUpdate,
    ProgressReport,
    QueryComplete,
    RECHECK,
)
from repro.engine.distribution import (
    DistributionPolicy,
    HashBucketPolicy,
    WeightedRoundRobin,
    assign_buckets,
    inverse_cost_weights,
    max_relative_change,
    normalise_weights,
    rebalance_buckets,
    rebalance_outstanding,
    stable_hash,
)
from repro.engine.evaluator import Fragment
from repro.engine.metrics import SubplanMetrics

__all__ = [
    "ChannelAnnouncement",
    "DataBuffer",
    "DiscardTuples",
    "DistributionPolicy",
    "DistributionUpdate",
    "Fragment",
    "HashBucketPolicy",
    "ProgressReport",
    "QueryComplete",
    "RECHECK",
    "SubplanMetrics",
    "WeightedRoundRobin",
    "assign_buckets",
    "inverse_cost_weights",
    "max_relative_change",
    "normalise_weights",
    "rebalance_buckets",
    "rebalance_outstanding",
    "stable_hash",
]
