"""Seed-reproducible chaos injection and the defenses against it."""

from repro.chaos.config import (ChaosConfig, FaultSchedule, LinkFault,
                                MachineCrash, MachineFreeze, RetryPolicy,
                                ServiceFault)
from repro.chaos.injector import ChaosInjector, MessageFault

__all__ = [
    "ChaosConfig",
    "ChaosInjector",
    "FaultSchedule",
    "LinkFault",
    "MachineCrash",
    "MachineFreeze",
    "MessageFault",
    "RetryPolicy",
    "ServiceFault",
]
