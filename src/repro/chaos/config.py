"""Chaos configuration: fault schedules and retry policies.

A :class:`ChaosConfig` describes, declaratively and reproducibly, the
transient misbehaviour a run should suffer — lossy or laggy links,
bounded machine stalls, flaky Web Service calls — together with the
retry policies the defensive layers use against it.  Everything is a
frozen dataclass so a schedule can be shared between the two runs of a
determinism test without risk of mutation.

Two invariants are enforced here rather than discovered at runtime:

* ``control`` messages are never droppable.  The engine's recovery
  protocol treats checkpoint acknowledgements, announcements and
  discards as idempotent-but-mandatory; dropping one (rather than
  delaying or duplicating it) could leave a consumer waiting forever.
* the data-plane retry policies (``send_retry``, ``ws_retry``) are
  unbounded.  A bounded data retry that exhausts its attempts silently
  loses tuples, turning a *transient* fault into silent data loss; the
  capped backoff already bounds the retry *rate*.  Only the
  control-plane ``call_retry`` may give up: its callers (Responder,
  GDQS) already handle :class:`~repro.errors.ServiceError` gracefully.
"""

from __future__ import annotations

import dataclasses
import math
import random
import typing

from repro.errors import ConfigurationError

#: Message kinds a link fault may affect.  ``control`` is deliberately
#: absent from the default (and rejected for drops, see above).
DEFAULT_FAULT_KINDS = ("data", "notify", "request", "response")


def _check_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1]: {value}")


@dataclasses.dataclass(frozen=True)
class LinkFault:
    """A fault rule for messages crossing machine-to-machine links.

    ``src``/``dst`` name machines (``"*"`` matches any); the rule
    applies to remote messages whose link endpoints match, whose kind
    is in ``kinds``, and whose send time falls in ``[start_ms,
    end_ms)``.  Each matching message independently draws whether it
    is dropped (transferred but never delivered, as a sender on a LAN
    observes), duplicated (a second copy re-occupies the link FIFO
    behind the first, like a retransmitted datagram), or delayed
    (``delay_ms`` of extra link occupancy, modelling congestion —
    FIFO order is preserved, which the recovery protocol relies on).
    """

    src: str = "*"
    dst: str = "*"
    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    delay_probability: float = 0.0
    delay_ms: float = 0.0
    kinds: tuple = DEFAULT_FAULT_KINDS
    start_ms: float = 0.0
    end_ms: float = math.inf

    def __post_init__(self) -> None:
        _check_probability("drop_probability", self.drop_probability)
        _check_probability("duplicate_probability",
                           self.duplicate_probability)
        _check_probability("delay_probability", self.delay_probability)
        if self.delay_ms < 0:
            raise ConfigurationError(
                f"delay_ms must be non-negative: {self.delay_ms}")
        if self.drop_probability > 0 and "control" in self.kinds:
            raise ConfigurationError(
                "control messages are not droppable: the recovery "
                "protocol requires their eventual delivery (delaying "
                "or duplicating them is fine)")
        if self.start_ms < 0 or self.end_ms <= self.start_ms:
            raise ConfigurationError(
                f"fault window must satisfy 0 <= start < end: "
                f"[{self.start_ms}, {self.end_ms})")

    def matches(self, src_machine: str, dst_machine: str, kind: str,
                now: float) -> bool:
        return (kind in self.kinds
                and self.src in ("*", src_machine)
                and self.dst in ("*", dst_machine)
                and self.start_ms <= now < self.end_ms)


@dataclasses.dataclass(frozen=True)
class MachineFreeze:
    """A bounded stall of one machine (transient, unlike a crash).

    From ``at_ms`` for ``duration_ms``, the machine's CPU serves no
    new task and its services neither dispatch incoming messages nor
    transmit outgoing ones (outgoing messages are held and flushed at
    thaw, as a paused host's socket buffers would be).  Heartbeats
    therefore go silent for the window — which is exactly what drives
    the GDQS's suspect/quarantine path.
    """

    machine: str
    at_ms: float
    duration_ms: float

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ConfigurationError(
                f"freeze at_ms must be non-negative: {self.at_ms}")
        if self.duration_ms <= 0:
            raise ConfigurationError(
                f"freeze duration must be positive: {self.duration_ms}")


@dataclasses.dataclass(frozen=True)
class MachineCrash:
    """A permanent fail-stop of one machine (terminal, unlike a freeze).

    At ``at_ms`` every service hosted on the machine crashes, the CPU
    gate closes forever (queued and future work never serves), and
    heartbeats never resume — so the GDQS's failure detector declares
    the machine dead and either recovers its evaluators elsewhere or
    fails the query with a typed outcome.  Like every other fault the
    crash is part of the seeded schedule: the same seed and schedule
    replay the same crash bit-for-bit.
    """

    machine: str
    at_ms: float

    def __post_init__(self) -> None:
        if self.at_ms < 0:
            raise ConfigurationError(
                f"crash at_ms must be non-negative: {self.at_ms}")


@dataclasses.dataclass(frozen=True)
class ServiceFault:
    """Transient Web Service failures for matching operations.

    Each invocation of a matching operation inside ``[start_ms,
    end_ms)`` independently fails with ``failure_probability``; the
    operation-call operator retries (re-paying the call's work after a
    backoff) until an attempt succeeds.
    """

    operation: str = "*"
    failure_probability: float = 0.0
    start_ms: float = 0.0
    end_ms: float = math.inf

    def __post_init__(self) -> None:
        _check_probability("failure_probability", self.failure_probability)
        if self.start_ms < 0 or self.end_ms <= self.start_ms:
            raise ConfigurationError(
                f"fault window must satisfy 0 <= start < end: "
                f"[{self.start_ms}, {self.end_ms})")

    def matches(self, operation: str, now: float) -> bool:
        return (self.operation in ("*", operation)
                and self.start_ms <= now < self.end_ms)


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """The full set of faults one run injects."""

    link_faults: tuple = ()
    freezes: tuple = ()
    service_faults: tuple = ()
    crashes: tuple = ()

    @property
    def is_empty(self) -> bool:
        return not (self.link_faults or self.freezes
                    or self.service_faults or self.crashes)


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Timeout plus capped exponential backoff with jitter.

    Attempt ``n`` (1-based) that times out after ``timeout_ms`` waits
    ``min(backoff_cap_ms, backoff_base_ms * 2**(n-1))``, scaled by a
    uniform ``1 ± jitter`` factor drawn from the simulation's seeded
    chaos RNG stream, before the next attempt.  ``max_attempts=None``
    retries forever (the data-plane setting).
    """

    timeout_ms: float = 1500.0
    max_attempts: int | None = None
    backoff_base_ms: float = 100.0
    backoff_cap_ms: float = 3000.0
    jitter: float = 0.2

    def __post_init__(self) -> None:
        if self.timeout_ms <= 0:
            raise ConfigurationError(
                f"retry timeout must be positive: {self.timeout_ms}")
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ConfigurationError(
                f"max_attempts must be >= 1 or None: {self.max_attempts}")
        if self.backoff_base_ms < 0 or self.backoff_cap_ms < 0:
            raise ConfigurationError("backoff values must be non-negative")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1): {self.jitter}")

    def backoff_ms(self, attempt: int,
                   rng: random.Random | None = None) -> float:
        """Backoff before the attempt after ``attempt`` failures."""
        if attempt < 1:
            raise ConfigurationError(f"attempt must be >= 1: {attempt}")
        base = min(self.backoff_cap_ms,
                   self.backoff_base_ms * (2.0 ** (attempt - 1)))
        if rng is not None and self.jitter > 0 and base > 0:
            base *= 1.0 + rng.uniform(-self.jitter, self.jitter)
        return base

    def replace(self, **changes) -> "RetryPolicy":
        return dataclasses.replace(self, **changes)


@dataclasses.dataclass(frozen=True)
class ChaosConfig:
    """Master switch, fault schedule and defensive retry policies.

    Disabled (the default), the whole subsystem is inert: no injector
    is installed, no RNG stream is created, no extra event is
    scheduled — the event timeline is bit-identical to a build without
    chaos at all (property-tested, like the metrics layer's zero-cost
    invariant).
    """

    enabled: bool = False
    schedule: FaultSchedule = dataclasses.field(default_factory=FaultSchedule)
    #: Exchange data-buffer sends (unbounded: tuples must not be lost).
    send_retry: RetryPolicy = dataclasses.field(
        default_factory=RetryPolicy)
    #: Control-plane service calls (bounded: callers handle failure).
    call_retry: RetryPolicy = dataclasses.field(
        default_factory=lambda: RetryPolicy(timeout_ms=2000.0,
                                            max_attempts=4))
    #: Web Service invocations (unbounded: a row cannot be abandoned).
    ws_retry: RetryPolicy = dataclasses.field(
        default_factory=lambda: RetryPolicy(backoff_base_ms=20.0,
                                            backoff_cap_ms=500.0))

    def __post_init__(self) -> None:
        if self.send_retry.max_attempts is not None:
            raise ConfigurationError(
                "send_retry must be unbounded (max_attempts=None): "
                "giving up on a data buffer silently loses tuples")
        if self.ws_retry.max_attempts is not None:
            raise ConfigurationError(
                "ws_retry must be unbounded (max_attempts=None): "
                "giving up on a WS call silently drops a row")

    def replace(self, **changes) -> "ChaosConfig":
        return dataclasses.replace(self, **changes)

    # -- convenience constructors (CLI / experiments) -------------------

    @classmethod
    def lossy(cls, drop_probability: float = 0.0,
              duplicate_probability: float = 0.0,
              delay_probability: float = 0.0,
              delay_ms: float = 0.0,
              ws_failure_probability: float = 0.0,
              freezes: typing.Sequence[MachineFreeze] = (),
              crashes: typing.Sequence[MachineCrash] = (),
              **changes) -> "ChaosConfig":
        """An enabled config with one grid-wide fault rule per knob."""
        link_faults = ()
        if drop_probability or duplicate_probability or delay_probability:
            link_faults = (LinkFault(
                drop_probability=drop_probability,
                duplicate_probability=duplicate_probability,
                delay_probability=delay_probability,
                delay_ms=delay_ms),)
        service_faults = ()
        if ws_failure_probability:
            service_faults = (ServiceFault(
                failure_probability=ws_failure_probability),)
        return cls(enabled=True,
                   schedule=FaultSchedule(link_faults=link_faults,
                                          freezes=tuple(freezes),
                                          service_faults=service_faults,
                                          crashes=tuple(crashes)),
                   **changes)
