"""The chaos injector: runtime fault decisions from seeded streams.

One :class:`ChaosInjector` is installed per :class:`~repro.grid
.container.GridContext` (see ``GridContext.install_chaos``).  The
network consults it for every remote message, the operation-call
operator for every WS invocation, and the retry wrappers for their
backoff jitter.  Every probabilistic decision draws from a dedicated
named stream of the context's :class:`~repro.sim.rand.RandomStreams`
(``chaos:link``, ``chaos:ws``, ``chaos:retry``), so

* the same master seed and :class:`~repro.chaos.config.FaultSchedule`
  reproduce the same faults bit-for-bit, and
* installing chaos never perturbs the draws of any pre-existing
  stream (data generation, perturbation noise, ...).

When no injector is installed (``context.chaos is None``) every hook
reduces to one attribute comparison — no events, no draws, no state.
"""

from __future__ import annotations

import typing

from repro.chaos.config import (ChaosConfig, MachineCrash, MachineFreeze,
                                RetryPolicy)

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.grid.container import GridContext


class MessageFault(typing.NamedTuple):
    """The injector's verdict for one remote message."""

    drop: bool
    duplicate: bool
    extra_delay_ms: float


NO_FAULT = MessageFault(False, False, 0.0)


class ChaosInjector:
    """Draws and counts fault decisions for one simulated grid."""

    def __init__(self, config: ChaosConfig,
                 context: "GridContext") -> None:
        self.config = config
        self.context = context
        self.env = context.env
        self._link_rng = context.random.stream("chaos:link")
        self._ws_rng = context.random.stream("chaos:ws")
        self._retry_rng = context.random.stream("chaos:retry")
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self.messages_delayed = 0
        self.extra_delay_ms_total = 0.0
        self.ws_failures_injected = 0
        self.send_retries = 0
        self.call_retries = 0
        self.ws_retries = 0
        self.machines_frozen = 0
        self.machines_crashed = 0
        metrics = context.metrics
        self._metric_dropped = metrics.counter("chaos_messages_dropped")
        self._metric_duplicated = metrics.counter(
            "chaos_messages_duplicated")
        self._metric_delayed = metrics.counter("chaos_messages_delayed")
        self._metric_ws_failures = metrics.counter(
            "chaos_ws_failures_injected")
        self._metric_retries = {
            kind: metrics.counter("chaos_retries", kind=kind)
            for kind in ("send", "call", "ws")}
        self._metric_freezes = metrics.counter("chaos_machines_frozen")
        self._metric_crashes = metrics.counter("chaos_machines_crashed")

    def start(self) -> None:
        """Schedule the deterministic faults (freezes and crashes)."""
        for freeze in self.config.schedule.freezes:
            self.env.process(self._freeze_process(freeze),
                             name=f"chaos:freeze:{freeze.machine}")
        for crash in self.config.schedule.crashes:
            self.env.process(self._crash_process(crash),
                             name=f"chaos:crash:{crash.machine}")

    def _freeze_process(self, freeze: MachineFreeze) -> typing.Generator:
        if freeze.at_ms > self.env.now:
            yield self.env.timeout(freeze.at_ms - self.env.now)
        machine = self.context.registry.machine(freeze.machine)
        frozen_until = machine.freeze(freeze.duration_ms)
        self.machines_frozen += 1
        self._metric_freezes.inc()
        self.context.tracer.record(
            "chaos", "chaos-injector", "machine frozen",
            machine=freeze.machine, duration_ms=freeze.duration_ms,
            until_ms=round(frozen_until, 3))

    def _crash_process(self, crash: MachineCrash) -> typing.Generator:
        if crash.at_ms > self.env.now:
            yield self.env.timeout(crash.at_ms - self.env.now)
        victims = self.context.crash_machine(crash.machine)
        self.machines_crashed += 1
        self._metric_crashes.inc()
        self.context.tracer.record(
            "chaos", "chaos-injector", "machine crashed",
            machine=crash.machine, services_lost=len(victims))

    # -- link faults -----------------------------------------------------

    def message_fault(self, src_machine: str, dst_machine: str,
                      kind: str) -> MessageFault:
        """Fault verdict for one remote message about to transfer.

        Draw order is fixed (drop, duplicate, delay per matching rule
        in schedule order) so a given seed and schedule replay the
        same verdict sequence.  A dropped message is not additionally
        duplicated or delayed.
        """
        now = self.env.now
        drop = duplicate = False
        extra_delay = 0.0
        for fault in self.config.schedule.link_faults:
            if not fault.matches(src_machine, dst_machine, kind, now):
                continue
            if (fault.drop_probability > 0 and not drop
                    and self._link_rng.random() < fault.drop_probability):
                drop = True
            if (fault.duplicate_probability > 0 and not duplicate
                    and self._link_rng.random()
                    < fault.duplicate_probability):
                duplicate = True
            if (fault.delay_probability > 0 and fault.delay_ms > 0
                    and self._link_rng.random() < fault.delay_probability):
                extra_delay += fault.delay_ms
        if drop:
            self.messages_dropped += 1
            self._metric_dropped.inc()
            return MessageFault(True, False, 0.0)
        if duplicate:
            self.messages_duplicated += 1
            self._metric_duplicated.inc()
        if extra_delay > 0:
            self.messages_delayed += 1
            self.extra_delay_ms_total += extra_delay
            self._metric_delayed.inc()
        if duplicate or extra_delay > 0:
            return MessageFault(False, duplicate, extra_delay)
        return NO_FAULT

    # -- web service faults ----------------------------------------------

    def ws_call_fails(self, operation_name: str) -> bool:
        """Whether this WS invocation fails transiently."""
        now = self.env.now
        for fault in self.config.schedule.service_faults:
            if (fault.failure_probability > 0
                    and fault.matches(operation_name, now)
                    and self._ws_rng.random()
                    < fault.failure_probability):
                self.ws_failures_injected += 1
                self._metric_ws_failures.inc()
                return True
        return False

    # -- retry accounting -------------------------------------------------

    def retry_backoff_ms(self, policy: RetryPolicy, attempt: int) -> float:
        """Jittered backoff for the given failed-attempt count."""
        return policy.backoff_ms(attempt, self._retry_rng)

    def count_retry(self, kind: str) -> None:
        """Count one retry of ``kind`` ('send', 'call' or 'ws')."""
        if kind == "send":
            self.send_retries += 1
        elif kind == "call":
            self.call_retries += 1
        elif kind == "ws":
            self.ws_retries += 1
        self._metric_retries[kind].inc()

    def counters(self) -> dict:
        """Snapshot of every chaos counter (for reports and the CLI)."""
        return {
            "messages_dropped": self.messages_dropped,
            "messages_duplicated": self.messages_duplicated,
            "messages_delayed": self.messages_delayed,
            "extra_delay_ms_total": round(self.extra_delay_ms_total, 3),
            "ws_failures_injected": self.ws_failures_injected,
            "send_retries": self.send_retries,
            "call_retries": self.call_retries,
            "ws_retries": self.ws_retries,
            "machines_frozen": self.machines_frozen,
            "machines_crashed": self.machines_crashed,
        }
