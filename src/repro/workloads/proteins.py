"""The demo deployment: the paper's three-machine testbed in simulation.

"Two machines are used for the evaluation of EntropyAnalyser in Q1,
and the join in Q2 ... The data are retrieved from a third machine.
All machines run RedHat Linux 9, are connected by a 100Mbps network,
and are autonomously exposed as Grid resources" (§3.2).

:class:`DemoGrid` builds that world: a data host exposing the two
protein tables as Grid Data Services, N homogeneous compute machines
offering the EntropyAnalyser operation, and a coordinator running the
GDQS.  Cost constants live in :mod:`repro.workloads.scenarios`.
"""

from __future__ import annotations

import collections
import dataclasses

from repro.config import (
    CostModel,
    EngineConfig,
    FaultToleranceConfig,
    SchedulerConfig,
)
from repro.data.generator import (
    INTERACTIONS_CARDINALITY,
    SEQUENCES_CARDINALITY,
    SEQUENCE_LENGTH,
    generate_protein_interactions,
    generate_protein_sequences,
)
from repro.dqp.client import QueryProcessor
from repro.grid.container import GridContext
from repro.grid.perturbation import Perturbation
from repro.net.network import NetworkConfig
from repro.net.serialization import SerializationModel
from repro.services.gds import GridDataService
from repro.services.ws import make_entropy_analyser

#: Machine names of the demo deployment.
COORDINATOR = "coordinator"
DATA_HOST = "data-host"


def compute_machine_name(index: int) -> str:
    return f"compute-{index + 1}"


#: Generated demo relations keyed by the spec fields they depend on.
#: The tables are a pure function of (seed, shape) and are read-only
#: once built (scans slice ``relation.rows``; operators emit fresh
#: Row objects), so identical grids share one copy: regeneration —
#: hundreds of thousands of RNG draws for the default 3000x256
#: sequence table — dominated grid construction in the perf profile.
_DATASET_CACHE: collections.OrderedDict = collections.OrderedDict()
_DATASET_CACHE_LIMIT = 8


def _demo_relations(context, spec: "DemoGridSpec"):
    """The (sequences, interactions) tables for ``spec``, cached.

    The "protein-data" random stream is consumed *only* here, and
    :class:`~repro.sim.rand.RandomStreams` derives every named stream
    independently from the seed, so serving a cached copy (and never
    touching the stream) is indistinguishable from regenerating.
    """
    key = (spec.seed, spec.sequences_cardinality,
           spec.interactions_cardinality, spec.sequence_length)
    cached = _DATASET_CACHE.get(key)
    if cached is not None:
        _DATASET_CACHE.move_to_end(key)
        return cached
    rng = context.random.stream("protein-data")
    sequences = generate_protein_sequences(
        rng, spec.sequences_cardinality, spec.sequence_length)
    interactions = generate_protein_interactions(
        rng, sequences, spec.interactions_cardinality)
    _DATASET_CACHE[key] = (sequences, interactions)
    while len(_DATASET_CACHE) > _DATASET_CACHE_LIMIT:
        _DATASET_CACHE.popitem(last=False)
    return sequences, interactions


@dataclasses.dataclass(frozen=True)
class DemoGridSpec:
    """Shape of the demo deployment."""

    compute_machines: int = 2
    sequences_cardinality: int = SEQUENCES_CARDINALITY
    interactions_cardinality: int = INTERACTIONS_CARDINALITY
    sequence_length: int = SEQUENCE_LENGTH
    seed: int = 0
    #: Per-tuple GDS wrapper costs (OGSA-DAI access path).
    sequences_access_work: float = 6.1
    interactions_access_work: float = 0.8
    ws_base_work_ms: float = 4.6
    #: Standby machines available to failure recovery.
    spare_machines: int = 0
    #: Compute-machine sites for the two-tier scheduler topology.
    #: ``1`` keeps the legacy flat registration (machines land in the
    #: registry's implicit default site); ``k > 1`` splits the compute
    #: pool into k contiguous blocks named ``site-1`` .. ``site-k``.
    sites: int = 1
    #: Register compute machines as lazy specs: a machine is built on
    #: first placement (or fault injection) rather than at grid
    #: construction, so a 1,000-machine fleet costs nothing until
    #: queries actually land on it.  Machine RNG streams are derived
    #: by name, so materialization order cannot change behaviour.
    lazy_machines: bool = False

    def __post_init__(self) -> None:
        if self.sites < 1:
            raise ValueError(f"sites must be >= 1: {self.sites}")


class DemoGrid:
    """A fully wired simulated Grid hosting the protein demo database."""

    def __init__(self, spec: DemoGridSpec | None = None,
                 engine_config: EngineConfig | None = None,
                 cost: CostModel | None = None,
                 network_config: NetworkConfig | None = None,
                 serialization: SerializationModel | None = None,
                 fault_tolerance: FaultToleranceConfig | None = None,
                 metrics_enabled: bool = True,
                 chaos=None) -> None:
        self.spec = spec or DemoGridSpec()
        self.engine_config = engine_config or EngineConfig()
        self.cost = cost or CostModel()
        self.context = GridContext(
            seed=self.spec.seed,
            network_config=network_config,
            serialization=serialization or SerializationModel(),
            metrics_enabled=metrics_enabled)
        self.context.env.fast_path = self.engine_config.kernel_fast_path
        self.context.add_machine(COORDINATOR, compute=False)
        self.context.add_machine(DATA_HOST, compute=False)
        self.compute_machines = [
            compute_machine_name(i)
            for i in range(self.spec.compute_machines)]
        per_site = -(-self.spec.compute_machines // self.spec.sites)
        for i, name in enumerate(self.compute_machines):
            site = (f"site-{i // per_site + 1}"
                    if self.spec.sites > 1 else None)
            self.context.add_machine(name, site=site,
                                     lazy=self.spec.lazy_machines)
        self.spare_machines = [f"spare-{i + 1}"
                               for i in range(self.spec.spare_machines)]
        for name in self.spare_machines:
            self.context.add_machine(name, compute=False, spare=True)

        sequences, interactions = _demo_relations(self.context, self.spec)
        self.gds_map = {
            "protein_sequences": GridDataService(
                self.context, DATA_HOST, sequences,
                access_work_per_tuple=self.spec.sequences_access_work),
            "protein_interactions": GridDataService(
                self.context, DATA_HOST, interactions,
                access_work_per_tuple=self.spec.interactions_access_work),
        }
        entropy = make_entropy_analyser(self.spec.ws_base_work_ms)
        entropy.register(self.context.registry, self.compute_machines)
        self.operations = {entropy.name: entropy}

        self.processor = QueryProcessor(
            self.context, self.gds_map, self.operations, COORDINATOR,
            engine_config=self.engine_config, cost=self.cost,
            fault_tolerance=fault_tolerance)
        # Installed last so fault draws never perturb the data/
        # placement streams above (a disabled config installs nothing).
        self.context.install_chaos(chaos)

    @property
    def chaos(self):
        """The installed chaos injector, or None."""
        return self.context.chaos

    def perturb(self, machine_name: str,
                perturbation: Perturbation) -> None:
        """Attach a perturbation to one machine."""
        self.context.machine(machine_name).add_perturbation(perturbation)

    def fail_machine_at(self, machine_name: str, at_ms: float) -> None:
        """Schedule a crash of every service on ``machine_name``.

        The failure takes effect ``at_ms`` into the simulation: all
        services hosted there (evaluators, detectors) go down and
        their state is lost, exercising the fault-tolerance path.
        """
        def injector(env):
            if at_ms > env.now:
                yield env.timeout(at_ms - env.now)
            self.context.fail_machine(machine_name)

        self.context.env.process(injector(self.context.env),
                                 name=f"failure:{machine_name}")

    def run(self, query_text: str, adaptivity=None, degree=None):
        """Run a query to completion on this grid."""
        return self.processor.run(query_text, adaptivity=adaptivity,
                                  degree=degree)

    def scheduler(self, config: SchedulerConfig | None = None):
        """A multi-query scheduler over this grid's GDQS."""
        from repro.sched import QueryScheduler

        return QueryScheduler(self.processor.gdqs, config)
