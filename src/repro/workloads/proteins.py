"""The demo deployment: the paper's three-machine testbed in simulation.

"Two machines are used for the evaluation of EntropyAnalyser in Q1,
and the join in Q2 ... The data are retrieved from a third machine.
All machines run RedHat Linux 9, are connected by a 100Mbps network,
and are autonomously exposed as Grid resources" (§3.2).

:class:`DemoGrid` builds that world: a data host exposing the two
protein tables as Grid Data Services, N homogeneous compute machines
offering the EntropyAnalyser operation, and a coordinator running the
GDQS.  Cost constants live in :mod:`repro.workloads.scenarios`.
"""

from __future__ import annotations

import dataclasses

from repro.config import (
    CostModel,
    EngineConfig,
    FaultToleranceConfig,
    SchedulerConfig,
)
from repro.data.generator import (
    INTERACTIONS_CARDINALITY,
    SEQUENCES_CARDINALITY,
    SEQUENCE_LENGTH,
    generate_protein_interactions,
    generate_protein_sequences,
)
from repro.dqp.client import QueryProcessor
from repro.grid.container import GridContext
from repro.grid.perturbation import Perturbation
from repro.net.network import NetworkConfig
from repro.net.serialization import SerializationModel
from repro.services.gds import GridDataService
from repro.services.ws import make_entropy_analyser

#: Machine names of the demo deployment.
COORDINATOR = "coordinator"
DATA_HOST = "data-host"


def compute_machine_name(index: int) -> str:
    return f"compute-{index + 1}"


@dataclasses.dataclass(frozen=True)
class DemoGridSpec:
    """Shape of the demo deployment."""

    compute_machines: int = 2
    sequences_cardinality: int = SEQUENCES_CARDINALITY
    interactions_cardinality: int = INTERACTIONS_CARDINALITY
    sequence_length: int = SEQUENCE_LENGTH
    seed: int = 0
    #: Per-tuple GDS wrapper costs (OGSA-DAI access path).
    sequences_access_work: float = 6.1
    interactions_access_work: float = 0.8
    ws_base_work_ms: float = 4.6
    #: Standby machines available to failure recovery.
    spare_machines: int = 0


class DemoGrid:
    """A fully wired simulated Grid hosting the protein demo database."""

    def __init__(self, spec: DemoGridSpec | None = None,
                 engine_config: EngineConfig | None = None,
                 cost: CostModel | None = None,
                 network_config: NetworkConfig | None = None,
                 serialization: SerializationModel | None = None,
                 fault_tolerance: FaultToleranceConfig | None = None,
                 metrics_enabled: bool = True,
                 chaos=None) -> None:
        self.spec = spec or DemoGridSpec()
        self.engine_config = engine_config or EngineConfig()
        self.cost = cost or CostModel()
        self.context = GridContext(
            seed=self.spec.seed,
            network_config=network_config,
            serialization=serialization or SerializationModel(),
            metrics_enabled=metrics_enabled)
        self.context.add_machine(COORDINATOR, compute=False)
        self.context.add_machine(DATA_HOST, compute=False)
        self.compute_machines = [
            compute_machine_name(i)
            for i in range(self.spec.compute_machines)]
        for name in self.compute_machines:
            self.context.add_machine(name)
        self.spare_machines = [f"spare-{i + 1}"
                               for i in range(self.spec.spare_machines)]
        for name in self.spare_machines:
            self.context.add_machine(name, compute=False, spare=True)

        rng = self.context.random.stream("protein-data")
        sequences = generate_protein_sequences(
            rng, self.spec.sequences_cardinality, self.spec.sequence_length)
        interactions = generate_protein_interactions(
            rng, sequences, self.spec.interactions_cardinality)
        self.gds_map = {
            "protein_sequences": GridDataService(
                self.context, DATA_HOST, sequences,
                access_work_per_tuple=self.spec.sequences_access_work),
            "protein_interactions": GridDataService(
                self.context, DATA_HOST, interactions,
                access_work_per_tuple=self.spec.interactions_access_work),
        }
        entropy = make_entropy_analyser(self.spec.ws_base_work_ms)
        entropy.register(self.context.registry, self.compute_machines)
        self.operations = {entropy.name: entropy}

        self.processor = QueryProcessor(
            self.context, self.gds_map, self.operations, COORDINATOR,
            engine_config=self.engine_config, cost=self.cost,
            fault_tolerance=fault_tolerance)
        # Installed last so fault draws never perturb the data/
        # placement streams above (a disabled config installs nothing).
        self.context.install_chaos(chaos)

    @property
    def chaos(self):
        """The installed chaos injector, or None."""
        return self.context.chaos

    def perturb(self, machine_name: str,
                perturbation: Perturbation) -> None:
        """Attach a perturbation to one machine."""
        self.context.machine(machine_name).add_perturbation(perturbation)

    def fail_machine_at(self, machine_name: str, at_ms: float) -> None:
        """Schedule a crash of every service on ``machine_name``.

        The failure takes effect ``at_ms`` into the simulation: all
        services hosted there (evaluators, detectors) go down and
        their state is lost, exercising the fault-tolerance path.
        """
        def injector(env):
            if at_ms > env.now:
                yield env.timeout(at_ms - env.now)
            self.context.fail_machine(machine_name)

        self.context.env.process(injector(self.context.env),
                                 name=f"failure:{machine_name}")

    def run(self, query_text: str, adaptivity=None, degree=None):
        """Run a query to completion on this grid."""
        return self.processor.run(query_text, adaptivity=adaptivity,
                                  degree=degree)

    def scheduler(self, config: SchedulerConfig | None = None):
        """A multi-query scheduler over this grid's GDQS."""
        from repro.sched import QueryScheduler

        return QueryScheduler(self.processor.gdqs, config)
