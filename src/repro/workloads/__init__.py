"""Workloads: the protein demo database, Q1/Q2, and perturbations."""

from repro.workloads.proteins import (
    COORDINATOR,
    DATA_HOST,
    DemoGrid,
    DemoGridSpec,
    compute_machine_name,
)
from repro.workloads.queries import Q1, Q2
from repro.workloads.scenarios import (
    JOIN_LABEL,
    WS_LABEL,
    perturb_join_sleep,
    perturb_machine_load,
    perturb_transient_load,
    perturb_ws_cost,
    perturb_ws_cost_varying,
)

__all__ = [
    "COORDINATOR",
    "DATA_HOST",
    "DemoGrid",
    "DemoGridSpec",
    "JOIN_LABEL",
    "Q1",
    "Q2",
    "WS_LABEL",
    "compute_machine_name",
    "perturb_join_sleep",
    "perturb_machine_load",
    "perturb_transient_load",
    "perturb_ws_cost",
    "perturb_ws_cost_varying",
]
