"""The paper's two evaluation queries (§3.2).

Q1 is computation-intensive (a WS call per tuple) with significant
I/O and communication contribution; Q2 is dominated by a traditional
operator, the partitioned hash join.
"""

#: Q1: entropy analysis of every protein sequence (3000 tuples).
Q1 = "select EntropyAnalyser(p.sequence) from protein_sequences p"

#: Q2: join interactions (4700 tuples) with sequences on ORF.
Q2 = ("select i.ORF2 from protein_sequences p, protein_interactions i "
      "where i.ORF1 = p.ORF")
