"""Perturbation scenarios from the paper's evaluation (§3.2).

The paper creates artificial load in two ways: making one machine's WS
call k times costlier (Q1 experiments) and inserting a sleep() before
each tuple processed by the join (Q2 experiments).  The rapid-change
experiments draw the WS cost factor per tuple from a normal
distribution.  This module builds those perturbations against the demo
grid's machine and operator labels.
"""

from __future__ import annotations

from repro.grid.perturbation import (
    CostFactor,
    SleepInjection,
    StochasticCostFactor,
)
from repro.workloads.proteins import DemoGrid, compute_machine_name

#: Work label of the EntropyAnalyser call (Q1 perturbation target).
WS_LABEL = "ws:EntropyAnalyser"
#: Work label of the join probe step (Q2 perturbation target).
JOIN_LABEL = "join-probe"


def perturb_ws_cost(grid: DemoGrid, factor: float,
                    machines: int = 1) -> None:
    """Make the WS call ``factor`` times costlier on ``machines``
    of the compute pool (the paper's Q1 perturbation)."""
    for index in range(machines):
        grid.perturb(compute_machine_name(index),
                     CostFactor(factor, target=WS_LABEL))


def perturb_join_sleep(grid: DemoGrid, sleep_ms: float,
                       machines: int = 1) -> None:
    """Insert ``sleep(sleep_ms)`` before each join tuple on
    ``machines`` of the compute pool (the paper's Q2 perturbation)."""
    for index in range(machines):
        grid.perturb(compute_machine_name(index),
                     SleepInjection(sleep_ms, target=JOIN_LABEL))


def perturb_ws_cost_varying(grid: DemoGrid, low: float, high: float,
                            machines: int = 1) -> None:
    """Per-tuple normally distributed WS cost factor in ``[low, high]``
    (the paper's rapid-change experiments, Fig. 5)."""
    for index in range(machines):
        grid.perturb(compute_machine_name(index),
                     StochasticCostFactor(low, high, target=WS_LABEL))


def perturb_machine_load(grid: DemoGrid, factor: float,
                         machines: int = 1, start_ms: float = 0.0,
                         end_ms: float = float("inf")) -> None:
    """Machine-wide background load: *all* work on the machine costs
    ``factor`` times more, not just one operator.

    Models a competing Grid job on an autonomous node rather than the
    paper's operator-targeted perturbations.
    """
    for index in range(machines):
        grid.perturb(compute_machine_name(index),
                     CostFactor(factor, target="*", start=start_ms,
                                end=end_ms))


def perturb_transient_load(grid: DemoGrid, factor: float = 2.4,
                           start_ms: float = 6000.0,
                           duration_ms: float = 5000.0,
                           machines: int = 1) -> None:
    """A temporary load spike on otherwise equal machines.

    Models the "slight fluctuations in performance that are inevitable
    in a real wide-area environment" (§3.2): the spike is strong enough
    to trip the 20% thresholds, so the system adapts even though the
    services are nominally identical — the paper's "unnecessary
    adaptivity" scenario.
    """
    for index in range(machines):
        grid.perturb(compute_machine_name(index),
                     CostFactor(factor, target=WS_LABEL, start=start_ms,
                                end=start_ms + duration_ms))
