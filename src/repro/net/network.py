"""The network fabric: endpoints, mailboxes and message routing.

Services register named endpoints bound to a machine.  Sending a
message looks up the (source machine, destination machine) link,
transfers the message and finally deposits it in the destination
endpoint's mailbox, where the owning service's dispatch loop picks it
up.  Local messages (same machine) bypass the link and are delivered
after a small, configurable loopback delay.
"""

from __future__ import annotations

import dataclasses

from repro.errors import NetworkError
from repro.net.link import Link
from repro.net.message import Message
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.stores import Store


@dataclasses.dataclass(frozen=True)
class NetworkConfig:
    """Fabric-wide link parameters.

    Defaults model the paper's testbed: a 100 Mbps switched LAN
    (12 500 bytes/ms) with sub-millisecond latency.
    """

    latency_ms: float = 0.5
    bandwidth_bytes_per_ms: float = 12_500.0
    loopback_delay_ms: float = 0.01


@dataclasses.dataclass
class Endpoint:
    """A named, machine-bound message destination.

    An inactive endpoint models a crashed host whose network stack is
    gone: messages addressed to it are transported and then dropped,
    which is what a sender on a LAN observes (no error, no reply).
    """

    name: str
    machine_name: str
    mailbox: Store
    active: bool = True


class Network:
    """Routes messages between registered endpoints."""

    def __init__(self, env: Environment,
                 config: NetworkConfig | None = None) -> None:
        self.env = env
        self.config = config or NetworkConfig()
        self._endpoints: dict[str, Endpoint] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self.messages_delivered = 0
        self.messages_dropped = 0
        self.bytes_delivered = 0
        # Chaos injector hook; None means no fault injection at all.
        self.chaos = None

    # -- registration ---------------------------------------------------

    def register(self, endpoint_name: str, machine_name: str) -> Store:
        """Create an endpoint on ``machine_name``; returns its mailbox."""
        if endpoint_name in self._endpoints:
            raise NetworkError(f"endpoint already registered: {endpoint_name}")
        mailbox = Store(self.env)
        self._endpoints[endpoint_name] = Endpoint(
            endpoint_name, machine_name, mailbox)
        return mailbox

    def unregister(self, endpoint_name: str) -> None:
        """Remove an endpoint (e.g. when a service shuts down)."""
        self._endpoints.pop(endpoint_name, None)

    def deactivate(self, endpoint_name: str) -> None:
        """Mark an endpoint crashed: future messages are blackholed."""
        endpoint = self._endpoints.get(endpoint_name)
        if endpoint is not None:
            endpoint.active = False

    def endpoint(self, name: str) -> Endpoint:
        try:
            return self._endpoints[name]
        except KeyError:
            raise NetworkError(f"unknown endpoint: {name}") from None

    def machine_of(self, endpoint_name: str) -> str:
        """Machine hosting ``endpoint_name``."""
        return self.endpoint(endpoint_name).machine_name

    def is_local(self, sender: str, recipient: str) -> bool:
        """True when both endpoints live on the same machine."""
        return (self.endpoint(sender).machine_name
                == self.endpoint(recipient).machine_name)

    def link_between(self, src_machine: str, dst_machine: str) -> Link:
        """The (lazily created) link for an ordered machine pair."""
        key = (src_machine, dst_machine)
        link = self._links.get(key)
        if link is None:
            link = self._links[key] = Link(
                self.env, self.config.latency_ms,
                self.config.bandwidth_bytes_per_ms)
        return link

    # -- sending ----------------------------------------------------------

    def send(self, message: Message) -> Event:
        """Dispatch ``message``; the event fires once it is delivered.

        The caller may ignore the returned event for fire-and-forget
        notifications, or ``yield`` it to model a synchronous
        (blocking, SOAP/HTTP-style) send.
        """
        source = self.endpoint(message.sender)
        destination = self.endpoint(message.recipient)
        message.sent_at = self.env.now
        done = Event(self.env)
        if source.machine_name == destination.machine_name:
            self._start_delivery(message, destination, done, None)
        else:
            link = self.link_between(
                source.machine_name, destination.machine_name)
            if self.chaos is None:
                self._start_delivery(message, destination, done, link)
            else:
                fault = self.chaos.message_fault(
                    source.machine_name, destination.machine_name,
                    message.kind)
                self._start_delivery(message, destination, done, link,
                                     drop=fault.drop,
                                     extra_delay_ms=fault.extra_delay_ms)
                if fault.duplicate:
                    # The copy re-occupies the same link FIFO behind the
                    # original; its delivery event is nobody's business.
                    self._start_delivery(message, destination,
                                         Event(self.env), link)
        return done

    def _start_delivery(self, message: Message, destination: Endpoint,
                        done: Event, link: Link | None, drop: bool = False,
                        extra_delay_ms: float = 0.0) -> None:
        """Kick off one delivery as a callback chain.

        Replaces the per-message net-local/net-remote processes.  Event
        accounting matches them exactly: the kick event stands in for
        the process bootstrap (one event, and the link transfer is
        initiated at the kick's *dispatch*, exactly where the old
        generator's first statement ran); the loopback timeout and the
        transfer's delivered event fire at the same positions; and the
        process completion event — a callback-less no-op dispatch —
        is compensated by ``env._seq += 1`` where the generator
        returned, keeping every later heap key bit-identical.
        """
        env = self.env

        if link is None:
            def on_kick(_event: Event) -> None:
                if self.config.loopback_delay_ms > 0:
                    timeout = env.timeout(self.config.loopback_delay_ms)

                    def on_loopback(_event: Event) -> None:
                        self._finish_delivery(message, destination, done)
                        env._seq += 1

                    timeout.callbacks.append(on_loopback)
                else:
                    self._finish_delivery(message, destination, done)
                    env._seq += 1
        else:
            def on_kick(_event: Event) -> None:
                delivered = link.transfer(message.size_bytes, extra_delay_ms)

                def on_delivered(_event: Event) -> None:
                    if drop:
                        # A chaos-dropped message occupies the link but
                        # is never delivered — the sender observes
                        # silence, like a lost datagram; ``done`` never
                        # fires, so synchronous senders must pair it
                        # with a timeout (the retry wrappers do).
                        self.messages_dropped += 1
                        env._seq += 1
                        return
                    self._finish_delivery(message, destination, done)
                    env._seq += 1

                delivered.callbacks.append(on_delivered)

        kick = Event(env)
        kick.callbacks.append(on_kick)
        kick.succeed(None)

    def _finish_delivery(self, message: Message, destination: Endpoint,
                         done: Event) -> None:
        message.delivered_at = self.env.now
        if destination.active:
            self.messages_delivered += 1
            self.bytes_delivered += message.size_bytes
            destination.mailbox.put(message)
        else:
            self.messages_dropped += 1
        done.succeed(message)
