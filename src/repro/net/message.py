"""Message envelopes exchanged between Grid services.

Everything that crosses machine boundaries in the simulation — tuple
buffers, monitoring notifications, adaptation control, request/response
calls — is a :class:`Message`.  The ``kind`` field selects the dispatch
path in :class:`repro.services.base.GridService`.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing

#: Message kinds understood by the service dispatcher.
KIND_DATA = "data"          # tuple buffers between exchange operators
KIND_NOTIFY = "notify"      # asynchronous pub/sub notifications
KIND_REQUEST = "request"    # request half of a service call
KIND_RESPONSE = "response"  # response half of a service call
KIND_CONTROL = "control"    # engine-level control (discards, EOS, ...)

_message_ids = itertools.count(1)


@dataclasses.dataclass
class Message:
    """A single network message.

    ``size_bytes`` is the on-the-wire size (payload plus protocol
    envelope) used by the link model to compute the transfer time.
    """

    sender: str
    recipient: str
    kind: str
    payload: typing.Any
    size_bytes: int = 256
    #: Operation name for requests / topic for notifications.
    subject: str = ""
    #: Correlates a response with its request.
    correlation_id: int | None = None
    msg_id: int = dataclasses.field(default_factory=lambda: next(_message_ids))
    sent_at: float | None = None
    delivered_at: float | None = None

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise ValueError(f"negative message size: {self.size_bytes}")
