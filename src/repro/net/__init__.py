"""Simulated network: messages, links, routing and serialization costs."""

from repro.net.link import Link
from repro.net.message import (
    KIND_CONTROL,
    KIND_DATA,
    KIND_NOTIFY,
    KIND_REQUEST,
    KIND_RESPONSE,
    Message,
)
from repro.net.network import Endpoint, Network, NetworkConfig
from repro.net.serialization import SerializationModel

__all__ = [
    "Endpoint",
    "KIND_CONTROL",
    "KIND_DATA",
    "KIND_NOTIFY",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "Link",
    "Message",
    "Network",
    "NetworkConfig",
    "SerializationModel",
]
