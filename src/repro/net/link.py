"""Point-to-point network link model.

Each ordered machine pair shares one :class:`Link`.  A transfer holds
the link for its transmission time (``size / bandwidth``) — so
concurrent senders to the same destination serialise, as on a shared
100 Mbps segment — and is then delivered after the propagation
``latency``, which does not occupy the link.  Messages on a link are
delivered in FIFO order, a property the recovery protocol relies on.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.stores import Store


class Link:
    """A latency/bandwidth pipe between two machines."""

    def __init__(self, env: Environment, latency_ms: float,
                 bandwidth_bytes_per_ms: float) -> None:
        if latency_ms < 0:
            raise ConfigurationError(f"negative latency: {latency_ms}")
        if bandwidth_bytes_per_ms <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive: {bandwidth_bytes_per_ms}")
        self.env = env
        self.latency_ms = latency_ms
        self.bandwidth = bandwidth_bytes_per_ms
        # The transmit queue guarantees FIFO occupancy of the link.
        self._transmit_queue: Store = Store(env)
        self._pump_running = False
        #: The transfer currently occupying the link, carried between
        #: the transmission timeout being scheduled and it firing.
        self._current: tuple[int, Event, float] | None = None
        self.bytes_sent = 0
        self.messages_sent = 0
        self.chaos_delay_ms = 0.0

    def transmission_time(self, size_bytes: int) -> float:
        """Time the link is occupied transmitting ``size_bytes``."""
        return size_bytes / self.bandwidth

    def transfer(self, size_bytes: int,
                 extra_delay_ms: float = 0.0) -> Event:
        """Send ``size_bytes``; the event fires at delivery time.

        ``extra_delay_ms`` models chaos-injected congestion: it extends
        this transfer's link occupancy, so later messages queue behind
        it and FIFO delivery order is preserved.
        """
        delivered = Event(self.env)
        self._transmit_queue.put((size_bytes, delivered, extra_delay_ms))
        if not self._pump_running:
            self._pump_running = True
            # Replaces the pump process's bootstrap: one event at the
            # same position whose dispatch starts the pump loop.
            wake = Event(self.env)
            wake.callbacks.append(self._on_pump_wake)
            wake.succeed(None)
        return delivered

    # The pump is a callback state machine rather than a process: the
    # historical per-burst pump process plus a per-delivery latency
    # process cost a Process + generator + bootstrap/done dispatch per
    # message, all pure host overhead.  Event accounting matches the
    # process version exactly — the bootstrap is replaced by the wake
    # event above, every StoreGet/timeout is issued at the same
    # position, and each process's completion event (dispatched as a
    # callback-less no-op that runs no user code) is compensated by a
    # direct ``env._seq += 1`` at the position where the generator
    # returned — so ``events_scheduled`` and all tie-breaking stay
    # bit-identical.

    def _on_pump_wake(self, _event: Event) -> None:
        self._pump_step()

    def _pump_step(self) -> None:
        if self._transmit_queue.is_empty:
            # Pump exits: consume the sequence number its process
            # completion event used to take.
            self._pump_running = False
            self.env._seq += 1
            return
        # The item is buffered, so the get settles immediately and its
        # dispatch (from the queue, like the generator's yield of an
        # already-triggered event) hands it to _on_item.
        request = self._transmit_queue.get()
        request.callbacks.append(self._on_item)

    def _on_item(self, request: Event) -> None:
        size_bytes, delivered, extra_delay_ms = request.value
        self._current = (size_bytes, delivered, extra_delay_ms)
        timeout = self.env.timeout(
            self.transmission_time(size_bytes) + extra_delay_ms)
        timeout.callbacks.append(self._on_transmitted)

    def _on_transmitted(self, _event: Event) -> None:
        size_bytes, delivered, extra_delay_ms = self._current
        self._current = None
        self.bytes_sent += size_bytes
        self.messages_sent += 1
        if extra_delay_ms > 0:
            self.chaos_delay_ms += extra_delay_ms
        # Propagation happens off-link: schedule delivery without
        # blocking the next transmission.
        self._start_latency(delivered)
        self._pump_step()

    def _start_latency(self, delivered: Event) -> None:
        """Deliver after the propagation latency (may overlap the next
        transmission, so the chain carries its context in a closure)."""
        env = self.env

        def on_kick(_event: Event) -> None:
            if self.latency_ms > 0:
                timeout = env.timeout(self.latency_ms)

                def on_latency(_event: Event) -> None:
                    delivered.succeed(env.now)
                    env._seq += 1

                timeout.callbacks.append(on_latency)
            else:
                delivered.succeed(env.now)
                env._seq += 1

        kick = Event(env)
        kick.callbacks.append(on_kick)
        kick.succeed(None)
