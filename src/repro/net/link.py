"""Point-to-point network link model.

Each ordered machine pair shares one :class:`Link`.  A transfer holds
the link for its transmission time (``size / bandwidth``) — so
concurrent senders to the same destination serialise, as on a shared
100 Mbps segment — and is then delivered after the propagation
``latency``, which does not occupy the link.  Messages on a link are
delivered in FIFO order, a property the recovery protocol relies on.
"""

from __future__ import annotations

import typing

from repro.errors import ConfigurationError
from repro.sim.environment import Environment
from repro.sim.events import Event
from repro.sim.stores import Store


class Link:
    """A latency/bandwidth pipe between two machines."""

    def __init__(self, env: Environment, latency_ms: float,
                 bandwidth_bytes_per_ms: float) -> None:
        if latency_ms < 0:
            raise ConfigurationError(f"negative latency: {latency_ms}")
        if bandwidth_bytes_per_ms <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive: {bandwidth_bytes_per_ms}")
        self.env = env
        self.latency_ms = latency_ms
        self.bandwidth = bandwidth_bytes_per_ms
        # The transmit queue guarantees FIFO occupancy of the link.
        self._transmit_queue: Store = Store(env)
        self._pump_running = False
        self.bytes_sent = 0
        self.messages_sent = 0
        self.chaos_delay_ms = 0.0

    def transmission_time(self, size_bytes: int) -> float:
        """Time the link is occupied transmitting ``size_bytes``."""
        return size_bytes / self.bandwidth

    def transfer(self, size_bytes: int,
                 extra_delay_ms: float = 0.0) -> Event:
        """Send ``size_bytes``; the event fires at delivery time.

        ``extra_delay_ms`` models chaos-injected congestion: it extends
        this transfer's link occupancy, so later messages queue behind
        it and FIFO delivery order is preserved.
        """
        delivered = Event(self.env)
        self._transmit_queue.put((size_bytes, delivered, extra_delay_ms))
        if not self._pump_running:
            self._pump_running = True
            self.env.process(self._pump(), name="link-pump")
        return delivered

    def _pump(self) -> typing.Generator[Event, typing.Any, None]:
        try:
            while not self._transmit_queue.is_empty:
                (size_bytes, delivered,
                 extra_delay_ms) = yield self._transmit_queue.get()
                yield self.env.timeout(
                    self.transmission_time(size_bytes) + extra_delay_ms)
                self.bytes_sent += size_bytes
                self.messages_sent += 1
                if extra_delay_ms > 0:
                    self.chaos_delay_ms += extra_delay_ms
                # Propagation happens off-link: schedule delivery without
                # blocking the next transmission.
                self.env.process(
                    self._deliver_after_latency(delivered),
                    name="link-latency")
        finally:
            self._pump_running = False

    def _deliver_after_latency(self, delivered: Event
                               ) -> typing.Generator[Event, typing.Any, None]:
        if self.latency_ms > 0:
            yield self.env.timeout(self.latency_ms)
        delivered.succeed(self.env.now)
        return
        yield  # pragma: no cover - keeps this a generator when latency == 0
