"""Cost model for SOAP/HTTP-style message (de)serialization.

OGSA-DQP shipped tuple buffers as SOAP documents over HTTP; in 2005 the
dominant communication cost was XML (de)serialization CPU time, not
wire time.  This model charges a fixed per-message cost plus a
per-tuple cost on the sending (serialize) and receiving (deserialize)
CPUs, and computes the inflated on-the-wire size.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class SerializationModel:
    """CPU and size costs of encoding tuple buffers as messages.

    Work values are in CPU work units (milliseconds at machine speed
    1.0); sizes are in bytes.
    """

    serialize_per_message: float = 2.0
    serialize_per_tuple: float = 0.25
    deserialize_per_message: float = 1.0
    deserialize_per_tuple: float = 0.12
    envelope_bytes: int = 512
    #: XML markup inflation applied to raw tuple bytes.
    size_inflation: float = 2.5

    def __post_init__(self) -> None:
        values = (self.serialize_per_message, self.serialize_per_tuple,
                  self.deserialize_per_message, self.deserialize_per_tuple,
                  self.envelope_bytes, self.size_inflation)
        if any(v < 0 for v in values):
            raise ConfigurationError(
                f"serialization model values must be non-negative: {self}")

    def serialize_work(self, tuple_count: int) -> float:
        """CPU work to serialize a buffer of ``tuple_count`` tuples."""
        return self.serialize_per_message + self.serialize_per_tuple * tuple_count

    def deserialize_work(self, tuple_count: int) -> float:
        """CPU work to deserialize a buffer of ``tuple_count`` tuples."""
        return (self.deserialize_per_message
                + self.deserialize_per_tuple * tuple_count)

    def wire_size(self, payload_bytes: int) -> int:
        """On-the-wire size of a message with ``payload_bytes`` of data."""
        return self.envelope_bytes + int(payload_bytes * self.size_inflation)

    def wire_size_batch(self, tuple_count: int, row_bytes: int) -> int:
        """On-the-wire size of a batch envelope of uniform-width rows.

        One envelope amortised over the whole batch — the batched
        exchange path ships ``tuple_count`` rows in a single message,
        so the size equals ``wire_size`` of the concatenated payload.
        """
        return self.wire_size(tuple_count * row_bytes)
