"""Cost model for SOAP/HTTP-style message (de)serialization.

OGSA-DQP shipped tuple buffers as SOAP documents over HTTP; in 2005 the
dominant communication cost was XML (de)serialization CPU time, not
wire time.  This model charges a fixed per-message cost plus a
per-tuple cost on the sending (serialize) and receiving (deserialize)
CPUs, and computes the inflated on-the-wire size.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class SerializationModel:
    """CPU and size costs of encoding tuple buffers as messages.

    Work values are in CPU work units (milliseconds at machine speed
    1.0); sizes are in bytes.
    """

    serialize_per_message: float = 2.0
    serialize_per_tuple: float = 0.25
    deserialize_per_message: float = 1.0
    deserialize_per_tuple: float = 0.12
    #: Per-column header cost of a columnar wire block (charged once
    #: per column per message, on top of the per-tuple cost).  The
    #: defaults are 0.0 so the columnar data plane is cost-neutral —
    #: simulated times are identical to the row wire — but the terms
    #: exist as ablation hooks for modelling column-chunked encodings.
    serialize_per_column: float = 0.0
    deserialize_per_column: float = 0.0
    envelope_bytes: int = 512
    #: Per-column framing bytes of a columnar wire block (default 0,
    #: same cost-neutrality argument as the per-column work terms).
    column_overhead_bytes: int = 0
    #: XML markup inflation applied to raw tuple bytes.
    size_inflation: float = 2.5

    def __post_init__(self) -> None:
        values = (self.serialize_per_message, self.serialize_per_tuple,
                  self.deserialize_per_message, self.deserialize_per_tuple,
                  self.serialize_per_column, self.deserialize_per_column,
                  self.envelope_bytes, self.column_overhead_bytes,
                  self.size_inflation)
        if any(v < 0 for v in values):
            raise ConfigurationError(
                f"serialization model values must be non-negative: {self}")

    def serialize_work(self, tuple_count: int,
                       column_count: int = 0) -> float:
        """CPU work to serialize a buffer of ``tuple_count`` tuples.

        ``column_count`` is the number of columns of the (columnar)
        payload; 0 for the row-at-a-time wire.
        """
        return (self.serialize_per_message
                + self.serialize_per_tuple * tuple_count
                + self.serialize_per_column * column_count)

    def deserialize_work(self, tuple_count: int,
                         column_count: int = 0) -> float:
        """CPU work to deserialize a buffer of ``tuple_count`` tuples."""
        return (self.deserialize_per_message
                + self.deserialize_per_tuple * tuple_count
                + self.deserialize_per_column * column_count)

    def wire_size(self, payload_bytes: int) -> int:
        """On-the-wire size of a message with ``payload_bytes`` of data."""
        return self.envelope_bytes + int(payload_bytes * self.size_inflation)

    def wire_size_batch(self, tuple_count: int, row_bytes: int,
                        column_count: int = 0) -> int:
        """On-the-wire size of a batch envelope of uniform-width rows.

        One envelope amortised over the whole batch — the batched
        exchange path ships ``tuple_count`` rows in a single message,
        so the size equals ``wire_size`` of the concatenated payload
        (plus per-column framing when the payload is columnar).
        """
        return (self.wire_size(tuple_count * row_bytes)
                + self.column_overhead_bytes * column_count)
