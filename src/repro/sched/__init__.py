"""Multi-query scheduling: concurrent sessions on a shared grid.

This subsystem layers three things on the single-query GDQS:

* :class:`QueryScheduler` — bounded admission (``max_concurrent``
  running, ``max_queued`` waiting, typed rejection beyond that) and
  synchronous dispatch, so concurrency one is event-for-event the
  pre-scheduler path;
* :class:`FairShare` — capacity-share charging that makes concurrent
  sessions' morsel CPU bursts contend on shared machines, feeding the
  paper's unchanged monitor/assess/respond loop;
* :class:`WorkloadDriver` — seeded open-loop Poisson arrivals over a
  query catalog, with throughput/latency percentile reporting.
"""

from repro.sched.driver import (
    WorkloadDriver,
    WorkloadReport,
    WorkloadSpec,
    percentile,
)
from repro.sched.fairshare import FairShare
from repro.sched.health import MachineHealth
from repro.sched.scheduler import QueryScheduler, SchedulerStatistics
from repro.sched.session import (
    QuerySession,
    STATE_COMPLETED,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RETRYING,
    STATE_RUNNING,
    TERMINAL_STATES,
)

__all__ = [
    "FairShare",
    "MachineHealth",
    "QueryScheduler",
    "QuerySession",
    "SchedulerStatistics",
    "STATE_COMPLETED",
    "STATE_FAILED",
    "STATE_QUEUED",
    "STATE_RETRYING",
    "STATE_RUNNING",
    "TERMINAL_STATES",
    "WorkloadDriver",
    "WorkloadReport",
    "WorkloadSpec",
    "percentile",
]
