"""Machine-health circuit breaker for multi-query placement.

Tracks per-machine query failures and opens a breaker after
``threshold`` failures inside a sliding ``window_ms``.  Placement
steers away from open machines (they sort last in the scheduler's
machine-order preference); after ``cooldown_ms`` the breaker
half-opens and admits a single probe query — a probe success closes
the breaker, a probe failure re-opens it for another cooldown.

The breaker is deliberately *advisory*: it reorders the least-loaded
placement preference rather than hard-excluding machines, so a pool
where every machine has tripped still schedules work (degraded but
live beats idle).  All bookkeeping is plain dictionary state — no
simulator events are ever scheduled, so an always-on breaker is free
when no failures occur and the no-chaos timeline stays bit-identical.

Placement steering is O(1) over the fleet in the healthy case: the
*unhealthy set* — machines whose breakers are open or cooling toward
half-open — is maintained incrementally on the record-failure /
record-success transitions instead of being recomputed by walking
every machine per placement.  ``is_open`` remains time-dependent
(cooldowns elapse without an event), so the set is a conservative
superset of the currently-open machines; callers consult it first
and only evaluate ``is_open`` for its members.
"""

from __future__ import annotations

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class MachineHealth:
    """Sliding-window failure counter with open/half-open/closed states."""

    def __init__(self, env, threshold: int, window_ms: float,
                 cooldown_ms: float) -> None:
        self.env = env
        self.threshold = threshold
        self.window_ms = window_ms
        self.cooldown_ms = cooldown_ms
        #: Recent failure timestamps per machine (pruned to the window).
        self._failures: dict[str, list[float]] = {}
        #: When each open breaker tripped (or re-tripped).
        self._opened_at: dict[str, float] = {}
        #: Probe queries placed on a half-open machine.
        self._probes: dict[str, int] = {}
        #: Machines with a tripped (open or cooling) breaker — kept in
        #: lockstep with ``_opened_at`` on every transition, so the
        #: no-failure placement path checks one empty set instead of
        #: calling ``is_open`` per machine.  Superset of currently-open
        #: (a cooldown may have elapsed); members are re-graded with
        #: ``is_open`` at use.
        self._unhealthy: set[str] = set()
        self.breakers_opened = 0
        self.breakers_closed = 0

    # -- state queries ---------------------------------------------------

    def state(self, machine: str) -> str:
        opened = self._opened_at.get(machine)
        if opened is None:
            return STATE_CLOSED
        if self.env.now - opened >= self.cooldown_ms:
            return STATE_HALF_OPEN
        return STATE_OPEN

    def is_open(self, machine: str) -> bool:
        """True when placement should steer away from ``machine``.

        A half-open machine admits exactly one probe: it reads as
        healthy until a probe is placed, then open again until the
        probe settles.
        """
        state = self.state(machine)
        if state == STATE_CLOSED:
            return False
        if state == STATE_OPEN:
            return True
        return self._probes.get(machine, 0) > 0

    def open_machines(self) -> tuple[str, ...]:
        """Machines currently steering placement away, sorted."""
        return tuple(sorted(name for name in self._unhealthy
                            if self.is_open(name)))

    def unhealthy_names(self) -> frozenset[str]:
        """Machines whose breaker is open *or* cooling (a superset of
        the currently-open set — see the module docstring).  Empty in
        the no-failure steady state, making steering free."""
        return frozenset(self._unhealthy)

    def site_rollup(self, site_of) -> dict[str, int]:
        """Open-breaker count per site (``site_of``: name -> site).

        Iterates only the unhealthy set, so the rollup is O(tripped),
        not O(fleet) — the site-tier health summary of the two-level
        monitoring topology.
        """
        rollup: dict[str, int] = {}
        for name in self._unhealthy:
            if self.is_open(name):
                site = site_of(name)
                rollup[site] = rollup.get(site, 0) + 1
        return rollup

    # -- event recording -------------------------------------------------

    def note_placement(self, machines) -> None:
        """Record that a query was placed on ``machines``.

        Half-open machines count the placement as their probe.  With
        no breakers tripped this is a single set check regardless of
        placement width.
        """
        if not self._unhealthy:
            return
        for name in machines:
            if (name in self._unhealthy
                    and self.state(name) == STATE_HALF_OPEN):
                self._probes[name] = self._probes.get(name, 0) + 1

    def record_failure(self, machine: str) -> None:
        now = self.env.now
        if machine in self._opened_at:
            # Open or half-open: the failure (a probe, or a straggler
            # from before the trip) restarts the cooldown.
            self._opened_at[machine] = now
            self._probes.pop(machine, None)
            return
        window = [stamp for stamp in self._failures.get(machine, ())
                  if now - stamp < self.window_ms]
        window.append(now)
        if len(window) >= self.threshold:
            self._failures.pop(machine, None)
            self._opened_at[machine] = now
            self._unhealthy.add(machine)
            self.breakers_opened += 1
        else:
            self._failures[machine] = window

    def record_success(self, machine: str) -> None:
        """A query finished cleanly on ``machine``.

        Only a half-open probe success closes the breaker; successes on
        a closed machine clear nothing (the failure window expires on
        its own) and successes on an open machine are stragglers from
        before the trip.
        """
        if self.state(machine) != STATE_HALF_OPEN:
            return
        if self._probes.get(machine, 0) <= 0:
            return
        self._opened_at.pop(machine, None)
        self._unhealthy.discard(machine)
        self._probes.pop(machine, None)
        self._failures.pop(machine, None)
        self.breakers_closed += 1
