"""Machine-health circuit breaker for multi-query placement.

Tracks per-machine query failures and opens a breaker after
``threshold`` failures inside a sliding ``window_ms``.  Placement
steers away from open machines (they sort last in the scheduler's
machine-order preference); after ``cooldown_ms`` the breaker
half-opens and admits a single probe query — a probe success closes
the breaker, a probe failure re-opens it for another cooldown.

The breaker is deliberately *advisory*: it reorders the least-loaded
placement preference rather than hard-excluding machines, so a pool
where every machine has tripped still schedules work (degraded but
live beats idle).  All bookkeeping is plain dictionary state — no
simulator events are ever scheduled, so an always-on breaker is free
when no failures occur and the no-chaos timeline stays bit-identical.
"""

from __future__ import annotations

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


class MachineHealth:
    """Sliding-window failure counter with open/half-open/closed states."""

    def __init__(self, env, threshold: int, window_ms: float,
                 cooldown_ms: float) -> None:
        self.env = env
        self.threshold = threshold
        self.window_ms = window_ms
        self.cooldown_ms = cooldown_ms
        #: Recent failure timestamps per machine (pruned to the window).
        self._failures: dict[str, list[float]] = {}
        #: When each open breaker tripped (or re-tripped).
        self._opened_at: dict[str, float] = {}
        #: Probe queries placed on a half-open machine.
        self._probes: dict[str, int] = {}
        self.breakers_opened = 0
        self.breakers_closed = 0

    # -- state queries ---------------------------------------------------

    def state(self, machine: str) -> str:
        opened = self._opened_at.get(machine)
        if opened is None:
            return STATE_CLOSED
        if self.env.now - opened >= self.cooldown_ms:
            return STATE_HALF_OPEN
        return STATE_OPEN

    def is_open(self, machine: str) -> bool:
        """True when placement should steer away from ``machine``.

        A half-open machine admits exactly one probe: it reads as
        healthy until a probe is placed, then open again until the
        probe settles.
        """
        state = self.state(machine)
        if state == STATE_CLOSED:
            return False
        if state == STATE_OPEN:
            return True
        return self._probes.get(machine, 0) > 0

    def open_machines(self) -> tuple[str, ...]:
        """Machines currently steering placement away, sorted."""
        return tuple(sorted(name for name in self._opened_at
                            if self.is_open(name)))

    # -- event recording -------------------------------------------------

    def note_placement(self, machines) -> None:
        """Record that a query was placed on ``machines``.

        Half-open machines count the placement as their probe.
        """
        for name in machines:
            if self.state(name) == STATE_HALF_OPEN:
                self._probes[name] = self._probes.get(name, 0) + 1

    def record_failure(self, machine: str) -> None:
        now = self.env.now
        if machine in self._opened_at:
            # Open or half-open: the failure (a probe, or a straggler
            # from before the trip) restarts the cooldown.
            self._opened_at[machine] = now
            self._probes.pop(machine, None)
            return
        window = [stamp for stamp in self._failures.get(machine, ())
                  if now - stamp < self.window_ms]
        window.append(now)
        if len(window) >= self.threshold:
            self._failures.pop(machine, None)
            self._opened_at[machine] = now
            self.breakers_opened += 1
        else:
            self._failures[machine] = window

    def record_success(self, machine: str) -> None:
        """A query finished cleanly on ``machine``.

        Only a half-open probe success closes the breaker; successes on
        a closed machine clear nothing (the failure window expires on
        its own) and successes on an open machine are stragglers from
        before the trip.
        """
        if self.state(machine) != STATE_HALF_OPEN:
            return
        if self._probes.get(machine, 0) <= 0:
            return
        self._opened_at.pop(machine, None)
        self._probes.pop(machine, None)
        self._failures.pop(machine, None)
        self.breakers_closed += 1
