"""The multi-query scheduler: admission control over a shared grid.

:class:`QueryScheduler` layers concurrent-session management on the
GDQS.  It runs at most ``max_concurrent`` queries at once, parks up to
``max_queued`` more in a FIFO admission queue, and refuses the rest
with :class:`~repro.errors.AdmissionRejected`.  Queries admitted
together genuinely contend for CPU: their morsel bursts queue at the
shared per-machine FIFO servers, and each one's per-query adaptivity
(detector -> diagnoser -> responder) rebalances around the load the
others create.  Running sessions also charge capacity shares on the
machines they occupy through the
:class:`~repro.sched.fairshare.FairShare` policy, which steers new
sessions toward the least-loaded machines and reports capacity
pressure.

Dispatch is fully synchronous: an admissible query is deployed within
``submit`` itself, and the next queued query is deployed from the
completion callback of the finishing one.  The scheduler therefore
adds *zero* simulator events for a single query at concurrency one —
that path is event-for-event the pre-scheduler ``GDQS.submit``.
"""

from __future__ import annotations

import collections
import dataclasses

from repro.config import SchedulerConfig
from repro.dqp.gdqs import GDQS, QueryResult
from repro.errors import AdmissionRejected
from repro.sched.fairshare import FairShare
from repro.sched.session import (
    QuerySession,
    STATE_COMPLETED,
    require_done,
)
from repro.sim.events import Event
from repro.telemetry.trace import CATEGORY_SCHEDULER


@dataclasses.dataclass
class SchedulerStatistics:
    """Aggregate view of a scheduler's lifetime so far."""

    admitted: int
    completed: int
    rejected: int
    peak_queue_depth: int
    #: Per completed session, in completion order.
    queue_waits_ms: list
    execution_ms: list
    response_ms: list
    #: Busy fraction per machine over the scheduler's lifetime.
    machine_utilisation: dict


class QueryScheduler:
    """Admission control and fair-share dispatch over one GDQS."""

    def __init__(self, gdqs: GDQS,
                 config: SchedulerConfig | None = None) -> None:
        self.gdqs = gdqs
        self.context = gdqs.context
        self.env = self.context.env
        self.config = config or SchedulerConfig()
        self.name = f"sched:{gdqs.machine.name}"
        self.fair_share: FairShare | None = None
        if self.config.fair_share:
            self.fair_share = FairShare(
                self.context.registry,
                session_weight=self.config.session_weight,
                machine_capacity=self.config.machine_capacity)
        self._queue: collections.deque[QuerySession] = collections.deque()
        self._running: dict[str, QuerySession] = {}
        #: Every admitted session, in submission order.
        self.sessions: list[QuerySession] = []
        self.rejected = 0
        self.peak_queue_depth = 0
        self._session_counter = 0
        self._created_at = self.env.now
        self._cpu_baseline = {
            machine.name: machine.cpu.busy_time
            for machine in self.context.registry.machines()}
        metrics = self.context.metrics
        self._metric_admitted = metrics.counter("sched_admitted")
        self._metric_rejected = metrics.counter("sched_rejected")
        self._metric_completed = metrics.counter("sched_completed")
        self._metric_queue_wait = metrics.histogram("sched_queue_wait_ms")
        self._metric_queue_depth = metrics.series("sched_queue_depth")
        for machine in self.context.registry.machines():
            metrics.gauge("sched_capacity_pressure",
                          fn=machine.contention_factor,
                          machine=machine.name)

    # -- submission ------------------------------------------------------

    def submit(self, query_text: str, adaptivity=None,
               degree: int | None = None) -> QuerySession:
        """Admit ``query_text``, starting it now or queueing it.

        Raises :class:`AdmissionRejected` when both the running set
        and the admission queue are full; the query never touches the
        grid in that case.
        """
        if (len(self._running) >= self.config.max_concurrent
                and len(self._queue) >= self.config.max_queued):
            self.rejected += 1
            self._metric_rejected.inc()
            self.context.tracer.record(
                CATEGORY_SCHEDULER, self.name, "query rejected",
                running=len(self._running), queued=len(self._queue),
                rejected_total=self.rejected)
            raise AdmissionRejected(
                query_text, running=len(self._running),
                queued=len(self._queue),
                max_concurrent=self.config.max_concurrent,
                max_queued=self.config.max_queued)
        self._session_counter += 1
        session = QuerySession(
            f"s{self._session_counter}", query_text, adaptivity, degree,
            submitted_at=self.env.now)
        self.sessions.append(session)
        self._metric_admitted.inc()
        if len(self._running) < self.config.max_concurrent:
            self._start(session)
        else:
            # Queued sessions need a completion event of their own
            # before the underlying handle exists.
            session.done = self.env.event()
            self._queue.append(session)
            self.peak_queue_depth = max(self.peak_queue_depth,
                                        len(self._queue))
            self._metric_queue_depth.sample(len(self._queue))
            self.context.tracer.record(
                CATEGORY_SCHEDULER, self.name, "query queued",
                session=session.session_id, depth=len(self._queue))
        return session

    def _machine_order(self) -> list[str] | None:
        if self.fair_share is None or not self.config.load_aware_placement:
            return None
        return self.fair_share.least_loaded_order(
            self.context.registry.compute_machines())

    def _start(self, session: QuerySession) -> None:
        handle = self.gdqs.submit(session.query_text,
                                  adaptivity=session.adaptivity,
                                  degree=session.degree,
                                  machine_order=self._machine_order())
        session.mark_started(handle, self.env.now)
        self._metric_queue_wait.observe(session.queue_wait_ms)
        self._running[session.session_id] = session
        if self.fair_share is not None:
            # Shares are charged in the same simulated instant as the
            # deployment, so a second submission at the same time
            # already sees this session's residency when placing.
            self.fair_share.admit(session)
        if session.done is None:
            session.done = handle.done
        handle.done.callbacks.append(
            lambda event, s=session: self._on_complete(s, event))
        self.context.tracer.record(
            CATEGORY_SCHEDULER, self.name, "query started",
            session=session.session_id, query_id=handle.query_id,
            queue_wait_ms=round(session.queue_wait_ms, 1),
            machines=session.machines)

    def _on_complete(self, session: QuerySession, event: Event) -> None:
        session.mark_completed(self.env.now)
        self._metric_completed.inc()
        if self.fair_share is not None:
            self.fair_share.release(session)
        del self._running[session.session_id]
        self.context.tracer.record(
            CATEGORY_SCHEDULER, self.name, "query completed",
            session=session.session_id,
            queue_wait_ms=round(session.queue_wait_ms, 1),
            execution_ms=round(session.execution_ms, 1),
            response_ms=round(session.response_ms, 1))
        dispatched = False
        while (self._queue
               and len(self._running) < self.config.max_concurrent):
            self._start(self._queue.popleft())
            dispatched = True
        if dispatched:
            self._metric_queue_depth.sample(len(self._queue))
        if session.done is not event:
            # A formerly-queued session: forward the handle's outcome
            # to the placeholder event its submitter is waiting on.
            if event.ok:
                session.done.succeed(event.value)
            else:
                session.done.fail(event.value)

    # -- draining and statistics -----------------------------------------

    @property
    def running_count(self) -> int:
        return len(self._running)

    @property
    def queued_count(self) -> int:
        return len(self._queue)

    def drain(self) -> list[QueryResult]:
        """Run the simulation until every admitted session completes.

        Returns the results in submission order, then drains teardown
        traffic so the grid is quiet.
        """
        while True:
            pending = [session for session in self.sessions
                       if session.state != STATE_COMPLETED]
            if not pending:
                break
            self.env.run(until=require_done(pending[0]))
        self.env.run()
        return [session.result for session in self.sessions]

    def statistics(self) -> SchedulerStatistics:
        """Aggregate admission and utilisation telemetry."""
        completed = [session for session in self.sessions
                     if session.state == STATE_COMPLETED]
        completed.sort(key=lambda session: session.completed_at)
        elapsed = self.env.now - self._created_at
        utilisation = {}
        if elapsed > 0:
            for machine in self.context.registry.machines():
                busy = (machine.cpu.busy_time
                        - self._cpu_baseline[machine.name])
                utilisation[machine.name] = min(1.0, busy / elapsed)
        return SchedulerStatistics(
            admitted=len(self.sessions),
            completed=len(completed),
            rejected=self.rejected,
            peak_queue_depth=self.peak_queue_depth,
            queue_waits_ms=[session.queue_wait_ms
                            for session in completed],
            execution_ms=[session.execution_ms for session in completed],
            response_ms=[session.response_ms for session in completed],
            machine_utilisation=utilisation)
