"""The multi-query scheduler: admission control over a shared grid.

:class:`QueryScheduler` layers concurrent-session management on the
GDQS.  It runs at most ``max_concurrent`` queries at once, parks up to
``max_queued`` more in a FIFO admission queue, and refuses the rest
with :class:`~repro.errors.AdmissionRejected`.  Queries admitted
together genuinely contend for CPU: their morsel bursts queue at the
shared per-machine FIFO servers, and each one's per-query adaptivity
(detector -> diagnoser -> responder) rebalances around the load the
others create.  Running sessions also charge capacity shares on the
machines they occupy through the
:class:`~repro.sched.fairshare.FairShare` policy, which steers new
sessions toward the least-loaded machines and reports capacity
pressure.

Dispatch is fully synchronous: an admissible query is deployed within
``submit`` itself, and the next queued query is deployed from the
completion callback of the finishing one.  The scheduler therefore
adds *zero* simulator events for a single query at concurrency one —
that path is event-for-event the pre-scheduler ``GDQS.submit``.
"""

from __future__ import annotations

import collections
import dataclasses

import typing

from repro.config import SchedulerConfig
from repro.dqp.gdqs import (
    CAUSE_DEADLINE,
    CAUSE_UNPLANNABLE,
    GDQS,
    QueryFailed,
    QueryResult,
)
from repro.errors import AdmissionRejected, PlanningError
from repro.sched.fairshare import FairShare
from repro.sched.health import MachineHealth
from repro.sched.session import (
    QuerySession,
    STATE_COMPLETED,
    TERMINAL_STATES,
    require_done,
)
from repro.sim.events import Event
from repro.telemetry.trace import CATEGORY_SCHEDULER


@dataclasses.dataclass
class SchedulerStatistics:
    """Aggregate view of a scheduler's lifetime so far."""

    admitted: int
    completed: int
    rejected: int
    #: Sessions that ended with a typed failure (includes timeouts).
    failed: int
    #: Retry dispatches performed (attempts beyond each first one).
    retried: int
    #: Sessions aborted by the per-query deadline.
    timed_out: int
    #: Simulated milliseconds burnt by attempts that did not complete.
    wasted_work_ms: float
    peak_queue_depth: int
    #: Per completed session, in completion order.
    queue_waits_ms: list
    execution_ms: list
    response_ms: list
    #: Busy fraction per machine over the scheduler's lifetime.
    machine_utilisation: dict

    @property
    def availability(self) -> float:
        """Completed share of terminally-settled sessions."""
        terminal = self.completed + self.failed
        return self.completed / terminal if terminal else 1.0


class QueryScheduler:
    """Admission control and fair-share dispatch over one GDQS."""

    def __init__(self, gdqs: GDQS,
                 config: SchedulerConfig | None = None) -> None:
        self.gdqs = gdqs
        self.context = gdqs.context
        self.env = self.context.env
        self.config = config or SchedulerConfig()
        self.name = f"sched:{gdqs.machine.name}"
        self.fair_share: FairShare | None = None
        if self.config.fair_share:
            self.fair_share = FairShare(
                self.context.registry,
                session_weight=self.config.session_weight,
                machine_capacity=self.config.machine_capacity)
        self.health: MachineHealth | None = None
        if self.config.breaker_threshold > 0:
            # Pure bookkeeping (no simulator events): safe always-on.
            self.health = MachineHealth(
                self.env, threshold=self.config.breaker_threshold,
                window_ms=self.config.breaker_window_ms,
                cooldown_ms=self.config.breaker_cooldown_ms)
        self._queue: collections.deque[QuerySession] = collections.deque()
        self._running: dict[str, QuerySession] = {}
        #: Every admitted session, in submission order.
        self.sessions: list[QuerySession] = []
        self.rejected = 0
        self.queries_failed = 0
        self.queries_retried = 0
        self.queries_timed_out = 0
        self.wasted_work_ms = 0.0
        self.peak_queue_depth = 0
        self._session_counter = 0
        self._created_at = self.env.now
        # Baselines and per-machine gauges cover machines as they
        # exist: already-built ones now, lazy ones at materialization
        # (walking the spec list would build the whole fleet up
        # front).  A machine built later never ran before it existed,
        # so its implied baseline is its creation-time busy time.
        self._cpu_baseline = {
            machine.name: machine.cpu.busy_time
            for machine in self.context.registry.materialized_machines()}
        metrics = self.context.metrics
        self._metric_admitted = metrics.counter("sched_admitted")
        self._metric_rejected = metrics.counter("sched_rejected")
        self._metric_completed = metrics.counter("sched_completed")
        self._metric_failed = metrics.counter("sched_failed")
        self._metric_retried = metrics.counter("sched_retried")
        self._metric_timed_out = metrics.counter("sched_timed_out")
        self._metric_queue_wait = metrics.histogram("sched_queue_wait_ms")
        self._metric_mttr = metrics.histogram("sched_mttr_ms")
        self._metric_queue_depth = metrics.series("sched_queue_depth")
        metrics.gauge("sched_availability", fn=self._availability)
        for machine in self.context.registry.materialized_machines():
            self._register_machine_gauge(machine)
        self.context.registry.on_materialize(self._on_materialize)
        if self.health is not None:
            # Site-tier health summary: open-breaker count per site,
            # computed from the incrementally-maintained unhealthy set
            # (O(tripped), never O(fleet)).  Callback gauges are read
            # only at snapshot time — the zero-cost metrics invariant.
            registry = self.context.registry
            for site in registry.sites():
                metrics.gauge(
                    "sched_site_breakers_open",
                    fn=lambda site=site: self.health.site_rollup(
                        registry.site_of).get(site, 0),
                    site=site)

    def _register_machine_gauge(self, machine) -> None:
        self.context.metrics.gauge("sched_capacity_pressure",
                                   fn=machine.contention_factor,
                                   machine=machine.name)

    def _on_materialize(self, machine) -> None:
        self._cpu_baseline[machine.name] = machine.cpu.busy_time
        self._register_machine_gauge(machine)

    # -- submission ------------------------------------------------------

    def submit(self, query_text: str, adaptivity=None,
               degree: int | None = None) -> QuerySession:
        """Admit ``query_text``, starting it now or queueing it.

        Raises :class:`AdmissionRejected` when both the running set
        and the admission queue are full; the query never touches the
        grid in that case.
        """
        if (len(self._running) >= self.config.max_concurrent
                and len(self._queue) >= self.config.max_queued):
            self.rejected += 1
            self._metric_rejected.inc()
            self.context.tracer.record(
                CATEGORY_SCHEDULER, self.name, "query rejected",
                running=len(self._running), queued=len(self._queue),
                rejected_total=self.rejected)
            raise AdmissionRejected(
                query_text, running=len(self._running),
                queued=len(self._queue),
                max_concurrent=self.config.max_concurrent,
                max_queued=self.config.max_queued)
        self._session_counter += 1
        session = QuerySession(
            f"s{self._session_counter}", query_text, adaptivity, degree,
            submitted_at=self.env.now)
        self.sessions.append(session)
        self._metric_admitted.inc()
        if self.config.resilient:
            # Resilient sessions get a dedicated completion event up
            # front: the underlying handle's event settles per *attempt*
            # (a retried failure must not wake the submitter), so the
            # session-level event is the only one that means "terminal".
            session.done = self.env.event()
        if len(self._running) < self.config.max_concurrent:
            self._start(session)
        else:
            # Queued sessions need a completion event of their own
            # before the underlying handle exists.
            session.done = self.env.event()
            self._queue.append(session)
            self.peak_queue_depth = max(self.peak_queue_depth,
                                        len(self._queue))
            self._metric_queue_depth.sample(len(self._queue))
            self.context.tracer.record(
                CATEGORY_SCHEDULER, self.name, "query queued",
                session=session.session_id, depth=len(self._queue))
        return session

    def _availability(self) -> float:
        completed = sum(1 for session in self.sessions
                        if session.state == STATE_COMPLETED)
        terminal = completed + self.queries_failed
        return completed / terminal if terminal else 1.0

    def _machine_order(self) -> list[str] | None:
        if self.fair_share is None or not self.config.load_aware_placement:
            return None
        # The fleet index maintains the least-loaded (site, machine)
        # order incrementally on admit/release deltas, so emitting the
        # preference costs O(candidates), not a per-placement sort of
        # the whole fleet.  With a candidate budget configured, fetch
        # enough extras to survive the breaker partition below pushing
        # tripped machines behind the budget line.
        limit = self.config.placement_candidates
        maybe_open: frozenset = frozenset()
        if self.health is not None:
            maybe_open = self.health.unhealthy_names()
            if limit is not None and maybe_open:
                limit += len(maybe_open)
        order = self.fair_share.placement_order(limit=limit)
        if maybe_open:
            # Stable partition: breaker-open machines sort last, the
            # least-loaded order is preserved inside each partition.
            # Only the incrementally-maintained unhealthy set is
            # re-graded — machines outside it are closed by
            # construction — so the no-failure path skips this block
            # entirely and the no-chaos event timeline is untouched.
            tripped_now = {name for name in maybe_open
                           if self.health.is_open(name)}
            if tripped_now:
                healthy = [name for name in order
                           if name not in tripped_now]
                tripped = [name for name in order if name in tripped_now]
                order = healthy + tripped
        return order

    def _start(self, session: QuerySession) -> None:
        exclude = (session.blacklist,) if session.blacklist else ()
        try:
            handle = self.gdqs.submit(session.query_text,
                                      adaptivity=session.adaptivity,
                                      degree=session.degree,
                                      machine_order=self._machine_order(),
                                      exclude_machines=exclude)
        except PlanningError:
            # The surviving grid cannot place this plan (crashed
            # machines shrank the pool below the requested degree):
            # settle the session with a typed failure instead of
            # letting the exception unwind whoever dispatched it.
            self._fail_unplannable(session)
            return
        first_attempt = session.attempts == 0
        session.mark_started(handle, self.env.now)
        if first_attempt:
            self._metric_queue_wait.observe(session.queue_wait_ms)
        self._running[session.session_id] = session
        if self.fair_share is not None:
            # Shares are charged in the same simulated instant as the
            # deployment, so a second submission at the same time
            # already sees this session's residency when placing.
            self.fair_share.admit(session)
        if self.health is not None:
            self.health.note_placement(session.machines)
        if session.done is None:
            session.done = handle.done
        handle.done.callbacks.append(
            lambda event, s=session: self._on_complete(s, event))
        if self.config.query_timeout_ms is not None:
            self.env.process(
                self._watch_deadline(handle),
                name=f"sched:deadline:{session.session_id}"
                     f":a{session.attempts}")
        self.context.tracer.record(
            CATEGORY_SCHEDULER, self.name, "query started",
            session=session.session_id, query_id=handle.query_id,
            queue_wait_ms=round(session.queue_wait_ms, 1),
            machines=session.machines)

    def _watch_deadline(self, handle) -> typing.Generator:
        """Abort ``handle`` if it outlives the per-attempt deadline.

        The timer fires once per attempt; on a handle that already
        settled (success or failure) the expiry is a harmless no-op.
        """
        yield self.env.timeout(self.config.query_timeout_ms)
        if not handle.done.triggered:
            self.gdqs.abort(handle, CAUSE_DEADLINE)

    def _on_complete(self, session: QuerySession, event: Event) -> None:
        if event.ok and getattr(event.value, "failed", False):
            self._on_failure(session, event.value, event)
            return
        session.mark_completed(self.env.now)
        self._metric_completed.inc()
        if self.health is not None:
            for machine in session.machines:
                self.health.record_success(machine)
            if session.first_failed_at is not None:
                # Time from first failure to eventual success: the
                # scheduler-level mean-time-to-repair contribution.
                self._metric_mttr.observe(
                    self.env.now - session.first_failed_at)
        if self.fair_share is not None:
            self.fair_share.release(session)
        del self._running[session.session_id]
        self.context.tracer.record(
            CATEGORY_SCHEDULER, self.name, "query completed",
            session=session.session_id,
            queue_wait_ms=round(session.queue_wait_ms, 1),
            execution_ms=round(session.execution_ms, 1),
            response_ms=round(session.response_ms, 1))
        dispatched = False
        while (self._queue
               and len(self._running) < self.config.max_concurrent):
            self._start(self._queue.popleft())
            dispatched = True
        if dispatched:
            self._metric_queue_depth.sample(len(self._queue))
        if session.done is not event:
            # A formerly-queued session: forward the handle's outcome
            # to the placeholder event its submitter is waiting on.
            if event.ok:
                session.done.succeed(event.value)
            else:
                session.done.fail(event.value)

    # -- failure handling ------------------------------------------------

    def _fail_unplannable(self, session: QuerySession) -> None:
        failure = QueryFailed(
            query_id=session.session_id, cause=CAUSE_UNPLANNABLE,
            failed_machine=None,
            elapsed_ms=self.env.now - session.submitted_at,
            recoveries=0)
        session.mark_failed(self.env.now, failure)
        self.queries_failed += 1
        self._metric_failed.inc()
        self.context.tracer.record(
            CATEGORY_SCHEDULER, self.name, "query failed",
            session=session.session_id, cause=failure.cause,
            failed_machine="", attempts=session.attempts)
        if session.done is None:
            session.done = self.env.event()
        session.done.succeed(failure)

    def _should_retry(self, session: QuerySession,
                      failure: QueryFailed) -> bool:
        retry = self.config.retry
        if retry is None:
            return False
        if failure.cause == CAUSE_DEADLINE:
            # A deadline abort is terminal by design: the attempt
            # already consumed the submitter's whole time budget, so
            # re-running it cannot meet any useful latency target.
            return False
        return session.attempts < retry.max_attempts

    def _on_failure(self, session: QuerySession, failure: QueryFailed,
                    event: Event) -> None:
        self.wasted_work_ms += failure.elapsed_ms
        if self.health is not None and failure.failed_machine:
            self.health.record_failure(failure.failed_machine)
        if self.fair_share is not None:
            self.fair_share.release(session)
        del self._running[session.session_id]
        if self._should_retry(session, failure):
            session.mark_retrying(self.env.now, failure)
            self.queries_retried += 1
            self._metric_retried.inc()
            backoff = self.config.retry.backoff_ms(session.attempts)
            self.context.tracer.record(
                CATEGORY_SCHEDULER, self.name, "query retrying",
                session=session.session_id, cause=failure.cause,
                failed_machine=failure.failed_machine or "",
                attempt=session.attempts, backoff_ms=round(backoff, 1))
            self.env.process(
                self._retry_later(session, backoff),
                name=f"sched:retry:{session.session_id}"
                     f":a{session.attempts}")
        else:
            session.mark_failed(self.env.now, failure)
            self.queries_failed += 1
            self._metric_failed.inc()
            if failure.cause == CAUSE_DEADLINE:
                self.queries_timed_out += 1
                self._metric_timed_out.inc()
            self.context.tracer.record(
                CATEGORY_SCHEDULER, self.name, "query failed",
                session=session.session_id, cause=failure.cause,
                failed_machine=failure.failed_machine or "",
                attempts=session.attempts)
        dispatched = False
        while (self._queue
               and len(self._running) < self.config.max_concurrent):
            self._start(self._queue.popleft())
            dispatched = True
        if dispatched:
            self._metric_queue_depth.sample(len(self._queue))
        if session.state in TERMINAL_STATES and session.done is not event:
            session.done.succeed(failure)

    def _retry_later(self, session: QuerySession,
                     backoff_ms: float) -> typing.Generator:
        yield self.env.timeout(backoff_ms)
        if len(self._running) < self.config.max_concurrent:
            self._start(session)
        else:
            # All slots refilled during the backoff: rejoin at the
            # front of the queue (the retry has waited longest).
            self._queue.appendleft(session)
            self.peak_queue_depth = max(self.peak_queue_depth,
                                        len(self._queue))
            self._metric_queue_depth.sample(len(self._queue))

    # -- draining and statistics -----------------------------------------

    @property
    def running_count(self) -> int:
        return len(self._running)

    @property
    def queued_count(self) -> int:
        return len(self._queue)

    def drain(self) -> list[QueryResult | QueryFailed]:
        """Run the simulation until every admitted session settles.

        Every admitted session reaches a terminal state — completed or
        failed — so the returned list (submission order) holds one
        outcome per session: a :class:`QueryResult` or a typed
        :class:`QueryFailed`, never a hole.  Teardown traffic is then
        drained so the grid is quiet.
        """
        while True:
            pending = [session for session in self.sessions
                       if session.state not in TERMINAL_STATES]
            if not pending:
                break
            self.env.run(until=require_done(pending[0]))
        self.env.run()
        return [session.outcome for session in self.sessions]

    def statistics(self) -> SchedulerStatistics:
        """Aggregate admission and utilisation telemetry."""
        completed = [session for session in self.sessions
                     if session.state == STATE_COMPLETED]
        completed.sort(key=lambda session: session.completed_at)
        elapsed = self.env.now - self._created_at
        utilisation = {}
        if elapsed > 0:
            # Materialized machines only: a lazy machine no query ever
            # touched has no CPU history worth reporting (and walking
            # the unbuilt fleet would materialize it just to say 0.0).
            for machine in self.context.registry.materialized_machines():
                busy = (machine.cpu.busy_time
                        - self._cpu_baseline[machine.name])
                utilisation[machine.name] = min(1.0, busy / elapsed)
        return SchedulerStatistics(
            admitted=len(self.sessions),
            completed=len(completed),
            rejected=self.rejected,
            failed=self.queries_failed,
            retried=self.queries_retried,
            timed_out=self.queries_timed_out,
            wasted_work_ms=self.wasted_work_ms,
            peak_queue_depth=self.peak_queue_depth,
            queue_waits_ms=[session.queue_wait_ms
                            for session in completed],
            execution_ms=[session.execution_ms for session in completed],
            response_ms=[session.response_ms for session in completed],
            machine_utilisation=utilisation)
