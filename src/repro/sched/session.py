"""Per-query sessions managed by the multi-query scheduler.

A :class:`QuerySession` is the scheduler-side identity of one
submitted query: its position in the admission lifecycle
(queued/running/completed), the lifecycle timestamps that separate
queue wait from execution, and — once dispatched — the underlying
:class:`~repro.dqp.gdqs.QueryHandle`.
"""

from __future__ import annotations

from repro.config import AdaptivityConfig
from repro.dqp.gdqs import QueryFailed, QueryHandle, QueryResult
from repro.errors import SchedulerError
from repro.sim.events import Event

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_COMPLETED = "completed"
STATE_RETRYING = "retrying"
STATE_FAILED = "failed"

#: States from which a session never moves again.
TERMINAL_STATES = frozenset({STATE_COMPLETED, STATE_FAILED})


class QuerySession:
    """One query's journey through the scheduler.

    Timestamps follow the :class:`~repro.dqp.gdqs.QueryHandle`
    convention: ``submitted_at`` (entered the admission queue),
    ``started_at`` (deployed onto the grid), ``completed_at`` (result
    collected).  ``done`` is the completion event; for sessions that
    start immediately it *is* the handle's own event, so admission at
    concurrency one adds zero simulator events over a direct
    ``GDQS.submit``.
    """

    def __init__(self, session_id: str, query_text: str,
                 adaptivity: AdaptivityConfig | None,
                 degree: int | None, submitted_at: float) -> None:
        self.session_id = session_id
        self.query_text = query_text
        self.adaptivity = adaptivity
        self.degree = degree
        self.state = STATE_QUEUED
        self.submitted_at = submitted_at
        self.started_at: float | None = None
        self.completed_at: float | None = None
        self.handle: QueryHandle | None = None
        self.done: Event | None = None
        #: Machines this session's subplans occupy (set at dispatch).
        self.machines: tuple[str, ...] = ()
        #: Dispatch attempts so far (1 after the first ``mark_started``).
        self.attempts = 0
        #: Terminal failure outcome, set by ``mark_failed``.
        self.failure: QueryFailed | None = None
        #: When the first attempt failed (drives the MTTR metric).
        self.first_failed_at: float | None = None
        #: Machine that sank the previous attempt: excluded on retry.
        self.blacklist: str | None = None

    # -- lifecycle -------------------------------------------------------

    def mark_started(self, handle: QueryHandle, now: float) -> None:
        if self.state not in (STATE_QUEUED, STATE_RETRYING):
            raise SchedulerError(
                f"{self.session_id}: started twice (state {self.state})")
        self.state = STATE_RUNNING
        if self.started_at is None:
            # Queue wait measures time to *first* dispatch; retries
            # account their delay as execution, not queueing.
            self.started_at = now
        self.attempts += 1
        self.handle = handle
        self.machines = tuple(handle.runtime.plan.machines_used())
        # Queue wait becomes visible on the handle too (satellite:
        # wait vs execution are separate, never folded together).
        handle.submitted_at = self.submitted_at

    def mark_completed(self, now: float) -> None:
        if self.state != STATE_RUNNING:
            raise SchedulerError(
                f"{self.session_id}: completed while {self.state}")
        self.state = STATE_COMPLETED
        self.completed_at = now

    def mark_retrying(self, now: float, failure: QueryFailed) -> None:
        if self.state != STATE_RUNNING:
            raise SchedulerError(
                f"{self.session_id}: retried while {self.state}")
        self.state = STATE_RETRYING
        if self.first_failed_at is None:
            self.first_failed_at = now
        self.blacklist = failure.failed_machine

    def mark_failed(self, now: float, failure: QueryFailed) -> None:
        # QUEUED and RETRYING are legal here too: a session can fail
        # before deployment when the surviving grid cannot place its
        # plan (every candidate machine crashed).
        if self.state in TERMINAL_STATES:
            raise SchedulerError(
                f"{self.session_id}: failed while {self.state}")
        self.state = STATE_FAILED
        self.completed_at = now
        self.failure = failure

    # -- derived metrics -------------------------------------------------

    @property
    def result(self) -> QueryResult | None:
        return self.handle.result if self.handle is not None else None

    @property
    def outcome(self) -> QueryResult | QueryFailed | None:
        """The terminal outcome: a result, a typed failure, or None."""
        if self.state == STATE_FAILED:
            return self.failure
        return self.result

    @property
    def queue_wait_ms(self) -> float | None:
        """Admission-queue wait; None while still queued."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def execution_ms(self) -> float | None:
        """Deployment-to-result time; None until completed."""
        if self.completed_at is None or self.started_at is None:
            return None
        return self.completed_at - self.started_at

    @property
    def response_ms(self) -> float | None:
        """Submitter-experienced response: queue wait + execution."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<QuerySession {self.session_id} {self.state} "
                f"{self.query_text[:30]!r}>")


def require_done(session: QuerySession) -> Event:
    """The session's completion event, insisting it exists already."""
    if session.done is None:
        raise SchedulerError(
            f"{session.session_id} has no completion event yet")
    return session.done
