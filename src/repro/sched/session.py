"""Per-query sessions managed by the multi-query scheduler.

A :class:`QuerySession` is the scheduler-side identity of one
submitted query: its position in the admission lifecycle
(queued/running/completed), the lifecycle timestamps that separate
queue wait from execution, and — once dispatched — the underlying
:class:`~repro.dqp.gdqs.QueryHandle`.
"""

from __future__ import annotations

from repro.config import AdaptivityConfig
from repro.dqp.gdqs import QueryHandle, QueryResult
from repro.errors import SchedulerError
from repro.sim.events import Event

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_COMPLETED = "completed"


class QuerySession:
    """One query's journey through the scheduler.

    Timestamps follow the :class:`~repro.dqp.gdqs.QueryHandle`
    convention: ``submitted_at`` (entered the admission queue),
    ``started_at`` (deployed onto the grid), ``completed_at`` (result
    collected).  ``done`` is the completion event; for sessions that
    start immediately it *is* the handle's own event, so admission at
    concurrency one adds zero simulator events over a direct
    ``GDQS.submit``.
    """

    def __init__(self, session_id: str, query_text: str,
                 adaptivity: AdaptivityConfig | None,
                 degree: int | None, submitted_at: float) -> None:
        self.session_id = session_id
        self.query_text = query_text
        self.adaptivity = adaptivity
        self.degree = degree
        self.state = STATE_QUEUED
        self.submitted_at = submitted_at
        self.started_at: float | None = None
        self.completed_at: float | None = None
        self.handle: QueryHandle | None = None
        self.done: Event | None = None
        #: Machines this session's subplans occupy (set at dispatch).
        self.machines: tuple[str, ...] = ()

    # -- lifecycle -------------------------------------------------------

    def mark_started(self, handle: QueryHandle, now: float) -> None:
        if self.state != STATE_QUEUED:
            raise SchedulerError(
                f"{self.session_id}: started twice (state {self.state})")
        self.state = STATE_RUNNING
        self.started_at = now
        self.handle = handle
        self.machines = tuple(handle.runtime.plan.machines_used())
        # Queue wait becomes visible on the handle too (satellite:
        # wait vs execution are separate, never folded together).
        handle.submitted_at = self.submitted_at

    def mark_completed(self, now: float) -> None:
        if self.state != STATE_RUNNING:
            raise SchedulerError(
                f"{self.session_id}: completed while {self.state}")
        self.state = STATE_COMPLETED
        self.completed_at = now

    # -- derived metrics -------------------------------------------------

    @property
    def result(self) -> QueryResult | None:
        return self.handle.result if self.handle is not None else None

    @property
    def queue_wait_ms(self) -> float | None:
        """Admission-queue wait; None while still queued."""
        if self.started_at is None:
            return None
        return self.started_at - self.submitted_at

    @property
    def execution_ms(self) -> float | None:
        """Deployment-to-result time; None until completed."""
        if self.completed_at is None or self.started_at is None:
            return None
        return self.completed_at - self.started_at

    @property
    def response_ms(self) -> float | None:
        """Submitter-experienced response: queue wait + execution."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<QuerySession {self.session_id} {self.state} "
                f"{self.query_text[:30]!r}>")


def require_done(session: QuerySession) -> Event:
    """The session's completion event, insisting it exists already."""
    if session.done is None:
        raise SchedulerError(
            f"{session.session_id} has no completion event yet")
    return session.done
