"""Open-loop workload generation against the multi-query scheduler.

The :class:`WorkloadDriver` models the ROADMAP's heavy-traffic goal in
miniature: queries arrive as a Poisson process (exponential
inter-arrival times from a named, seeded random stream) drawn
round-robin-free from a catalog of query texts, are submitted to a
:class:`~repro.sched.scheduler.QueryScheduler`, and rejections are
counted rather than retried — the arrivals do not slow down when the
grid saturates, which is exactly what exposes the admission queue and
the fair-share contention model.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import AdaptivityConfig
from repro.errors import AdmissionRejected
from repro.sched.scheduler import QueryScheduler


def percentile(values: typing.Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (``fraction`` in [0, 1])."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = min(len(ordered) - 1,
               max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


@dataclasses.dataclass(frozen=True)
class WorkloadSpec:
    """Shape of one open-loop run."""

    #: Mean offered load, in queries per simulated second.
    arrival_rate_qps: float
    #: Arrival window; queries in flight at the horizon still finish.
    duration_ms: float
    #: Query texts sampled uniformly per arrival.
    catalog: tuple
    #: Adaptivity configuration for every session (None = static).
    adaptivity: AdaptivityConfig | None = None
    #: Parallelism cap per session (None = whole pool).
    degree: int | None = None

    def __post_init__(self) -> None:
        if self.arrival_rate_qps <= 0:
            raise ValueError(
                f"arrival rate must be positive: {self.arrival_rate_qps}")
        if self.duration_ms <= 0:
            raise ValueError(
                f"duration must be positive: {self.duration_ms}")
        if not self.catalog:
            raise ValueError("catalog must not be empty")


@dataclasses.dataclass
class WorkloadReport:
    """Outcome of one driven run."""

    offered: int
    admitted: int
    rejected: int
    completed: int
    #: Sessions that settled with a typed failure (includes timeouts).
    failed: int
    #: Retry dispatches performed across all sessions.
    retried: int
    #: Sessions aborted by the per-query deadline.
    timed_out: int
    #: Completed share of terminally-settled sessions.
    availability: float
    #: Simulated milliseconds burnt by attempts that did not complete.
    wasted_work_ms: float
    #: Completions per simulated second over the whole run.
    throughput_qps: float
    queue_wait_p50_ms: float
    queue_wait_p95_ms: float
    response_p50_ms: float
    response_p95_ms: float
    #: Busy fraction per machine over the scheduler's lifetime.
    machine_utilisation: dict
    #: Simulated time when the last session completed.
    makespan_ms: float


class WorkloadDriver:
    """Drives Poisson arrivals from the catalog into the scheduler."""

    def __init__(self, scheduler: QueryScheduler,
                 spec: WorkloadSpec) -> None:
        self.scheduler = scheduler
        self.spec = spec
        self.env = scheduler.env
        #: Deterministic from the grid's master seed: two drivers over
        #: identically-seeded grids replay the same arrival sequence.
        self._rng = scheduler.context.random.stream("workload-driver")
        self.offered = 0
        self.rejected = 0

    def _arrivals(self) -> typing.Generator:
        mean_gap_ms = 1000.0 / self.spec.arrival_rate_qps
        horizon = self.env.now + self.spec.duration_ms
        while True:
            gap = self._rng.expovariate(1.0 / mean_gap_ms)
            if self.env.now + gap >= horizon:
                return
            yield self.env.timeout(gap)
            query_text = self._rng.choice(self.spec.catalog)
            self.offered += 1
            try:
                self.scheduler.submit(query_text,
                                      adaptivity=self.spec.adaptivity,
                                      degree=self.spec.degree)
            except AdmissionRejected:
                self.rejected += 1

    def run(self) -> WorkloadReport:
        """Generate arrivals, drain the grid, and summarise."""
        started = self.env.now
        arrivals = self.env.process(self._arrivals(),
                                    name="workload-driver")
        self.env.run(until=arrivals)
        self.scheduler.drain()
        stats = self.scheduler.statistics()
        makespan = self.env.now - started
        throughput = (stats.completed / (makespan / 1000.0)
                      if makespan > 0 else 0.0)
        return WorkloadReport(
            offered=self.offered,
            admitted=stats.admitted,
            rejected=self.rejected,
            completed=stats.completed,
            failed=stats.failed,
            retried=stats.retried,
            timed_out=stats.timed_out,
            availability=stats.availability,
            wasted_work_ms=stats.wasted_work_ms,
            throughput_qps=throughput,
            queue_wait_p50_ms=percentile(stats.queue_waits_ms, 0.50),
            queue_wait_p95_ms=percentile(stats.queue_waits_ms, 0.95),
            response_p50_ms=percentile(stats.response_ms, 0.50),
            response_p95_ms=percentile(stats.response_ms, 0.95),
            machine_utilisation=stats.machine_utilisation,
            makespan_ms=makespan)
