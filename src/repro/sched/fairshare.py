"""Fair sharing of machine capacity between concurrent sessions.

Each admitted session charges a configurable number of capacity
shares on every machine its subplans occupy (compute machines, data
hosts and the coordinator alike — a scan feed contends for the data
host exactly as a WS call contends for a compute node).  The shares
are the scheduler's residency ledger: they steer new sessions toward
the least-loaded machines (:meth:`FairShare.least_loaded_order`) and
surface capacity pressure through
:meth:`repro.grid.machine.Machine.contention_factor`.

The contention itself needs no extra mechanism: co-resident sessions
share each machine's single FIFO CPU server, so their morsel bursts
queue behind one another and every active tenant slows the others in
proportion to its demand — while an admitted-but-idle session slows
nobody.  The consequences are deliberately left to the paper's own
machinery: a session sharing a busy machine sees its measured M1
costs rise there (CPU queueing counts as processing time, not input
wait), its MonitoringEventDetector notifies, and its Diagnoser
rebalances the workload vector away from the contended machine —
adaptivity under multi-tenancy falls out of the existing loop rather
than being re-implemented in the scheduler.

A single admitted session holds the only shares and the only CPU
demand, so it is bit-for-bit the single-tenant system.
"""

from __future__ import annotations

import typing

from repro.grid.registry import ResourceRegistry
from repro.sched.session import QuerySession


class FairShare:
    """Tracks sessions' capacity shares on the machines they occupy."""

    def __init__(self, registry: ResourceRegistry,
                 session_weight: float = 1.0,
                 machine_capacity: float = 1.0) -> None:
        self.registry = registry
        self.session_weight = session_weight
        self.machine_capacity = machine_capacity
        for machine in registry.machines():
            machine.capacity = machine_capacity

    def admit(self, session: QuerySession) -> None:
        """Charge the session's shares on every machine it occupies."""
        for name in session.machines:
            self.registry.machine(name).acquire_share(
                session.session_id, self.session_weight)

    def release(self, session: QuerySession) -> None:
        """Return the session's shares (idempotent)."""
        for name in session.machines:
            self.registry.machine(name).release_share(session.session_id)

    def load(self, machine_name: str) -> float:
        """Shares currently committed on ``machine_name``."""
        return self.registry.machine(machine_name).committed_shares

    def least_loaded_order(self, candidates: typing.Sequence[str]
                           ) -> list[str]:
        """Candidates sorted by committed shares, stably.

        With uniform load (including the empty grid) this is the input
        order, so placement preferences are a no-op until sessions
        actually pile up somewhere — a property the concurrency-one
        equivalence tests rely on.
        """
        indexed = list(enumerate(candidates))
        indexed.sort(key=lambda pair: (self.load(pair[1]), pair[0]))
        return [name for _index, name in indexed]
