"""Fair sharing of machine capacity between concurrent sessions.

Each admitted session charges a configurable number of capacity
shares on every machine its subplans occupy (compute machines, data
hosts and the coordinator alike — a scan feed contends for the data
host exactly as a WS call contends for a compute node).  The shares
are the scheduler's residency ledger: they steer new sessions toward
the least-loaded machines (:meth:`FairShare.least_loaded_order`) and
surface capacity pressure through
:meth:`repro.grid.machine.Machine.contention_factor`.

The contention itself needs no extra mechanism: co-resident sessions
share each machine's single FIFO CPU server, so their morsel bursts
queue behind one another and every active tenant slows the others in
proportion to its demand — while an admitted-but-idle session slows
nobody.  The consequences are deliberately left to the paper's own
machinery: a session sharing a busy machine sees its measured M1
costs rise there (CPU queueing counts as processing time, not input
wait), its MonitoringEventDetector notifies, and its Diagnoser
rebalances the workload vector away from the contended machine —
adaptivity under multi-tenancy falls out of the existing loop rather
than being re-implemented in the scheduler.

A single admitted session holds the only shares and the only CPU
demand, so it is bit-for-bit the single-tenant system.

Placement ordering is served by an incrementally-maintained
:class:`~repro.sched.fleet.FleetIndex` (least-loaded site, then
least-loaded machine within it), updated on the same admit/release
deltas that charge the shares — never recomputed by walking the
fleet.  :meth:`least_loaded_order` survives unchanged as the O(n log n)
reference implementation the equivalence tests pin the index against.
"""

from __future__ import annotations

import typing

from repro.grid.registry import ResourceRegistry
from repro.sched.fleet import FleetIndex
from repro.sched.session import QuerySession


class FairShare:
    """Tracks sessions' capacity shares on the machines they occupy."""

    def __init__(self, registry: ResourceRegistry,
                 session_weight: float = 1.0,
                 machine_capacity: float = 1.0) -> None:
        self.registry = registry
        self.session_weight = session_weight
        self.machine_capacity = machine_capacity
        # Capacity applies to machines as they exist: already-built
        # ones now, lazy ones at materialization (walking specs here
        # would defeat lazy instantiation by building the whole fleet).
        for machine in registry.materialized_machines():
            machine.capacity = machine_capacity
        registry.on_materialize(self._on_materialize)
        self.index = FleetIndex(registry)

    def _on_materialize(self, machine) -> None:
        machine.capacity = self.machine_capacity

    def _charge(self, name: str, session_id: str, weight: float) -> None:
        machine = self.registry.machine(name)
        machine.acquire_share(session_id, weight)
        # Re-read the ledger sum rather than applying a delta: the
        # index key is then the exact float the legacy sort reads,
        # with no incremental drift.
        self.index.update(name, machine.committed_shares)

    def admit(self, session: QuerySession) -> None:
        """Charge the session's shares on every machine it occupies."""
        for name in session.machines:
            self._charge(name, session.session_id, self.session_weight)

    def release(self, session: QuerySession) -> None:
        """Return the session's shares (idempotent)."""
        for name in session.machines:
            machine = self.registry.machine(name)
            machine.release_share(session.session_id)
            self.index.update(name, machine.committed_shares)

    def load(self, machine_name: str) -> float:
        """Shares currently committed on ``machine_name``."""
        return self.registry.machine(machine_name).committed_shares

    def least_loaded_order(self, candidates: typing.Sequence[str]
                           ) -> list[str]:
        """Candidates sorted by committed shares, stably.

        With uniform load (including the empty grid) this is the input
        order, so placement preferences are a no-op until sessions
        actually pile up somewhere — a property the concurrency-one
        equivalence tests rely on.
        """
        indexed = list(enumerate(candidates))
        indexed.sort(key=lambda pair: (self.load(pair[1]), pair[0]))
        return [name for _index, name in indexed]

    def placement_order(self, limit: int | None = None) -> list[str]:
        """Index-backed placement preference over compute machines.

        Least-loaded site first, then least-loaded machine within each
        site; crashed machines are skipped.  With a single site this
        is bit-identical to ``least_loaded_order`` over the
        crash-filtered compute pool (the property suite pins it);
        ``limit`` bounds the emitted candidates for large fleets.
        """
        return self.index.order(limit=limit)
