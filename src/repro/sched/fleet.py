"""Incremental two-tier load index for fleet-scale placement.

The legacy placement path re-sorted every compute machine's committed
shares on each dispatch (``FairShare.least_loaded_order``) — O(n log n)
per placement over the whole fleet.  This module replaces the sort
with ordered structures maintained *incrementally* on share deltas:

* :class:`LoadIndex` — one tier's least-loaded order, a bisect-kept
  sorted list keyed ``(load, registration_index, name)``.  Updating
  one member is a binary search plus a list splice; enumeration walks
  the already-sorted entries.

* :class:`FleetIndex` — the two-tier topology.  Machines are grouped
  by the registry's sites; each site keeps a member :class:`LoadIndex`
  plus an incrementally-maintained aggregate (total committed shares
  over member count), and a global site tier orders the sites by that
  aggregate.  Placement order is "least-loaded site first, then
  least-loaded machine within each site", optionally truncated to a
  candidate budget so emitting the order costs O(budget), not O(fleet).

**Degenerate single-site bit-identity.**  With one site (every grid
that never names sites) the site tier has one entry and the order is
exactly the flat machine tier: machines sorted by
``(committed_shares, registration_index)``.  The legacy reference
sorted the crash-filtered compute pool stably by
``(committed_shares, pool_position)``; since crash-filtering preserves
relative order, position in the filtered pool is monotone in
registration index and the two keys induce the same order.  Loads are
re-read as ``sum(machine._shares.values())`` at update time — the
exact float the legacy sort computed — so there is no incremental
drift.  The property suite pins this equivalence.

Crashed machines are removed lazily: enumeration skips (and drops)
members whose machine object reports ``is_crashed``.  A machine that
was never materialized cannot have crashed — crashing requires the
object — so enumeration never forces lazy construction.
"""

from __future__ import annotations

import bisect
import typing

from repro.grid.registry import ResourceRegistry


class LoadIndex:
    """One tier's incrementally-maintained least-loaded order.

    Members are keyed ``(load, registration_index, name)``; the
    registration index pins the stable tie-break at equal load, and
    the name makes keys total (indices are unique, the name never
    actually decides).
    """

    def __init__(self) -> None:
        self._entries: list[tuple[float, int, str]] = []
        self._keys: dict[str, tuple[float, int, str]] = {}
        self._order: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._keys

    def add(self, name: str, load: float = 0.0) -> None:
        """Register ``name`` with the next registration index."""
        if name in self._keys:
            raise ValueError(f"duplicate index member: {name}")
        index = self._order.setdefault(name, len(self._order))
        key = (load, index, name)
        bisect.insort(self._entries, key)
        self._keys[name] = key

    def update(self, name: str, load: float) -> None:
        """Re-key ``name`` at ``load`` (no-op for unknown members)."""
        old = self._keys.get(name)
        if old is None:
            return
        if old[0] == load:
            return
        position = bisect.bisect_left(self._entries, old)
        del self._entries[position]
        key = (load, old[1], name)
        bisect.insort(self._entries, key)
        self._keys[name] = key

    def discard(self, name: str) -> None:
        """Remove ``name`` entirely (crashed machine / drained site)."""
        old = self._keys.pop(name, None)
        if old is None:
            return
        position = bisect.bisect_left(self._entries, old)
        del self._entries[position]

    def load(self, name: str) -> float | None:
        key = self._keys.get(name)
        return key[0] if key is not None else None

    def ordered(self) -> typing.Iterator[str]:
        """Members from least to most loaded (stable tie-break)."""
        for _load, _index, name in self._entries:
            yield name


class FleetIndex:
    """Two-tier (site, machine) least-loaded placement order.

    Built over a registry's compute machines; fed load deltas by
    :class:`~repro.sched.fairshare.FairShare` as sessions are admitted
    and released.  Exactly one live index should feed per grid — the
    index mirrors the share ledger it is told about, so a second
    writer charging shares behind its back would go unnoticed (the
    scheduler owns the only FairShare, which owns this index).
    """

    def __init__(self, registry: ResourceRegistry) -> None:
        self.registry = registry
        self._machine_tiers: dict[str, LoadIndex] = {}
        self._site_tier = LoadIndex()
        self._site_of: dict[str, str] = {}
        self._site_total: dict[str, float] = {}
        self._site_count: dict[str, int] = {}
        for name in registry.compute_machines():
            site = registry.site_of(name)
            tier = self._machine_tiers.get(site)
            if tier is None:
                tier = self._machine_tiers[site] = LoadIndex()
                self._site_tier.add(site)
                self._site_total[site] = 0.0
                self._site_count[site] = 0
            machine = registry.peek(name)
            load = machine.committed_shares if machine is not None else 0.0
            tier.add(name, load)
            self._site_of[name] = site
            self._site_total[site] += load
            self._site_count[site] += 1

    def __contains__(self, name: str) -> bool:
        return name in self._site_of

    def site_loads(self) -> dict[str, float]:
        """Aggregate (mean committed shares) per site — an observable."""
        return {site: (self._site_total[site] / self._site_count[site]
                       if self._site_count[site] else 0.0)
                for site in self._machine_tiers}

    def update(self, name: str, load: float) -> None:
        """Record that ``name`` now carries ``load`` committed shares.

        Unknown names (data hosts, the coordinator, spares — machines
        sessions occupy but placement never chooses) are ignored.
        """
        site = self._site_of.get(name)
        if site is None:
            return
        tier = self._machine_tiers[site]
        old = tier.load(name)
        if old is None or old == load:
            return
        tier.update(name, load)
        self._site_total[site] += load - old
        if len(self._machine_tiers) > 1:
            self._refresh_site(site)

    def _refresh_site(self, site: str) -> None:
        count = self._site_count[site]
        mean = self._site_total[site] / count if count else float("inf")
        self._site_tier.update(site, mean)

    def _drop(self, name: str, site: str) -> None:
        tier = self._machine_tiers[site]
        load = tier.load(name)
        if load is None:
            return
        tier.discard(name)
        del self._site_of[name]
        self._site_total[site] -= load
        self._site_count[site] -= 1
        if len(self._machine_tiers) > 1:
            self._refresh_site(site)

    def discard(self, name: str) -> None:
        """Remove a (crashed) machine from placement consideration."""
        site = self._site_of.get(name)
        if site is not None:
            self._drop(name, site)

    def order(self, limit: int | None = None) -> list[str]:
        """Placement preference: least-loaded site, then machine.

        Crashed machines are skipped and dropped as they are
        encountered (their load is removed from the site aggregate),
        so a crash costs one lazy deletion instead of a per-placement
        fleet filter.  ``limit`` truncates the emitted list — the
        candidate-budget fast path for very large fleets.
        """
        registry = self.registry
        out: list[str] = []
        crashed: list[str] = []
        for site in list(self._site_tier.ordered()):
            for name in self._machine_tiers[site].ordered():
                machine = registry.peek(name)
                if machine is not None and machine.is_crashed:
                    crashed.append(name)
                    continue
                out.append(name)
                if limit is not None and len(out) >= limit:
                    break
            if limit is not None and len(out) >= limit:
                break
        for name in crashed:
            self.discard(name)
        return out
