"""Configuration objects for the engine and the adaptivity stack.

Defaults reproduce the paper's "default configuration" (§3.1):
monitoring frequency of one M1 notification per 10 tuples and one M2
per buffer, a 25-event averaging window, and 20% thresholds for both
the detector (``thres_m``) and the diagnoser (``thres_a``).  "All these
values and thresholds are configurable for any component" — as here.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.chaos.config import RetryPolicy
from repro.errors import ConfigurationError

#: Assessment policies (§3.1): A1 ignores communication cost, A2 adds
#: the per-tuple communication cost of the feeding producers.
ASSESSMENT_A1 = "A1"
ASSESSMENT_A2 = "A2"

#: Response policies (§3.1): R1 redistributes the recovery logs
#: (retrospective), R2 only redirects future tuples (prospective).
RESPONSE_R1 = "R1"
RESPONSE_R2 = "R2"


@dataclasses.dataclass(frozen=True)
class AdaptivityConfig:
    """Tuning knobs for the monitor/assess/respond pipeline.

    The controller itself is selected by ``policy`` — any name in
    :func:`repro.policy.default_registry` — with per-policy tunables
    in ``policy_params``.  The paper's four variants keep their legacy
    spelling: leaving ``policy`` unset resolves it from the
    ``assessment``/``response`` axes (``paper-{assessment}{response}``),
    while naming a paper policy explicitly forces both axes to the
    name's pair (the name is authoritative).
    """

    #: Master switch; False reproduces the static OGSA-DQP system.
    enabled: bool = True
    #: M1 notification every this many tuples produced (0 disables
    #: monitoring entirely, as in the overhead experiments).
    m1_interval: int = 10
    #: Sliding-window length in the MonitoringEventDetector.
    window_size: int = 25
    #: Events needed before the detector's first notification.
    min_window_events: int = 1
    #: Relative change of the windowed average that triggers a
    #: detector -> diagnoser notification (thresM).
    thres_m: float = 0.20
    #: Absolute change (ms/tuple) below which an average measured
    #: against a zero baseline counts as unchanged.  A relative gate
    #: is undefined at zero — e.g. a co-located channel whose send
    #: cost is zero — so without this floor any nonzero wobble would
    #: re-notify regardless of ``thres_m``.
    thres_m_floor: float = 1e-6
    #: Relative per-element weight change that triggers a
    #: diagnoser -> responder proposal (thresA).
    thres_a: float = 0.20
    #: Assessment policy: A1 or A2.
    assessment: str = ASSESSMENT_A1
    #: Response policy: R1 (retrospective) or R2 (prospective).
    response: str = RESPONSE_R2
    #: Adaptation-policy name (see :mod:`repro.policy`); None resolves
    #: to the paper variant the assessment/response axes select.
    policy: str | None = None
    #: Per-policy tunables as ``(name, value)`` pairs (kept as a tuple
    #: so the config stays hashable); a mapping is accepted and
    #: normalised at construction.
    policy_params: tuple = ()
    #: The responder skips adaptations once the producers report this
    #: fraction of tuples already distributed (progress estimation [7]).
    progress_cutoff: float = 0.92
    #: Minimum time between accepted adaptations.
    cooldown_ms: float = 500.0
    #: Time the Responder spends estimating progress before deciding:
    #: the SQL-progress-estimation of [7] plus the SOAP round trips of
    #: a 2005 Grid-service stack are not free.
    decision_latency_ms: float = 3300.0
    #: Bucket count for hash-partitioned (stateful) subplans.
    hash_buckets: int = 256

    def __post_init__(self) -> None:
        # Registry-backed policy validation.  Imported lazily: the
        # policy package imports this module's constants at load time,
        # but validation only runs when a config is instantiated, by
        # which point both modules exist.
        from repro.policy import default_registry
        registry = default_registry()
        if isinstance(self.policy_params, typing.Mapping):
            object.__setattr__(self, "policy_params",
                               tuple(sorted(self.policy_params.items())))
        if self.policy is not None:
            if self.policy not in registry:
                raise ConfigurationError(
                    f"unknown adaptation policy: {self.policy!r} "
                    f"(registered policies: "
                    f"{', '.join(registry.names())})")
            axes = registry.paper_axes(self.policy)
            if axes is not None:
                # A paper name is authoritative over the legacy axes.
                object.__setattr__(self, "assessment", axes[0])
                object.__setattr__(self, "response", axes[1])
        if self.assessment not in registry.assessments():
            raise ConfigurationError(
                f"unknown assessment policy: {self.assessment!r} "
                f"(valid assessments: "
                f"{', '.join(registry.assessments())}; registered "
                f"policies: {', '.join(registry.names())})")
        if self.response not in registry.responses():
            raise ConfigurationError(
                f"unknown response policy: {self.response!r} "
                f"(valid responses: {', '.join(registry.responses())}; "
                f"registered policies: {', '.join(registry.names())})")
        registry.validate_params(self.policy_name,
                                 dict(self.policy_params))
        if self.m1_interval < 0:
            raise ConfigurationError(
                f"m1_interval must be >= 0: {self.m1_interval}")
        if self.window_size < 3:
            raise ConfigurationError(
                f"window_size must be >= 3 for trimmed averaging: "
                f"{self.window_size}")
        if not 0 < self.min_window_events <= self.window_size:
            raise ConfigurationError(
                f"min_window_events must be in (0, window_size]: "
                f"{self.min_window_events}")
        if self.thres_m < 0 or self.thres_a < 0:
            raise ConfigurationError("thresholds must be non-negative")
        if self.thres_m_floor < 0:
            raise ConfigurationError(
                f"thres_m_floor must be non-negative: {self.thres_m_floor}")
        if not 0 < self.progress_cutoff <= 1:
            raise ConfigurationError(
                f"progress_cutoff must be in (0, 1]: {self.progress_cutoff}")
        if self.hash_buckets < 1:
            raise ConfigurationError(
                f"hash_buckets must be >= 1: {self.hash_buckets}")

    @property
    def retrospective(self) -> bool:
        """True when the response policy recreates state (R1)."""
        return self.response == RESPONSE_R1

    @property
    def policy_name(self) -> str:
        """The registry name this config resolves to."""
        if self.policy is not None:
            return self.policy
        return f"paper-{self.assessment}{self.response}"

    def params(self) -> dict:
        """``policy_params`` as a plain dict."""
        return dict(self.policy_params)

    def replace(self, **changes) -> "AdaptivityConfig":
        """A copy with some fields changed."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def disabled(cls) -> "AdaptivityConfig":
        """The static (non-adaptive) configuration."""
        return cls(enabled=False)


@dataclasses.dataclass(frozen=True)
class FaultToleranceConfig:
    """Failure detection and recovery parameters.

    The paper's response stage reuses infrastructure "developed mainly
    to attain fault tolerance" [18]; with ``enabled`` the system also
    exercises that original purpose: GQESs heartbeat to the GDQS, and
    a missed deadline triggers re-creation of the lost evaluators on a
    replacement machine with recovery-log replay.
    """

    enabled: bool = False
    heartbeat_interval_ms: float = 500.0
    #: A GQES silent for this long is declared failed.
    failure_timeout_ms: float = 1600.0
    #: A GQES silent for this long (but shorter than the failure
    #: timeout) is declared *suspect*: its clones are quarantined —
    #: weights driven to zero, recovery logs retained — and
    #: reintegrated if heartbeats resume.  ``None`` disables the
    #: suspect state entirely (clones go straight from alive to dead,
    #: exactly the pre-chaos behaviour).
    suspect_timeout_ms: float | None = None
    #: Timeout for the Responder's/GDQS's service calls so a crashed
    #: peer cannot hang a control interaction forever.
    call_timeout_ms: float = 5000.0
    #: Recovery budget per query: after this many successful machine
    #: recoveries a further failure terminates the query with a typed
    #: :class:`~repro.dqp.gdqs.QueryFailed` outcome instead of
    #: rebuilding again.  ``None`` (the default, and the pre-budget
    #: behaviour) recovers without limit; ``0`` fails on the first
    #: machine death.
    max_recoveries: int | None = None
    #: Whether heartbeat monitoring coalesces every watched query into
    #: one shared timer wheel per GDQS (one tick per interval for the
    #: whole query population) instead of a dedicated per-query timer.
    #: For non-overlapping queries the wheel is event-for-event the
    #: per-query monitor; overlapping queries share the wheel's phase,
    #: which can shift a detection by less than one heartbeat interval
    #: (both modes are individually deterministic).  False keeps the
    #: legacy per-query monitors as the A/B reference.
    heartbeat_wheel: bool = True

    def __post_init__(self) -> None:
        if self.heartbeat_interval_ms <= 0:
            raise ConfigurationError(
                f"heartbeat interval must be positive: "
                f"{self.heartbeat_interval_ms}")
        if self.failure_timeout_ms <= self.heartbeat_interval_ms:
            raise ConfigurationError(
                "failure timeout must exceed the heartbeat interval")
        if self.suspect_timeout_ms is not None:
            if not (self.heartbeat_interval_ms < self.suspect_timeout_ms
                    < self.failure_timeout_ms):
                raise ConfigurationError(
                    "suspect timeout must lie strictly between the "
                    "heartbeat interval and the failure timeout: "
                    f"{self.heartbeat_interval_ms} < "
                    f"{self.suspect_timeout_ms} < "
                    f"{self.failure_timeout_ms} does not hold")
        if self.call_timeout_ms <= 0:
            raise ConfigurationError(
                f"call timeout must be positive: {self.call_timeout_ms}")
        if self.max_recoveries is not None and self.max_recoveries < 0:
            raise ConfigurationError(
                f"max_recoveries must be >= 0 or None: "
                f"{self.max_recoveries}")

    def replace(self, **changes) -> "FaultToleranceConfig":
        return dataclasses.replace(self, **changes)


@dataclasses.dataclass(frozen=True)
class SchedulerConfig:
    """Multi-query scheduler parameters (admission and fair sharing).

    The scheduler runs at most ``max_concurrent`` queries at once,
    holds up to ``max_queued`` more in a FIFO admission queue, and
    refuses further submissions with
    :class:`~repro.errors.AdmissionRejected`.  When ``fair_share`` is
    on, each running session charges ``session_weight`` shares against
    every machine its subplans occupy; the share ledger steers new
    sessions toward the least-loaded machines and reports capacity
    pressure where committed shares exceed ``machine_capacity`` (see
    :meth:`repro.grid.machine.Machine.contention_factor`).  The
    contention itself comes from co-resident sessions queueing at
    each machine's FIFO CPU, with or without the ledger.
    """

    #: Sessions allowed to execute simultaneously.
    max_concurrent: int = 4
    #: Bounded FIFO admission queue behind the running set.
    max_queued: int = 16
    #: Whether sessions charge capacity shares on their machines.
    fair_share: bool = True
    #: Shares one running session charges on each machine it uses.
    session_weight: float = 1.0
    #: Shares a machine absorbs before reporting capacity pressure.
    machine_capacity: float = 1.0
    #: Prefer the least-loaded compute machines when a session's
    #: parallelism degree does not need the whole pool.
    load_aware_placement: bool = True
    #: Per-query deadline (per attempt): a session executing longer
    #: than this is aborted with a typed ``deadline-exceeded`` failure
    #: and its FairShare capacity released.  ``None`` (default) never
    #: times out and schedules no deadline events — the zero-cost
    #: baseline timeline is untouched.
    query_timeout_ms: float | None = None
    #: Retry policy for failed sessions: ``max_attempts`` bounds the
    #: *total* attempts (so ``max_attempts=3`` allows two retries) and
    #: the capped exponential backoff paces re-submission.  Must be
    #: bounded — an unbounded scheduler retry against a permanently
    #: failing query never terminates.  ``None`` (default) never
    #: retries; deadline timeouts are terminal regardless (retrying a
    #: query that already spent its SLA only doubles the damage).
    retry: RetryPolicy | None = None
    #: Circuit breaker: consecutive-window failure count that opens a
    #: machine's breaker (placement steers away until a cooled-down
    #: half-open probe succeeds).  0 disables the health ledger.
    breaker_threshold: int = 3
    #: Sliding window over which failures accumulate toward the
    #: threshold.
    breaker_window_ms: float = 30000.0
    #: Time an open breaker waits before half-opening one probe.
    breaker_cooldown_ms: float = 60000.0
    #: Candidate budget for load-aware placement: the scheduler hands
    #: the optimizer only the ``placement_candidates`` least-loaded
    #: machines (plus any breaker-tripped stragglers) instead of the
    #: whole fleet's ordering.  ``None`` (default) emits the full
    #: order — bit-identical to the legacy sort-everything path; an
    #: integer bounds per-placement work for fleet-scale grids and
    #: must cover the largest parallelism degree submitted.
    placement_candidates: int | None = None

    def __post_init__(self) -> None:
        if self.max_concurrent < 1:
            raise ConfigurationError(
                f"max_concurrent must be >= 1: {self.max_concurrent}")
        if self.max_queued < 0:
            raise ConfigurationError(
                f"max_queued must be >= 0: {self.max_queued}")
        if self.session_weight <= 0:
            raise ConfigurationError(
                f"session_weight must be positive: {self.session_weight}")
        if self.machine_capacity <= 0:
            raise ConfigurationError(
                f"machine_capacity must be positive: "
                f"{self.machine_capacity}")
        if self.query_timeout_ms is not None and self.query_timeout_ms <= 0:
            raise ConfigurationError(
                f"query_timeout_ms must be positive or None: "
                f"{self.query_timeout_ms}")
        if self.retry is not None and self.retry.max_attempts is None:
            raise ConfigurationError(
                "scheduler retry must be bounded (max_attempts set): "
                "an unbounded retry against a permanently failing "
                "query never terminates")
        if self.breaker_threshold < 0:
            raise ConfigurationError(
                f"breaker_threshold must be >= 0: "
                f"{self.breaker_threshold}")
        if self.breaker_window_ms <= 0 or self.breaker_cooldown_ms <= 0:
            raise ConfigurationError(
                "breaker window and cooldown must be positive")
        if (self.placement_candidates is not None
                and self.placement_candidates < 1):
            raise ConfigurationError(
                f"placement_candidates must be >= 1 or None: "
                f"{self.placement_candidates}")

    @property
    def resilient(self) -> bool:
        """Whether any failure-handling feature is configured.

        When False every session's ``done`` event *is* its handle's
        event, exactly the pre-resilience wiring.
        """
        return self.query_timeout_ms is not None or self.retry is not None

    def replace(self, **changes) -> "SchedulerConfig":
        return dataclasses.replace(self, **changes)


@dataclasses.dataclass(frozen=True)
class EngineConfig:
    """Query-engine execution parameters."""

    #: Morsel size of the batch-granular execution core: operators move
    #: up to this many tuples per ``next_batch`` call, with per-tuple
    #: CPU costs aggregated into one simulator event per batch.  1
    #: degrades to the original per-tuple iterator pipeline (exact seed
    #: semantics, used for A/B equivalence testing).
    batch_size: int = 32
    #: Tuples per exchange buffer (one M2 event per buffer sent).
    buffer_size: int = 50
    #: Checkpoint tuples inserted every this many data tuples per
    #: channel (the fault-tolerance granularity of [18]).
    checkpoint_interval: int = 50
    #: Whether recovery logging is active.  Retrospective response
    #: requires it; it is the source of R1's extra overhead.
    logging_enabled: bool = True
    #: Whether the DES kernel's allocation-avoiding fast path is
    #: active (event pooling, same-slot coalescing, inline resumes).
    #: Observably identical either way — same rows, timeline and
    #: ``events_scheduled`` — so False exists purely as the A/B
    #: reference for equivalence testing and overhead measurement.
    kernel_fast_path: bool = True
    #: Whether the columnar data plane is active: morsels travel as
    #: column-backed :class:`~repro.data.batch.Batch` blocks (lazy
    #: ``Row`` materialization) and exchange buffers ship whole blocks
    #: instead of per-tuple wire entries.  Like ``kernel_fast_path``
    #: this is a host-cost knob only — rows, timeline and
    #: ``events_scheduled`` are identical either way — and
    #: ``batch_size=1`` degrades the columnar path to the original
    #: per-tuple semantics regardless of this flag.
    columnar: bool = True

    def __post_init__(self) -> None:
        # The three sizes drive range() bounds and chunk arithmetic all
        # over the engine; a float (or bool) slips through a pure
        # ``< 1`` check and fails far from the construction site, so
        # the type is validated here too.
        for field in ("batch_size", "buffer_size", "checkpoint_interval"):
            value = getattr(self, field)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigurationError(
                    f"{field} must be an integer: {value!r}")
            if value < 1:
                raise ConfigurationError(
                    f"{field} must be >= 1: {value}")

    def replace(self, **changes) -> "EngineConfig":
        return dataclasses.replace(self, **changes)


@dataclasses.dataclass(frozen=True)
class CostModel:
    """CPU work constants (ms at speed 1.0) for engine activities.

    Calibrated in :mod:`repro.workloads.scenarios` so the static system
    reproduces the paper's anchor measurements (e.g. a 10x WS
    perturbation degrading Q1 by ~3.5x).
    """

    #: Generic per-tuple scan cost added on top of each Grid Data
    #: Service's own ``access_work_per_tuple`` (usually 0: access costs
    #: are table-specific).
    scan_work_per_tuple: float = 0.0
    #: Operation-call plumbing per invocation (excludes the WS work).
    opcall_overhead_work: float = 0.3
    #: Hash-join build cost per tuple.
    join_build_work: float = 0.35
    #: Hash-join probe cost per tuple (per input tuple, not per match).
    join_probe_work: float = 0.6
    #: Projection / selection costs per tuple.
    project_work: float = 0.02
    select_work: float = 0.03
    #: Result collection cost per tuple at the sink.
    sink_work: float = 0.05
    #: Self-monitoring instrumentation cost per tuple (paper [10]:
    #: "very low overhead").
    instrument_work_per_tuple: float = 0.2
    #: Cost to assemble and emit one raw monitoring event.
    monitor_event_work: float = 0.5
    #: Detector/diagnoser/responder processing cost per notification.
    control_event_work: float = 0.5
    #: Recovery-log append per tuple (R1 logging overhead); the
    #: per-byte part models copying the outgoing data into the log.
    log_append_work: float = 0.1
    log_append_work_per_byte: float = 0.0012
    #: Recovery-log extraction per tuple during retrospective moves.
    log_extract_work: float = 0.3
    #: Checkpoint/acknowledgement handling per checkpoint.
    ack_work: float = 0.6

    def replace(self, **changes) -> "CostModel":
        return dataclasses.replace(self, **changes)
