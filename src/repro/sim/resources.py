"""CPU resource model.

Each simulated machine owns one :class:`Cpu` per core (the evaluation
machines in the paper are single-CPU Linux boxes, so the default is a
single FIFO server).  Work is expressed in *work units*: milliseconds
of CPU time on a machine of speed 1.0.  The actual service time of a
task is ``work / speed``, with the speed sampled when the task starts
service, so time-varying load profiles take effect as tasks begin.
"""

from __future__ import annotations

import collections
import typing

from repro.errors import SimulationError
from repro.sim.environment import Environment
from repro.sim.events import Event

SpeedFunction = typing.Callable[[float], float]


class CpuTask(Event):
    """A queued unit of CPU work; fires when the work completes.

    The value is the service time actually consumed (useful for
    self-monitoring operators, which report measured costs).
    """

    __slots__ = ("work", "label", "queued_at", "started_at")

    def __init__(self, env: Environment, work: float, label: str) -> None:
        super().__init__(env)
        self.work = work
        self.label = label
        self.queued_at = env.now
        self.started_at: float | None = None


class Cpu:
    """A FIFO single-server CPU.

    ``speed`` may be a constant or a function of simulation time; a
    speed of 2.0 halves service times.  Utilisation statistics are kept
    so experiments can report busy/idle breakdowns.
    """

    def __init__(self, env: Environment,
                 speed: float | SpeedFunction = 1.0) -> None:
        self.env = env
        if callable(speed):
            self._speed_fn: SpeedFunction = speed
        else:
            if speed <= 0:
                raise SimulationError(f"cpu speed must be positive: {speed}")
            constant = float(speed)
            self._speed_fn = lambda _t: constant
        self._pending: collections.deque[CpuTask] = collections.deque()
        self._serving = False
        #: The task currently in service and its computed duration,
        #: carried between ``_serve_step`` scheduling the service
        #: timeout and ``_on_task_done`` completing the task.
        self._current: CpuTask | None = None
        self._current_duration = 0.0
        self._frozen_until = 0.0
        self._closed = False
        self.busy_time = 0.0
        self.tasks_completed = 0
        #: Optional telemetry hook: an object with ``sample(value)``
        #: called with the queue length at every enqueue and
        #: completion.  Must be a pure recorder (no events, no CPU
        #: charges) so attaching one cannot change the simulation.
        self.queue_sampler = None

    def speed_at(self, time: float) -> float:
        """Effective speed factor at ``time``."""
        value = self._speed_fn(time)
        if value <= 0:
            raise SimulationError(f"cpu speed function returned {value}")
        return value

    @property
    def queue_length(self) -> int:
        """Number of tasks waiting or in service."""
        return len(self._pending) + (1 if self._serving else 0)

    def execute(self, work: float, label: str = "work") -> CpuTask:
        """Submit ``work`` units; the returned event fires on completion."""
        if work < 0:
            raise SimulationError(f"negative cpu work: {work}")
        task = CpuTask(self.env, work, label)
        self._pending.append(task)
        if self.queue_sampler is not None:
            self.queue_sampler.sample(self.queue_length)
        if not self._serving and not self._closed:
            # Claim the server slot synchronously: the server only
            # starts on the next kernel step, and a second execute()
            # call in the meantime must not wake it twice.
            self._serving = True
            wake = Event(self.env)
            wake.callbacks.append(self._on_wake)
            wake.succeed(None)
        return task

    def freeze_until(self, until: float) -> None:
        """Stall the server: no task starts service before ``until``.

        Queued and newly submitted work is retained and drains once the
        freeze expires — a transient stall, not a crash.
        """
        self._frozen_until = max(self._frozen_until, until)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Permanently close the server gate (machine crash).

        Queued and future tasks never start service and their events
        never fire, so processes waiting on them suspend harmlessly —
        crucially *without* scheduling anything, which keeps
        ``env.run()`` terminating (an infinite ``freeze_until`` would
        park the server behind an unbounded timeout event instead).
        The task already in service completes: its timeout is on the
        heap and fail-stop is modelled at the service layer, where the
        host's endpoints are already deactivated.
        """
        self._closed = True

    def _on_wake(self, _event: Event) -> None:
        """Burst start: the wake event scheduled by :meth:`execute` fired."""
        self._serve_step()

    def _on_thaw(self, _event: Event) -> None:
        """A freeze-wait timeout expired; re-check and keep serving."""
        self._serve_step()

    def _on_task_done(self, _event: Event) -> None:
        """The in-service task's timeout fired: complete it, continue."""
        task = self._current
        duration = self._current_duration
        self._current = None
        self.busy_time += duration
        self.tasks_completed += 1
        if self.queue_sampler is not None:
            self.queue_sampler.sample(self.queue_length - 1)
        task.succeed(duration)
        self._serve_step()

    def _serve_step(self) -> None:
        """Advance the FIFO server as far as it can go without waiting.

        The server is a callback state machine rather than a process:
        the simulator's single hottest loop spent a Process + generator
        + bootstrap/done event dispatch per burst plus a generator
        resume per task, all of it pure host overhead.  Event
        accounting is identical to the historical process-per-burst
        server, so ``events_scheduled`` and the timeline are
        bit-for-bit unchanged:

        * burst start — the old server's Process bootstrap scheduled
          one event; the wake event in :meth:`execute` schedules one
          event at the same position, and its dispatch runs this step
          exactly where the bootstrap's dispatch resumed the old
          generator;
        * freeze waits and task service — one timeout each, exactly as
          the old generator yielded them, with completion bookkeeping
          running at the timeout's dispatch either way;
        * burst end — the old generator's return made the Process
          event schedule itself (one event, dispatched later as a
          callback-less no-op that runs no user code).  The park
          consumes that sequence number directly (``env._seq += 1``).
          Removing a no-op dispatch cannot reorder user callbacks, and
          consuming its number keeps every later event's heap key —
          and therefore all tie-breaking — unchanged.
        """
        env = self.env
        pending = self._pending
        while True:
            if self._closed:
                # Crashed: park forever without scheduling.  _serving
                # stays True so no wake event is ever created again.
                return
            if not pending:
                self._serving = False
                env._seq += 1
                return
            if self._frozen_until > env._now:
                timeout = env.timeout(self._frozen_until - env._now)
                timeout.callbacks.append(self._on_thaw)
                return
            task = pending.popleft()
            task.started_at = env._now
            duration = task.work / self.speed_at(env._now)
            if duration > 0:
                self._current = task
                self._current_duration = duration
                timeout = env.timeout(duration)
                timeout.callbacks.append(self._on_task_done)
                return
            self.busy_time += duration
            self.tasks_completed += 1
            if self.queue_sampler is not None:
                self.queue_sampler.sample(self.queue_length - 1)
            task.succeed(duration)

    def utilisation(self, horizon: float | None = None) -> float:
        """Fraction of time busy over ``[0, horizon]`` (default: now)."""
        horizon = self.env.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)
