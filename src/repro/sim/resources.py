"""CPU resource model.

Each simulated machine owns one :class:`Cpu` per core (the evaluation
machines in the paper are single-CPU Linux boxes, so the default is a
single FIFO server).  Work is expressed in *work units*: milliseconds
of CPU time on a machine of speed 1.0.  The actual service time of a
task is ``work / speed``, with the speed sampled when the task starts
service, so time-varying load profiles take effect as tasks begin.
"""

from __future__ import annotations

import collections
import typing

from repro.errors import SimulationError
from repro.sim.environment import Environment
from repro.sim.events import Event

SpeedFunction = typing.Callable[[float], float]


class CpuTask(Event):
    """A queued unit of CPU work; fires when the work completes.

    The value is the service time actually consumed (useful for
    self-monitoring operators, which report measured costs).
    """

    __slots__ = ("work", "label", "queued_at", "started_at")

    def __init__(self, env: Environment, work: float, label: str) -> None:
        super().__init__(env)
        self.work = work
        self.label = label
        self.queued_at = env.now
        self.started_at: float | None = None


class Cpu:
    """A FIFO single-server CPU.

    ``speed`` may be a constant or a function of simulation time; a
    speed of 2.0 halves service times.  Utilisation statistics are kept
    so experiments can report busy/idle breakdowns.
    """

    def __init__(self, env: Environment,
                 speed: float | SpeedFunction = 1.0) -> None:
        self.env = env
        if callable(speed):
            self._speed_fn: SpeedFunction = speed
        else:
            if speed <= 0:
                raise SimulationError(f"cpu speed must be positive: {speed}")
            constant = float(speed)
            self._speed_fn = lambda _t: constant
        self._pending: collections.deque[CpuTask] = collections.deque()
        self._serving = False
        self._frozen_until = 0.0
        self.busy_time = 0.0
        self.tasks_completed = 0
        #: Optional telemetry hook: an object with ``sample(value)``
        #: called with the queue length at every enqueue and
        #: completion.  Must be a pure recorder (no events, no CPU
        #: charges) so attaching one cannot change the simulation.
        self.queue_sampler = None

    def speed_at(self, time: float) -> float:
        """Effective speed factor at ``time``."""
        value = self._speed_fn(time)
        if value <= 0:
            raise SimulationError(f"cpu speed function returned {value}")
        return value

    @property
    def queue_length(self) -> int:
        """Number of tasks waiting or in service."""
        return len(self._pending) + (1 if self._serving else 0)

    def execute(self, work: float, label: str = "work") -> CpuTask:
        """Submit ``work`` units; the returned event fires on completion."""
        if work < 0:
            raise SimulationError(f"negative cpu work: {work}")
        task = CpuTask(self.env, work, label)
        self._pending.append(task)
        if self.queue_sampler is not None:
            self.queue_sampler.sample(self.queue_length)
        if not self._serving:
            # Claim the server slot synchronously: the process itself only
            # starts on the next kernel step, and a second execute() call in
            # the meantime must not spawn a competing server.
            self._serving = True
            self.env.process(self._serve(), name="cpu-server")
        return task

    def freeze_until(self, until: float) -> None:
        """Stall the server: no task starts service before ``until``.

        Queued and newly submitted work is retained and drains once the
        freeze expires — a transient stall, not a crash.
        """
        self._frozen_until = max(self._frozen_until, until)

    def _serve(self) -> typing.Generator[Event, typing.Any, None]:
        try:
            while self._pending:
                while self._frozen_until > self.env.now:
                    yield self.env.timeout(self._frozen_until - self.env.now)
                task = self._pending.popleft()
                task.started_at = self.env.now
                duration = task.work / self.speed_at(self.env.now)
                if duration > 0:
                    yield self.env.timeout(duration)
                self.busy_time += duration
                self.tasks_completed += 1
                if self.queue_sampler is not None:
                    self.queue_sampler.sample(self.queue_length - 1)
                task.succeed(duration)
        finally:
            self._serving = False

    def utilisation(self, horizon: float | None = None) -> float:
        """Fraction of time busy over ``[0, horizon]`` (default: now)."""
        horizon = self.env.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)
