"""Deterministic, named random streams.

Every stochastic element of the simulation (data generation,
perturbation noise, per-tuple cost jitter) draws from its own named
stream, derived from a single master seed.  Adding a new consumer of
randomness therefore never perturbs the draws seen by existing ones,
which keeps experiment results reproducible across code changes.
"""

from __future__ import annotations

import hashlib
import random


class RandomStreams:
    """A factory of independent, deterministic ``random.Random`` streams."""

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.master_seed}:{name}".encode()).digest()
            self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big"))
        return self._streams[name]

    def fork(self, name: str) -> "RandomStreams":
        """Derive a child factory with an independent seed space."""
        digest = hashlib.sha256(
            f"{self.master_seed}/fork:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "big"))
