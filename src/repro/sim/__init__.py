"""Deterministic discrete-event simulation kernel.

A minimal, SimPy-style kernel: generator-based processes wait on
events; the environment advances a simulated clock.  All higher layers
(network, machines, services, query engine) are built as processes on
top of this kernel, so every experiment is reproducible bit-for-bit
from its seed.
"""

from repro.sim.environment import Environment, Process
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.rand import RandomStreams
from repro.sim.resources import Cpu, CpuTask
from repro.sim.stores import Store, StoreGet, StorePut

__all__ = [
    "AllOf",
    "AnyOf",
    "Cpu",
    "CpuTask",
    "Environment",
    "Event",
    "Process",
    "RandomStreams",
    "Store",
    "StoreGet",
    "StorePut",
    "Timeout",
]
