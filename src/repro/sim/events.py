"""Event primitives for the discrete-event simulation kernel.

The kernel follows the classic event-scheduling design used by SimPy:
an :class:`Event` is a one-shot occurrence that processes can wait on;
an :class:`~repro.sim.environment.Environment` owns a time-ordered queue
of triggered events and fires their callbacks in order.

Only the features needed by the query-processing simulation are
implemented: plain events, timeouts, and the ``AllOf``/``AnyOf``
combinators.  Events are deliberately single-shot; re-triggering one is
a :class:`~repro.errors.SimulationError`.
"""

from __future__ import annotations

import typing

from repro.errors import SimulationError

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.environment import Environment

#: Sentinel for "the event has not produced a value yet".
_UNSET = object()

#: Scheduling priority for control-ish events (fires before NORMAL at
#: the same timestamp).
PRIORITY_URGENT = 0
#: Default scheduling priority.
PRIORITY_NORMAL = 1


class Event:
    """A one-shot occurrence in simulated time.

    An event starts *untriggered*.  Calling :meth:`succeed` or
    :meth:`fail` triggers it, which schedules it with the environment;
    when the environment processes it, all registered callbacks run and
    the event becomes *processed*.

    Processes wait on events by ``yield``-ing them; see
    :class:`repro.sim.environment.Process`.

    Events are slotted: simulations allocate one per timeout, CPU task
    and store operation, so the per-instance ``__dict__`` is worth
    eliminating.  Subclasses must declare ``__slots__`` too (an empty
    tuple when they add no attributes).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_processed")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: list[typing.Callable[["Event"], None]] = []
        self._value: typing.Any = _UNSET
        self._ok: bool | None = None
        self._processed = False

    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _UNSET

    @property
    def processed(self) -> bool:
        """True once the environment has fired this event's callbacks."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event value inspected before trigger")
        return self._ok

    @property
    def value(self) -> typing.Any:
        """The event's payload (or exception, if it failed)."""
        if self._value is _UNSET:
            raise SimulationError("event value inspected before trigger")
        return self._value

    def succeed(self, value: typing.Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        A process waiting on the event sees the exception re-raised at
        its ``yield`` statement.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError(f"fail() needs an exception, got {exception!r}")
        if self.triggered:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def _mark_processed(self) -> None:
        self._processed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "processed" if self._processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` units of simulated time from now."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float,
                 value: typing.Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)


class AllOf(Event):
    """Succeeds when every child event has succeeded.

    The value is the list of child values in construction order.  If any
    child fails, this event fails with that child's exception (first
    failure wins).

    An **empty** sequence succeeds immediately with ``[]`` — the
    conjunction of no conditions is vacuously true, so barrier-style
    code (``yield env.all_of(acks)``) needs no special case when a
    batch produced nothing to wait for.
    """

    __slots__ = ("_children", "_pending")

    def __init__(self, env: "Environment",
                 events: typing.Sequence[Event]) -> None:
        super().__init__(env)
        self._children = list(events)
        self._pending = len(self._children)
        if self._pending == 0:
            self.succeed([])
            return
        for child in self._children:
            _observe(child, self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child.value)
            return
        self._pending -= 1
        if self._pending == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Event):
    """Succeeds as soon as any child event triggers.

    The value is a ``(event, value)`` pair identifying the winner.  A
    failing child fails this event.

    An **empty** sequence is a :class:`~repro.errors.SimulationError`:
    a race with no contestants can never produce a winner, so waiting
    on one would deadlock the process — better to fail loudly at
    construction time.
    """

    __slots__ = ("_children",)

    def __init__(self, env: "Environment",
                 events: typing.Sequence[Event]) -> None:
        super().__init__(env)
        self._children = list(events)
        if not self._children:
            raise SimulationError(
                "AnyOf needs at least one event: an empty race has no "
                "winner and would wait forever")
        for child in self._children:
            _observe(child, self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if child.ok:
            self.succeed((child, child.value))
        else:
            self.fail(child.value)


def _observe(event: Event, callback: typing.Callable[[Event], None]) -> None:
    """Attach ``callback`` to ``event``, firing immediately if needed."""
    if event.processed:
        callback(event)
    else:
        event.callbacks.append(callback)
