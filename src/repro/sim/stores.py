"""Queues for inter-process communication in the simulation.

:class:`Store` is a FIFO buffer of arbitrary items with optional
capacity.  Producers ``yield store.put(item)``; consumers
``yield store.get()``.  Both sides block (in simulated time) when the
store is full/empty.  The paper's exchange operators use unbounded
stores ("the incoming queues within exchanges can fit the complete
dataset", §3.2) but bounded stores are supported for back-pressure
experiments.
"""

from __future__ import annotations

import collections
import typing

from repro.errors import SimulationError
from repro.sim.environment import Environment
from repro.sim.events import Event


class StorePut(Event):
    """Pending put request; succeeds once the item is buffered."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: typing.Any) -> None:
        super().__init__(store.env)
        self.item = item


class StoreGet(Event):
    """Pending get request; succeeds with the dequeued item."""

    __slots__ = ()


class Store:
    """A FIFO item buffer with optional capacity.

    Items are handed to getters strictly in arrival order, and blocked
    putters are admitted in request order, so the store is fair and the
    simulation stays deterministic.
    """

    def __init__(self, env: Environment,
                 capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise SimulationError(f"store capacity must be positive: {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: collections.deque[typing.Any] = collections.deque()
        self._putters: collections.deque[StorePut] = collections.deque()
        self._getters: collections.deque[StoreGet] = collections.deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def is_empty(self) -> bool:
        return not self.items

    @property
    def waiting_getters(self) -> int:
        """Number of get() requests currently blocked."""
        return len(self._getters)

    def put(self, item: typing.Any) -> StorePut:
        """Queue ``item``; the returned event fires once it is stored."""
        request = StorePut(self, item)
        self._putters.append(request)
        self._settle()
        return request

    def get(self) -> StoreGet:
        """Request the next item; the event's value is the item."""
        request = StoreGet(self.env)
        self._getters.append(request)
        self._settle()
        return request

    def put_many(self, items: typing.Iterable[typing.Any]
                 ) -> list[StorePut]:
        """Buffer many items at once, without per-item put events.

        Fire-and-forget equivalent of ``put`` for each item: when no
        putter is blocked and capacity allows, the items are appended
        directly (one ``_settle`` wakes any waiting getters).  When the
        store could block, falls back to individual ``put`` calls so
        bounded stores keep their back-pressure semantics; the blocked
        requests are returned.
        """
        items = list(items)
        if self._putters or len(self.items) + len(items) > self.capacity:
            return [self.put(item) for item in items]
        self.items.extend(items)
        self._settle()
        return []

    def take(self, max_items: int) -> list[typing.Any]:
        """Synchronously dequeue up to ``max_items`` buffered items.

        The batch-path complement of ``get``: no StoreGet event per
        item.  Returns nothing while a blocked getter exists (it has
        priority on the next arrival) — callers then fall back to
        ``get``.
        """
        if max_items < 1 or self._getters:
            return []
        taken: list[typing.Any] = []
        while self.items and len(taken) < max_items:
            taken.append(self.items.popleft())
        if taken:
            self._settle()
        return taken

    def put_back(self, items: typing.Sequence[typing.Any]) -> None:
        """Re-buffer ``items`` at the head of the queue, in order.

        Lets a batch consumer defer items it took but must not process
        yet (e.g. a checkpoint marker behind unprocessed data rows).
        """
        for item in reversed(list(items)):
            self.items.appendleft(item)
        self._settle()

    def peek_all(self) -> list[typing.Any]:
        """Snapshot of buffered items (used by recovery/introspection)."""
        return list(self.items)

    def drain(self) -> list[typing.Any]:
        """Remove and return all buffered items without waking getters.

        Used by retrospective repartitioning to pull back tuples that
        were queued but not yet consumed.
        """
        drained = list(self.items)
        self.items.clear()
        self._settle()
        return drained

    def remove_if(self, predicate: typing.Callable[[typing.Any], bool]
                  ) -> list[typing.Any]:
        """Remove and return buffered items matching ``predicate``."""
        kept: collections.deque[typing.Any] = collections.deque()
        removed: list[typing.Any] = []
        for item in self.items:
            if predicate(item):
                removed.append(item)
            else:
                kept.append(item)
        self.items = kept
        self._settle()
        return removed

    def remap(self, mapper: typing.Callable[[typing.Any], typing.Any]
              ) -> None:
        """Rewrite buffered items in place: ``mapper(item)`` returns the
        replacement item, or ``None`` to drop it.  Order is preserved
        and no events fire (the generalized ``remove_if``, used to
        filter rows *inside* composite items such as wire blocks)."""
        kept: collections.deque[typing.Any] = collections.deque()
        for item in self.items:
            replacement = mapper(item)
            if replacement is not None:
                kept.append(replacement)
        self.items = kept
        self._settle()

    def _settle(self) -> None:
        """Match buffered items with getters and admit blocked putters.

        Hot path: bursts of puts/gets settle at one timestamp, so the
        loop binds its deques locally and exits without re-scanning
        when a pass makes no progress.
        """
        items = self.items
        putters = self._putters
        getters = self._getters
        capacity = self.capacity
        progressed = True
        while progressed:
            progressed = False
            while putters and len(items) < capacity:
                put = putters.popleft()
                items.append(put.item)
                put.succeed(None)
                progressed = True
            while getters and items:
                getters.popleft().succeed(items.popleft())
                progressed = True
