"""The discrete-event simulation environment and process model.

:class:`Environment` owns the simulation clock and the pending-event
queue.  :class:`Process` drives a Python generator: each ``yield``
hands back an :class:`~repro.sim.events.Event` to wait on, and the
generator resumes with the event's value once it fires.  A generator's
``return`` value becomes the process's own event value, so processes
compose (``result = yield env.process(sub())``).

The simulation is fully deterministic: ties in time are broken by
scheduling priority, then by insertion order.

Kernel fast path
----------------

With :attr:`Environment.fast_path` enabled (the default), the kernel
applies three allocation-avoiding optimisations that are **observably
identical** to the straight implementation — same rows, same timeline,
same :attr:`Environment.events_scheduled` count (property-tested in
``tests/properties/test_kernel_fast_path.py``):

* **Slim heap entries with same-timestamp coalescing.**  Heap entries
  are ``[when, (priority << 48) | seq, payload]`` lists.  When a
  normal-priority event is scheduled for a timestamp that already has
  an open entry, it is appended to that entry's payload instead of
  being pushed separately.  Coalescing is two-tier, matched to where
  merges actually happen: immediate (``delay == 0``) schedules — the
  bursts emitted by store settlement and batch completion, which are
  the overwhelming majority of merges — hit a single *open entry at
  now* register (one attribute test, no hashing), while future
  timestamps (same-deadline heartbeat/monitor timeouts) go through a
  small per-timestamp map consulted only on scheduling and closed the
  moment the clock reaches the timestamp.  Merging is order-preserving
  because heap order is lexicographic ``(when, priority, seq)`` and a
  merged event's sequence number is by construction larger than
  everything already in the entry and smaller than everything
  scheduled later; nothing can sort *between* two occupants of the
  same entry.  :meth:`step` drains a coalesced payload one event per
  call, so ``run(until=event)`` still stops with exactly the events
  the straight kernel would have processed.
* **A free list for process resume events.**  The bootstrap/resume
  events that drive generators are internal to the kernel — no user
  code ever holds one — so they are recycled through a small pool
  instead of being allocated per yield.
* **An inline resume for already-processed targets.**  When a process
  yields an event that has already been processed, the straight kernel
  bounces through the queue (schedule a fresh resume event, pop it
  next step).  If that bounce event would provably be the very next
  event popped (no callbacks left in the current dispatch, no batch
  being drained, no queue entry at the current instant), the fast path
  consumes a sequence number for it and resumes the generator in
  place — same event accounting, same order, one less allocation and
  heap round trip.

Every ``schedule()`` call increments the sequence counter exactly as
before, so ``events_scheduled`` — the kernel's work measure reported
by the perf benchmarks — is bit-identical with the fast path on or
off.
"""

from __future__ import annotations

import heapq
import typing

from repro.errors import SimulationError
from repro.sim.events import (
    _UNSET,
    AllOf,
    AnyOf,
    Event,
    PRIORITY_NORMAL,
    Timeout,
)

ProcessGenerator = typing.Generator[Event, typing.Any, typing.Any]

#: Bits reserved for the insertion sequence number inside a packed heap
#: key; priorities occupy the bits above.  2**48 schedule() calls is
#: far beyond any simulation here (the largest benchmark schedules
#: ~1e5 events).
_SEQ_BITS = 48

#: Upper bound on pooled resume events.  The pool only needs to cover
#: the number of processes resumed between steps, which is small; the
#: cap keeps a pathological spawn burst from pinning memory.
_RESUME_POOL_LIMIT = 256


class _ResumeEvent(Event):
    """Internal pooled event that bootstraps/resumes a process.

    Never visible to user code: it exists only to carry a value through
    the queue into ``Process._resume``, after which the dispatcher
    resets and recycles it.
    """

    __slots__ = ()


class Process(Event):
    """An event that completes when its generator returns.

    The generator is started on the next kernel step (at the current
    simulation time), not synchronously, so a process may wait on
    events created after it was spawned within the same timestamp.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: str | None = None) -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {generator!r}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        if env._fast_path:
            bootstrap = env._acquire_resume(self._resume)
        else:
            bootstrap = Event(env)
            bootstrap.callbacks.append(self._resume)
        bootstrap.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the value of the fired event."""
        env = self.env
        while True:
            self._target = None
            try:
                if trigger.ok:
                    target = self._generator.send(trigger.value)
                else:
                    target = self._generator.throw(trigger.value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            except BaseException as exc:
                self.fail(exc)
                return
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process {self.name!r} yielded {target!r}, "
                    "expected an Event")
            if target.env is not env:
                raise SimulationError(
                    f"process {self.name!r} yielded an event from another "
                    "environment")
            self._target = target
            if not target._processed:
                target.callbacks.append(self._resume)
                return
            # The event already fired; resume through the kernel so the
            # process never outruns the event queue.  The bounce always
            # costs one scheduled event.
            if env._fast_path:
                if (not env._mid_dispatch and env._batch is None
                        and (not env._queue
                             or env._queue[0][0] > env._now)):
                    # The bounce event would be the very next one
                    # popped: consume its sequence number and resume in
                    # place instead of a queue round trip.
                    env._seq += 1
                    trigger = target
                    continue
                resume = env._acquire_resume(self._resume)
            else:
                resume = Event(env)
                resume.callbacks.append(self._resume)
            if target.ok:
                resume.succeed(target.value)
            else:
                resume.fail(target.value)
            return

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} alive={self.is_alive}>"


class Environment:
    """A deterministic discrete-event simulation environment.

    Typical use::

        env = Environment()

        def worker(env):
            yield env.timeout(5.0)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 5.0 and proc.value == "done"
    """

    def __init__(self, initial_time: float = 0.0,
                 fast_path: bool = True) -> None:
        self._now = float(initial_time)
        #: Pending entries: ``[when, packed_key, payload]`` where the
        #: payload is an Event or, for a coalesced entry, a list of
        #: events in scheduling order.
        self._queue: list[list] = []
        self._seq = 0
        self._fast_path = bool(fast_path)
        #: The open heap entry at the current instant — the merge
        #: target for ``delay == 0`` normal-priority schedules.
        #: Cleared when its entry is popped and whenever the clock
        #: advances.  Always None with fast_path off.
        self._open_now: list | None = None
        #: Open heap entries at *future* timestamps, the merge targets
        #: for ``delay > 0`` normal-priority schedules (same-deadline
        #: heartbeat/monitor timeouts).  A timestamp's slot is closed
        #: when the clock reaches it.  Only normal-priority events
        #: coalesce — urgent ones are pushed individually, which is
        #: order-safe because an urgent event sorts before every
        #: occupant of a normal-priority entry at the same instant,
        #: merged or not.  Always empty with fast_path off.
        self._open: dict[float, list] = {}
        #: Remainder of a coalesced payload being drained one event per
        #: step() call, and the index of the next event in it.
        self._batch: list | None = None
        self._batch_index = 0
        #: True while step() has callbacks left to run for the current
        #: event (guards the inline-resume fast path).
        self._mid_dispatch = False
        self._resume_pool: list[_ResumeEvent] = []

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_scheduled(self) -> int:
        """Total events ever queued — the kernel's work measure.

        Batch-granular execution exists to shrink this number; the
        perf benchmark reports it per run.  Invariant under
        :attr:`fast_path`: coalesced and inline-resumed events are
        counted exactly as if they had been pushed individually.
        """
        return self._seq

    @property
    def fast_path(self) -> bool:
        """Whether the allocation-avoiding kernel paths are active."""
        return self._fast_path

    @fast_path.setter
    def fast_path(self, enabled: bool) -> None:
        enabled = bool(enabled)
        if enabled == self._fast_path:
            return
        self._fast_path = enabled
        # Entries opened before the toggle must not absorb events
        # scheduled after it: an event pushed separately while the flag
        # was off sorts between the entry and a later merge candidate.
        self._open_now = None
        self._open.clear()

    # -- scheduling ----------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Queue a triggered event to be processed ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq += 1
        when = self._now + delay
        if self._fast_path and priority == PRIORITY_NORMAL:
            if when == self._now:
                entry = self._open_now
                if entry is not None:
                    payload = entry[2]
                    if type(payload) is list:
                        payload.append(event)
                    else:
                        entry[2] = [payload, event]
                    return
                entry = [when,
                         (PRIORITY_NORMAL << _SEQ_BITS) | self._seq, event]
                self._open_now = entry
            else:
                open_entries = self._open
                entry = open_entries.get(when)
                if entry is not None:
                    payload = entry[2]
                    if type(payload) is list:
                        payload.append(event)
                    else:
                        entry[2] = [payload, event]
                    return
                entry = [when,
                         (PRIORITY_NORMAL << _SEQ_BITS) | self._seq, event]
                open_entries[when] = entry
            heapq.heappush(self._queue, entry)
        else:
            heapq.heappush(
                self._queue,
                [when, (priority << _SEQ_BITS) | self._seq, event])

    def _acquire_resume(self, callback) -> _ResumeEvent:
        """A fresh-or-recycled internal process resume event."""
        pool = self._resume_pool
        event = pool.pop() if pool else _ResumeEvent(self)
        event.callbacks.append(callback)
        return event

    # -- event factories ----------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: typing.Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: str | None = None) -> Process:
        """Spawn a process driving ``generator``; returns its event."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """An event succeeding when all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """An event succeeding when the first of ``events`` triggers."""
        return AnyOf(self, events)

    # -- execution -----------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._batch is not None:
            return self._now
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process exactly one scheduled event."""
        batch = self._batch
        if batch is not None:
            index = self._batch_index
            event = batch[index]
            index += 1
            if index == len(batch):
                self._batch = None
                self._batch_index = 0
            else:
                self._batch_index = index
            self._dispatch(event)
            return
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        entry = heapq.heappop(self._queue)
        when = entry[0]
        if when > self._now:
            # The clock advances: the reached timestamp is closed for
            # merging on both tiers (even when the popped entry is not
            # the open one — nothing can schedule at ``when`` with a
            # positive delay anymore).
            self._now = when
            self._open_now = None
            if self._open:
                self._open.pop(when, None)
        elif entry is self._open_now:
            self._open_now = None
        elif when < self._now:
            raise SimulationError("event queue corrupted: time went backwards")
        payload = entry[2]
        if type(payload) is list:
            # Coalesced entry: dispatch its first event now and drain
            # the rest one per subsequent step() call, exactly as if
            # each had been popped individually.
            self._batch = payload
            self._batch_index = 1
            self._dispatch(payload[0])
            return
        self._dispatch(payload)

    def _dispatch(self, event: Event) -> None:
        """Fire one event's callbacks and mark it processed.

        The straight kernel swapped the callback list for a new one
        before dispatch; every callback appended post-trigger is guarded
        by a ``processed`` check (``Process._resume``, ``_observe``), so
        iterating in place is equivalent and saves a list allocation per
        event.
        """
        callbacks = event.callbacks
        event._processed = True
        n = len(callbacks)
        if n == 1:
            self._mid_dispatch = False
            callbacks[0](event)
        elif n:
            last = n - 1
            self._mid_dispatch = True
            for i in range(n):
                if i == last:
                    self._mid_dispatch = False
                callbacks[i](event)
        else:
            self._mid_dispatch = False
            if not event._ok:
                # A failed event nobody waits on would silently swallow
                # the error; surface it instead.
                raise event._value
        if type(event) is _ResumeEvent:
            # Internal-only event: no user code holds a reference, so
            # it can be reset and recycled.
            callbacks.clear()
            event._value = _UNSET
            event._ok = None
            event._processed = False
            pool = self._resume_pool
            if len(pool) < _RESUME_POOL_LIMIT:
                pool.append(event)

    def run(self, until: float | Event | None = None) -> typing.Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a time
        (run up to and including that instant), or an event (run until
        it has been processed; returns its value).
        """
        if isinstance(until, Event):
            stop_event = until
            while not stop_event._processed:
                if self._batch is None and not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event fired (deadlock?)")
                self.step()
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"cannot run until {horizon} < now {self._now}")
            while (self._batch is not None
                   or (self._queue and self._queue[0][0] <= horizon)):
                self.step()
            self._now = horizon
            self._open_now = None
            return None
        while self._batch is not None or self._queue:
            self.step()
        return None
