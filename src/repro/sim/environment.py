"""The discrete-event simulation environment and process model.

:class:`Environment` owns the simulation clock and the pending-event
queue.  :class:`Process` drives a Python generator: each ``yield``
hands back an :class:`~repro.sim.events.Event` to wait on, and the
generator resumes with the event's value once it fires.  A generator's
``return`` value becomes the process's own event value, so processes
compose (``result = yield env.process(sub())``).

The simulation is fully deterministic: ties in time are broken by
scheduling priority, then by insertion order.
"""

from __future__ import annotations

import heapq
import typing

from repro.errors import SimulationError
from repro.sim.events import (
    AllOf,
    AnyOf,
    Event,
    PRIORITY_NORMAL,
    Timeout,
)

ProcessGenerator = typing.Generator[Event, typing.Any, typing.Any]


class Process(Event):
    """An event that completes when its generator returns.

    The generator is started on the next kernel step (at the current
    simulation time), not synchronously, so a process may wait on
    events created after it was spawned within the same timestamp.
    """

    __slots__ = ("_generator", "name", "_target")

    def __init__(self, env: "Environment", generator: ProcessGenerator,
                 name: str | None = None) -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {generator!r}")
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        self._target: Event | None = None
        bootstrap = Event(env)
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def _resume(self, trigger: Event) -> None:
        """Advance the generator with the value of the fired event."""
        self._target = None
        try:
            if trigger.ok:
                target = self._generator.send(trigger.value)
            else:
                target = self._generator.throw(trigger.value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {target!r}, expected an Event")
        if target.env is not self.env:
            raise SimulationError(
                f"process {self.name!r} yielded an event from another "
                "environment")
        self._target = target
        if target.processed:
            # The event already fired; resume on the next kernel step so
            # the process never outruns the event queue.
            resume = Event(self.env)
            resume.callbacks.append(self._resume)
            if target.ok:
                resume.succeed(target.value)
            else:
                resume.fail(target.value)
        else:
            target.callbacks.append(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Process {self.name!r} alive={self.is_alive}>"


class Environment:
    """A deterministic discrete-event simulation environment.

    Typical use::

        env = Environment()

        def worker(env):
            yield env.timeout(5.0)
            return "done"

        proc = env.process(worker(env))
        env.run()
        assert env.now == 5.0 and proc.value == "done"
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, int, Event]] = []
        self._seq = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_scheduled(self) -> int:
        """Total events ever queued — the kernel's work measure.

        Batch-granular execution exists to shrink this number; the
        perf benchmark reports it per run.
        """
        return self._seq

    # -- scheduling ----------------------------------------------------

    def schedule(self, event: Event, delay: float = 0.0,
                 priority: int = PRIORITY_NORMAL) -> None:
        """Queue a triggered event to be processed ``delay`` from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past: {delay}")
        self._seq += 1
        heapq.heappush(
            self._queue, (self._now + delay, priority, self._seq, event))

    # -- event factories ----------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: typing.Any = None) -> Timeout:
        """An event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator,
                name: str | None = None) -> Process:
        """Spawn a process driving ``generator``; returns its event."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Sequence[Event]) -> AllOf:
        """An event succeeding when all ``events`` succeed."""
        return AllOf(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> AnyOf:
        """An event succeeding when the first of ``events`` triggers."""
        return AnyOf(self, events)

    # -- execution -----------------------------------------------------

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if not self._queue:
            return float("inf")
        return self._queue[0][0]

    def step(self) -> None:
        """Process exactly one scheduled event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, _priority, _seq, event = heapq.heappop(self._queue)
        if when < self._now:
            raise SimulationError("event queue corrupted: time went backwards")
        self._now = when
        callbacks, event.callbacks = event.callbacks, []
        event._mark_processed()
        for callback in callbacks:
            callback(event)
        if not event.ok and not callbacks:
            # A failed event nobody waits on would silently swallow the
            # error; surface it instead.
            raise event.value

    def run(self, until: float | Event | None = None) -> typing.Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a time
        (run up to and including that instant), or an event (run until
        it has been processed; returns its value).
        """
        if isinstance(until, Event):
            stop_event = until
            while not stop_event.processed:
                if not self._queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event fired (deadlock?)")
                self.step()
            if not stop_event.ok:
                raise stop_event.value
            return stop_event.value
        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"cannot run until {horizon} < now {self._now}")
            while self._queue and self._queue[0][0] <= horizon:
                self.step()
            self._now = horizon
            return None
        while self._queue:
            self.step()
        return None
