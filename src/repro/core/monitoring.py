"""The MonitoringEventDetector component (§2, §3.1).

One detector runs on each site evaluating a query fragment.  It
receives raw, low-level monitoring events from the local query engine
(M1 per ``m1_interval`` produced tuples, M2 per buffer sent), then:

* groups M1 notifications by the identifier of the operator (subplan
  instance) that generated them, and M2 notifications by the
  concatenated identifiers of the producer and the buffer's recipient;
* computes the running average of the cost over a window of a certain
  length, *discarding the minimum and maximum values*; and
* generates a notification for subscribed Diagnosers when this average
  changes by the threshold ``thresM``.

Raw events are delivered by local method call (the engine and detector
share a machine), but their processing cost is charged to that
machine's CPU; outgoing notifications travel over the network.
"""

from __future__ import annotations

import collections
import statistics
import typing

from repro.config import AdaptivityConfig, CostModel
from repro.core.notifications import (
    CostNotification,
    M1Event,
    M2Event,
    TOPIC_COST,
)
from repro.grid.container import GridContext
from repro.policy import AdaptationPolicy, create_policy
from repro.services.base import GridService
from repro.services.pubsub import NotificationPublisher


def trimmed_average(values: typing.Sequence[float]) -> float:
    """Mean with the single minimum and maximum discarded.

    Falls back to the plain mean when fewer than three values exist
    (nothing sensible to trim).
    """
    if not values:
        raise ValueError("trimmed_average of empty window")
    if len(values) < 3:
        return statistics.fmean(values)
    ordered = sorted(values)
    return statistics.fmean(ordered[1:-1])


class MonitoringEventDetector(GridService, NotificationPublisher):
    """Per-site collector and filter of raw monitoring events."""

    def __init__(self, context: GridContext, machine_name: str,
                 config: AdaptivityConfig, cost: CostModel,
                 query_id: str = "q",
                 policy: AdaptationPolicy | None = None) -> None:
        GridService.__init__(self, context,
                             f"detector:{query_id}:{machine_name}",
                             machine_name)
        NotificationPublisher.__init__(self)
        self.config = config
        self.cost = cost
        #: The adaptation policy owning the (re-)notification gate;
        #: shared with the query's Diagnoser/Responder when deployed.
        self.policy = policy if policy is not None else create_policy(config)
        self.query_id = query_id
        self._windows: dict[str, collections.deque] = {}
        self._last_notified: dict[str, float] = {}
        self._meta: dict[str, dict] = {}
        self.raw_events_received = 0
        self.cost_notifications_sent = 0
        metrics = context.metrics
        self._metric_raw_m1 = metrics.counter(
            "detector_raw_events", query=query_id, kind="m1")
        self._metric_raw_m2 = metrics.counter(
            "detector_raw_events", query=query_id, kind="m2")
        self._metric_notifications = metrics.counter(
            "detector_notifications_sent", query=query_id,
            policy=self.policy.name)

    # -- raw event intake (local calls from the engine) ---------------------

    def submit_m1(self, event: M1Event) -> None:
        """Ingest one M1 event from a local exchange producer."""
        self.raw_events_received += 1
        self._metric_raw_m1.inc()
        self._charge_cpu()
        key = f"m1|{event.instance_id}"
        self._meta[key] = {
            "kind": "m1",
            "instance_id": event.instance_id,
            "recipient_channel": None,
            "subplan_id": event.subplan_id,
        }
        self._observe(key, event.cost_per_tuple_ms)

    def submit_m1_batch(self, event: M1Event, count: int) -> None:
        """Ingest ``count`` M1 events sharing one batch's aggregate cost.

        Emitted when a morsel crosses several ``m1_interval``
        boundaries: the sliding window receives ``count`` observations
        (as many as the per-tuple pipeline would deliver) while the
        detector's processing cost is charged as a single CPU burst.
        """
        if count <= 0:
            return
        self.raw_events_received += count
        self._metric_raw_m1.inc(count)
        self.machine.cpu.execute(self.cost.control_event_work * count,
                                 label="detector")
        key = f"m1|{event.instance_id}"
        self._meta[key] = {
            "kind": "m1",
            "instance_id": event.instance_id,
            "recipient_channel": None,
            "subplan_id": event.subplan_id,
        }
        for _ in range(count):
            self._observe(key, event.cost_per_tuple_ms)

    def submit_m2(self, producer_id: str, recipient_channel: str,
                  send_cost_ms: float, tuple_count: int) -> M2Event:
        """Ingest one M2 event (per buffer sent) from a local producer."""
        event = M2Event(producer_id=producer_id,
                        recipient_channel=recipient_channel,
                        send_cost_ms=send_cost_ms,
                        tuple_count=tuple_count,
                        timestamp=self.env.now)
        if tuple_count <= 0:
            # A degenerate buffer (no data rows) observes nothing, so
            # it must not be counted, charged, or registered either —
            # the raw-event counts feed the overheads experiment.
            return event
        self.raw_events_received += 1
        self._metric_raw_m2.inc()
        self._charge_cpu()
        key = f"m2|{producer_id}->{recipient_channel}"
        self._meta[key] = {
            "kind": "m2",
            "instance_id": None,
            "recipient_channel": recipient_channel,
            "subplan_id": None,
        }
        self._observe(key, send_cost_ms / tuple_count)
        return event

    # -- windowing and thresholding ------------------------------------------

    def _charge_cpu(self) -> None:
        # Fire-and-forget: detector processing occupies the machine's
        # CPU (delaying co-located evaluators) without blocking the
        # caller's control flow.
        self.machine.cpu.execute(self.cost.control_event_work,
                                 label="detector")

    def _observe(self, key: str, value: float) -> None:
        window = self._windows.get(key)
        if window is None:
            window = collections.deque(maxlen=self.config.window_size)
            self._windows[key] = window
        window.append(value)
        if len(window) < self.config.min_window_events:
            return
        average = trimmed_average(list(window))
        last = self._last_notified.get(key)
        # The (re-)notification threshold is policy-owned (the paper
        # instance applies thres_m with the thres_m_floor fallback
        # against a zero baseline).
        if not self.policy.notification_gate(last, average):
            return
        self._last_notified[key] = average
        self._emit(key, average, len(window))

    def _emit(self, key: str, average: float, window_length: int) -> None:
        meta = self._meta[key]
        notification = CostNotification(
            kind=meta["kind"],
            key=key,
            instance_id=meta["instance_id"],
            recipient_channel=meta["recipient_channel"],
            subplan_id=meta["subplan_id"],
            average_value=average,
            window_length=window_length,
            timestamp=self.env.now)
        self.publish(TOPIC_COST, notification)
        self.cost_notifications_sent += 1
        self._metric_notifications.inc()
        self.context.tracer.record(
            "monitoring", self.name, "cost notification",
            key=key, average=round(average, 3))
