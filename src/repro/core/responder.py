"""The Responder component (§3.1, Response).

The Responder receives imbalance proposals (enhanced workload vectors
W') from the Diagnoser and decides whether and how to react.  Before
accepting, it contacts the evaluators that produce data to estimate
the progress of execution (in line with [7]); if the run is close to
completion the adaptation is skipped.  Otherwise it notifies the
producers that must change their distribution policy — prospectively
(R2) or retrospectively (R1, redistributing the recovery logs) — and
the Diagnosers that must update the current distribution (W <- W').
"""

from __future__ import annotations

import typing

from repro.config import AdaptivityConfig, CostModel
from repro.core.diagnoser import BalancingTask
from repro.core.notifications import (
    ImbalanceProposal,
    TOPIC_IMBALANCE,
    TOPIC_WEIGHTS,
    WeightsInstalled,
)
from repro.engine.control import DistributionUpdate
from repro.engine.distribution import (
    normalise_weights,
    rebalance_buckets,
)
from repro.errors import ServiceError
from repro.grid.container import GridContext
from repro.policy import AdaptationPolicy, create_policy
from repro.policy.base import SKIP
from repro.services.base import GridService
from repro.services.pubsub import NotificationPublisher


class _SubplanState:
    """Mutable adaptation state the Responder keeps per subplan.

    Endpoints are copied out of the (frozen) task so failure recovery
    can re-point them at replacement hosts.
    """

    def __init__(self, task: BalancingTask) -> None:
        self.task = task
        self.weights = list(normalise_weights(task.initial_weights))
        self.bucket_map = (list(task.bucket_map)
                           if task.bucket_map is not None else None)
        self.producer_endpoints = list(task.producer_endpoints)
        self.instance_endpoints = list(task.instance_endpoints)
        self.producers = [list(entry) for entry in task.producers]
        self.epoch = 0
        self.last_adaptation: float | None = None
        self.busy = False
        #: Weight delta of the last policy-driven adaptation, kept to
        #: measure oscillation (mass moved one way then reversed).
        self.prev_delta: list | None = None
        # Per-instance quarantine flags (suspect clones, w_i -> 0) and
        # the weights to restore shares from at reintegration.
        self.quarantined = [False] * len(self.weights)
        self.pre_quarantine_weights: list | None = None


class Responder(GridService, NotificationPublisher):
    """Decides on, and deploys, workload redistributions."""

    def __init__(self, context: GridContext, machine_name: str,
                 config: AdaptivityConfig, cost: CostModel,
                 tasks: typing.Sequence[BalancingTask],
                 query_id: str = "q",
                 policy: AdaptationPolicy | None = None) -> None:
        GridService.__init__(self, context, f"responder:{query_id}",
                             machine_name)
        NotificationPublisher.__init__(self)
        self.config = config
        self.cost = cost
        #: The controller whose verdicts gate deployments; shared with
        #: the query's detectors and Diagnoser when deployed together.
        self.policy = policy if policy is not None else create_policy(config)
        self._state = {task.subplan_id: _SubplanState(task)
                       for task in tasks}
        self.proposals_received = 0
        self.adaptations_accepted = 0
        self.skipped_busy = 0
        self.skipped_cooldown = 0
        self.skipped_near_completion = 0
        self.skipped_below_threshold = 0
        self.skipped_unreachable = 0
        self.skipped_quarantined = 0
        self.skipped_degenerate_progress = 0
        self.quarantines = 0
        self.reintegrations = 0
        #: Total oscillation: workload mass moved by one adaptation and
        #: moved back by a later one (sum over sign-reversed weight
        #: deltas).  Quarantine/reintegration moves are excluded — they
        #: are reactions to faults, not controller churn.
        self.oscillation = 0.0
        self.query_id = query_id
        metrics = context.metrics
        self._metric_proposals = metrics.counter(
            "responder_proposals_received", query=query_id,
            policy=self.policy.name)
        self._metric_adaptations = metrics.counter(
            "responder_adaptations_accepted", query=query_id,
            policy=self.policy.name)
        self._metric_skips = {
            reason: metrics.counter("responder_skips", query=query_id,
                                    reason=reason, policy=self.policy.name)
            for reason in ("busy", "cooldown", "near_completion",
                           "below_threshold", "unreachable",
                           "quarantined", "degenerate_progress")}
        self._metric_quarantines = metrics.counter(
            "responder_quarantines", query=query_id,
            policy=self.policy.name)
        self._metric_reintegrations = metrics.counter(
            "responder_reintegrations", query=query_id,
            policy=self.policy.name)
        #: Proposal-timestamp to installed-weights latency of each
        #: accepted adaptation (the response leg of the control loop).
        self._metric_latency = metrics.histogram(
            "adaptation_latency_ms", query=query_id,
            policy=self.policy.name)
        self._metric_oscillation = metrics.gauge(
            "adaptivity_oscillation", query=query_id,
            policy=self.policy.name)
        #: Deadline for control calls so a crashed peer cannot hang an
        #: adaptation forever.
        self.call_timeout_ms = 10_000.0

    def _count_skip(self, reason: str) -> None:
        """Bump the per-reason attribute and metric for one skip."""
        attribute = f"skipped_{reason}"
        setattr(self, attribute, getattr(self, attribute, 0) + 1)
        metric = self._metric_skips.get(reason)
        if metric is None:
            metric = self.context.metrics.counter(
                "responder_skips", query=self.query_id, reason=reason,
                policy=self.policy.name)
            self._metric_skips[reason] = metric
        metric.inc()

    def replace_endpoint(self, old_endpoint: str, new_endpoint: str) -> None:
        """Failure recovery moved a host: re-point control targets."""
        for state in self._state.values():
            state.producer_endpoints = [
                new_endpoint if endpoint == old_endpoint else endpoint
                for endpoint in state.producer_endpoints]
            state.instance_endpoints = [
                new_endpoint if endpoint == old_endpoint else endpoint
                for endpoint in state.instance_endpoints]
            for entry in state.producers:
                if entry[1] == old_endpoint:
                    entry[1] = new_endpoint

    def on_notification(self, topic: str, payload: typing.Any,
                        sender: str) -> None:
        if topic != TOPIC_IMBALANCE:
            return
        self.proposals_received += 1
        self._metric_proposals.inc()
        self.env.process(self._handle(payload),
                         name=f"{self.name}:proposal")

    def _handle(self, proposal: ImbalanceProposal) -> typing.Generator:
        yield self.machine.cpu.execute(self.cost.control_event_work,
                                       label="responder")
        state = self._state.get(proposal.subplan_id)
        if state is None:
            return
        if state.busy:
            self.skipped_busy += 1
            self._metric_skips["busy"].inc()
            return
        state.busy = True
        try:
            yield from self._decide(state, proposal)
        finally:
            state.busy = False

    def _decide(self, state: _SubplanState,
                proposal: ImbalanceProposal) -> typing.Generator:
        now = self.env.now
        if any(state.quarantined) and not self.policy.quarantine_aware:
            # The Diagnoser's proposal assumes the full clone set;
            # deploying it would hand work back to a stalled clone.
            # A quarantine-aware policy zeroes those weights itself and
            # is allowed through.
            self._count_skip("quarantined")
            return
        # The accept/skip judgement (cooldown, threshold re-check
        # against our possibly-newer state, and any policy-specific
        # gating) is policy-owned.
        verdict = self.policy.decide(state, proposal, now)
        if verdict.action == SKIP:
            self._count_skip(verdict.reason or "below_threshold")
            return
        proposed = list(verdict.weights)
        if any(weight > 0 and quarantined for weight, quarantined
               in zip(proposed, state.quarantined)):
            # Safety net over the policy: never hand work back to a
            # quarantined clone, whatever the verdict says.
            self._count_skip("quarantined")
            return
        # Progress estimation in line with [7]: combine how much input
        # the producers expect overall with how much the subplan's
        # instances have already processed; near-complete queries are
        # left alone.  The estimation itself takes time (SQL progress
        # estimators and 2005-era SOAP stacks are not free).
        if self.config.decision_latency_ms > 0:
            yield self.env.timeout(self.config.decision_latency_ms)
        retry = self.context.call_retry_policy()
        try:
            estimated_total = 0
            for endpoint in state.producer_endpoints:
                reports = yield from self.call(
                    endpoint, "progress",
                    {"subplan_id": state.task.subplan_id},
                    timeout_ms=self.call_timeout_ms, retry=retry)
                estimated_total += sum(r.estimated_total for r in reports)
            processed_total = 0
            for endpoint in state.instance_endpoints:
                processed_total += yield from self.call(
                    endpoint, "processed",
                    {"subplan_id": state.task.subplan_id},
                    timeout_ms=self.call_timeout_ms, retry=retry)
        except ServiceError:
            # A peer is unreachable (likely crashed); abort this
            # adaptation and let failure recovery sort the world out.
            self._count_skip("unreachable")
            return
        if estimated_total <= 0:
            # A degenerate estimate says nothing about progress; it
            # used to masquerade as "near completion" (fraction 1.0).
            # Count it honestly and leave the run alone — adapting on
            # zero information risks thrashing a finished subplan.
            self._count_skip("degenerate_progress")
            self.context.tracer.record(
                "response", self.name,
                "adaptation skipped on degenerate progress estimate",
                estimated_total=estimated_total)
            return
        fraction = processed_total / estimated_total
        if not self.policy.accept_progress(fraction):
            self._count_skip("near_completion")
            self.context.tracer.record(
                "response", self.name, "adaptation skipped near completion",
                fraction=round(fraction, 3))
            return
        previous_weights = list(state.weights)
        deployed = yield from self._deploy_weights(
            state, proposed, self.config.retrospective)
        if not deployed:
            self._count_skip("unreachable")
            return
        state.last_adaptation = now
        self.adaptations_accepted += 1
        self._metric_adaptations.inc()
        self._metric_latency.observe(self.env.now - proposal.timestamp)
        self._note_oscillation(state, previous_weights, proposed)
        self.policy.on_adaptation(state.task.subplan_id, tuple(proposed),
                                  self.env.now)
        self.context.tracer.record(
            "response", self.name, "distribution rebalanced",
            subplan=state.task.subplan_id, epoch=state.epoch,
            retrospective=self.config.retrospective,
            weights=tuple(round(w, 3) for w in proposed))
        self.publish(TOPIC_WEIGHTS, WeightsInstalled(
            subplan_id=state.task.subplan_id,
            weights=tuple(proposed),
            epoch=state.epoch,
            timestamp=now))

    def _note_oscillation(self, state: _SubplanState,
                          previous: list, proposed: list) -> None:
        """Accumulate reversed workload mass across adaptations.

        For consecutive policy-driven adaptations with deltas ``p``
        (previous) and ``d`` (current), the oscillation contribution is
        ``sum(min(|d_i|, |p_i|))`` over components where the sign
        flipped — workload shifted one way and then shifted back.  A
        well-damped controller scores near zero however many
        adaptations it fires.
        """
        delta = [new - old for new, old in zip(proposed, previous)]
        if state.prev_delta is not None:
            reversed_mass = sum(
                min(abs(d), abs(p))
                for d, p in zip(delta, state.prev_delta) if d * p < 0)
            if reversed_mass > 0:
                self.oscillation += reversed_mass
        state.prev_delta = delta
        self._metric_oscillation.set(self.oscillation)

    def _deploy_weights(self, state: _SubplanState, proposed: list,
                        retrospective: bool) -> typing.Generator:
        """Push a weight vector to every producer; True on success.

        Two-phase deployment: replays first in port order (the build
        side of a join before its probe side, so replayed state is
        observed before the tuples that probe it), then discards in
        reverse port order (old probe tuples leave before the state
        they need is torn down).  Each phase is an acknowledged call.
        """
        state.epoch += 1
        bucket_map: tuple | None = None
        if state.bucket_map is not None:
            state.bucket_map = rebalance_buckets(state.bucket_map, proposed)
            bucket_map = tuple(state.bucket_map)
        update = DistributionUpdate(
            subplan_id=state.task.subplan_id,
            weights=tuple(proposed),
            bucket_map=bucket_map,
            retrospective=retrospective,
            epoch=state.epoch)
        retry = self.context.call_retry_policy()
        by_port = sorted(state.producers, key=lambda p: p[2])
        try:
            for producer_id, endpoint, _port in by_port:
                yield from self.call(endpoint, "update_distribution", {
                    "update": update, "producer_id": producer_id,
                    "phase": "replay"}, timeout_ms=self.call_timeout_ms,
                    retry=retry)
            for producer_id, endpoint, _port in reversed(by_port):
                yield from self.call(endpoint, "update_distribution", {
                    "update": update, "producer_id": producer_id,
                    "phase": "discard"}, timeout_ms=self.call_timeout_ms,
                    retry=retry)
        except ServiceError:
            return False
        state.weights = list(proposed)
        return True

    # -- quarantine of suspect clones (chaos defense) -------------------

    def _weights_excluding_quarantined(self,
                                       state: _SubplanState) -> list | None:
        """The share vector with quarantined clones driven to zero.

        Based on the pre-quarantine shares so a reintegrated clone gets
        its old share back (the Diagnoser then re-proposes from live
        costs).  ``None`` when no weight would remain.
        """
        base = state.pre_quarantine_weights or state.weights
        masked = [0.0 if quarantined else weight
                  for weight, quarantined in zip(base, state.quarantined)]
        if sum(masked) <= 0:
            if not any(state.quarantined):
                # Degenerate pre-quarantine vector: fall back to even.
                return list(normalise_weights([1.0] * len(masked)))
            return None
        return list(normalise_weights(masked))

    def is_quarantined(self, subplan_id: str, instance_index: int) -> bool:
        state = self._state.get(subplan_id)
        return (state is not None
                and 0 <= instance_index < len(state.quarantined)
                and state.quarantined[instance_index])

    def quarantine(self, subplan_id: str,
                   instance_index: int) -> typing.Generator:
        """Drive a suspect clone's weight to zero (prospectively).

        The clone's recovery log and in-flight state are retained —
        unlike failure recovery nothing is rebuilt; new work simply
        stops flowing to it.  Spawned as a process by the GDQS monitor.
        """
        state = self._state.get(subplan_id)
        if (state is None or self.crashed
                or not 0 <= instance_index < len(state.quarantined)
                or state.quarantined[instance_index]):
            return
        while state.busy:
            yield self.env.timeout(25.0)
        state.busy = True
        try:
            if state.pre_quarantine_weights is None:
                state.pre_quarantine_weights = list(state.weights)
            state.quarantined[instance_index] = True
            proposed = self._weights_excluding_quarantined(state)
            if proposed is None:
                # Every clone suspect: nowhere to shift work to.
                state.quarantined[instance_index] = False
                return
            deployed = yield from self._deploy_weights(
                state, proposed, retrospective=False)
            if not deployed:
                state.quarantined[instance_index] = False
                return
            self.quarantines += 1
            self._metric_quarantines.inc()
            # A fault-driven move breaks the adaptation sequence for
            # oscillation purposes; the policy may want to know too.
            state.prev_delta = None
            self.policy.on_quarantine(subplan_id, instance_index,
                                      self.env.now)
            self.context.tracer.record(
                "response", self.name, "clone quarantined",
                subplan=subplan_id, instance=instance_index,
                epoch=state.epoch,
                weights=tuple(round(w, 3) for w in proposed))
            self.publish(TOPIC_WEIGHTS, WeightsInstalled(
                subplan_id=subplan_id, weights=tuple(proposed),
                epoch=state.epoch, timestamp=self.env.now))
        finally:
            state.busy = False

    def reintegrate(self, subplan_id: str,
                    instance_index: int) -> typing.Generator:
        """Restore a recovered clone's share of the workload.

        Re-installs the clone's pre-quarantine share and publishes the
        new vector, from which the Diagnoser re-proposes as live costs
        come in.  Spawned as a process by the GDQS monitor when the
        clone's heartbeats resume.
        """
        state = self._state.get(subplan_id)
        if (state is None or self.crashed
                or not 0 <= instance_index < len(state.quarantined)
                or not state.quarantined[instance_index]):
            return
        while state.busy:
            yield self.env.timeout(25.0)
        state.busy = True
        try:
            state.quarantined[instance_index] = False
            proposed = self._weights_excluding_quarantined(state)
            if proposed is None:
                state.quarantined[instance_index] = True
                return
            deployed = yield from self._deploy_weights(
                state, proposed, retrospective=False)
            if not deployed:
                state.quarantined[instance_index] = True
                return
            self.reintegrations += 1
            self._metric_reintegrations.inc()
            state.prev_delta = None
            self.policy.on_reintegration(subplan_id, instance_index,
                                         self.env.now)
            if not any(state.quarantined):
                state.pre_quarantine_weights = None
            self.context.tracer.record(
                "response", self.name, "clone reintegrated",
                subplan=subplan_id, instance=instance_index,
                epoch=state.epoch,
                weights=tuple(round(w, 3) for w in proposed))
            self.publish(TOPIC_WEIGHTS, WeightsInstalled(
                subplan_id=subplan_id, weights=tuple(proposed),
                epoch=state.epoch, timestamp=self.env.now))
        finally:
            state.busy = False
