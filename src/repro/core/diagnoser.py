"""The Diagnoser component (§3.1, Assessment).

The Diagnoser gathers the cost notifications produced by
MonitoringEventDetectors and establishes whether there is workload
imbalance.  For a subplan ``p`` partitioned across ``n`` machines it
knows the current tuple distribution vector ``W`` and the per-tuple
cost ``c(p_i)`` of each instance; the balanced vector ``W'`` allocates
to each instance a workload inversely proportional to ``c(p_i)``.  It
notifies the Responder only if some element of ``W'`` deviates
relatively from ``W`` by more than ``thresA``.

Costs are computed in one of two ways:

* **A1** — only the M1 notifications of the instance (assumes the cost
  of sending data overlaps with processing, thanks to pipelining);
* **A2** — additionally the per-tuple communication cost (from M2) of
  the channels delivering data to the instance, with co-located
  channels counting as zero.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.config import AdaptivityConfig, CostModel
from repro.core.notifications import (
    CostNotification,
    ImbalanceProposal,
    TOPIC_COST,
    TOPIC_IMBALANCE,
    TOPIC_WEIGHTS,
    WeightsInstalled,
)
from repro.engine.distribution import normalise_weights
from repro.grid.container import GridContext
from repro.policy import AdaptationPolicy, create_policy
from repro.services.base import GridService
from repro.services.pubsub import NotificationPublisher


@dataclasses.dataclass(frozen=True)
class BalancingTask:
    """Everything the adaptivity components know about one partitioned
    subplan: its instances, the channels feeding them, the producers'
    hosts, and the initial distribution."""

    subplan_id: str
    instance_ids: tuple
    initial_weights: tuple
    #: instance_id -> channel keys delivering data to it (for A2).
    instance_channels: dict
    #: Channels whose producer and consumer share a machine (their
    #: communication cost "is considered zero").
    co_located_channels: frozenset
    #: GQES endpoints hosting the producers that feed the subplan.
    producer_endpoints: tuple
    #: (producer_id, gqes_endpoint, target_port) for every feeding
    #: producer; the Responder applies updates in port order.
    producers: tuple
    #: "wrr" for stateless subplans, "hash" for stateful ones.
    policy_kind: str
    #: Initial bucket map for hash-partitioned subplans.
    bucket_map: tuple | None = None
    #: GQES endpoints hosting the subplan's instances (for progress
    #: estimation over *processed* tuples, [7]).
    instance_endpoints: tuple = ()


class Diagnoser(GridService, NotificationPublisher):
    """Assesses detector notifications and proposes balanced vectors."""

    def __init__(self, context: GridContext, machine_name: str,
                 config: AdaptivityConfig, cost: CostModel,
                 tasks: typing.Sequence[BalancingTask],
                 query_id: str = "q",
                 policy: AdaptationPolicy | None = None) -> None:
        GridService.__init__(self, context, f"diagnoser:{query_id}",
                             machine_name)
        NotificationPublisher.__init__(self)
        self.config = config
        self.cost = cost
        #: The controller that observes costs and proposes vectors;
        #: shared with the query's detectors and Responder when
        #: deployed together.
        self.policy = policy if policy is not None else create_policy(config)
        self.tasks = {task.subplan_id: task for task in tasks}
        self._weights: dict[str, list[float]] = {
            task.subplan_id: list(normalise_weights(task.initial_weights))
            for task in tasks}
        self._task_of_instance: dict[str, BalancingTask] = {}
        self._task_of_channel: dict[str, BalancingTask] = {}
        for task in tasks:
            for instance_id in task.instance_ids:
                self._task_of_instance[instance_id] = task
            for channels in task.instance_channels.values():
                for channel in channels:
                    self._task_of_channel[channel] = task
        self.notifications_received = 0
        self.proposals_sent = 0
        self.query_id = query_id
        metrics = context.metrics
        self._metric_notifications = metrics.counter(
            "diagnoser_notifications_received", query=query_id,
            policy=self.policy.name)
        self._metric_proposals = metrics.counter(
            "diagnoser_proposals_sent", query=query_id,
            policy=self.policy.name)
        #: Detector-timestamp to assessment latency of every cost
        #: notification (the monitoring leg of the control loop).
        self._metric_latency = metrics.histogram(
            "detection_latency_ms", query=query_id,
            policy=self.policy.name)

    def current_weights(self, subplan_id: str) -> list[float]:
        return list(self._weights[subplan_id])

    def on_notification(self, topic: str, payload: typing.Any,
                        sender: str) -> None:
        if topic == TOPIC_COST:
            self._on_cost(payload)
        elif topic == TOPIC_WEIGHTS:
            self._on_weights_installed(payload)

    def _on_cost(self, notification: CostNotification) -> None:
        self.notifications_received += 1
        self._metric_notifications.inc()
        self._metric_latency.observe(self.env.now - notification.timestamp)
        self.machine.cpu.execute(self.cost.control_event_work,
                                 label="diagnoser")
        task: BalancingTask | None = None
        if notification.kind == "m1":
            task = self._task_of_instance.get(notification.instance_id)
        elif notification.kind == "m2":
            task = self._task_of_channel.get(notification.recipient_channel)
        if task is not None:
            self.policy.observe(notification, task)
            self._assess(task)

    def _on_weights_installed(self, installed: WeightsInstalled) -> None:
        if installed.subplan_id in self._weights:
            self._weights[installed.subplan_id] = list(installed.weights)
            self.policy.on_weights_installed(installed.subplan_id,
                                             installed.weights)

    def instance_cost(self, task: BalancingTask,
                      instance_id: str) -> float | None:
        """The policy's assessed per-tuple cost c(p_i), or None."""
        return self.policy.instance_cost(task, instance_id)

    def _assess(self, task: BalancingTask) -> None:
        current = self._weights[task.subplan_id]
        outcome = self.policy.diagnose(task, current, self.env.now)
        if outcome is None:
            return  # not enough information, or not worth proposing
        proposed, costs = outcome
        proposal = ImbalanceProposal(
            subplan_id=task.subplan_id,
            current_weights=tuple(current),
            proposed_weights=tuple(proposed),
            instance_costs=tuple(costs),
            timestamp=self.env.now)
        self.publish(TOPIC_IMBALANCE, proposal)
        self.proposals_sent += 1
        self._metric_proposals.inc()
        self.context.tracer.record(
            "assessment", self.name, "imbalance proposal",
            subplan=task.subplan_id,
            proposed=tuple(round(w, 3) for w in proposed))
