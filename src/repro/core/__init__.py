"""The paper's contribution: the adaptivity architecture of Fig. 1.

Monitoring (MonitoringEventDetector), assessment (Diagnoser) and
response (Responder) are separate, loosely-coupled Grid services that
subscribe to each other and communicate asynchronously via
notifications; the centralized optimizer plays no role during
adaptations.
"""

from repro.core.diagnoser import BalancingTask, Diagnoser
from repro.core.monitoring import MonitoringEventDetector, trimmed_average
from repro.core.notifications import (
    CostNotification,
    ImbalanceProposal,
    M1Event,
    M2Event,
    TOPIC_COST,
    TOPIC_IMBALANCE,
    TOPIC_WEIGHTS,
    WeightsInstalled,
)
from repro.core.responder import Responder

__all__ = [
    "BalancingTask",
    "CostNotification",
    "Diagnoser",
    "ImbalanceProposal",
    "M1Event",
    "M2Event",
    "MonitoringEventDetector",
    "Responder",
    "TOPIC_COST",
    "TOPIC_IMBALANCE",
    "TOPIC_WEIGHTS",
    "WeightsInstalled",
    "trimmed_average",
]
