"""Abstract syntax tree for the supported query class.

The demo query class of OGSA-DQP's evaluation: single-block
SELECT-FROM-WHERE over one or two tables, with optional Web Service
calls in the select list, one equi-join predicate, and simple
column-op-literal filters.  Q1 and Q2 from the paper are::

    select EntropyAnalyser(p.sequence) from protein_sequences p

    select i.ORF2 from protein_sequences p, protein_interactions i
    where i.ORF1 = p.ORF
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class ColumnRef:
    """A possibly alias-qualified column reference."""

    name: str

    @property
    def alias(self) -> str | None:
        if "." in self.name:
            return self.name.split(".", 1)[0]
        return None

    @property
    def column(self) -> str:
        if "." in self.name:
            return self.name.split(".", 1)[1]
        return self.name


@dataclasses.dataclass(frozen=True)
class FunctionCall:
    """A WS operation applied to one column, e.g. ``Entropy(p.seq)``."""

    function_name: str
    argument: ColumnRef


class Star:
    """The ``*`` argument of ``count(*)``."""

    _instance: typing.ClassVar["Star | None"] = None

    def __new__(cls) -> "Star":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "*"


STAR = Star()

#: Recognised aggregate function names (case-insensitive).
AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max"})


@dataclasses.dataclass(frozen=True)
class AggregateCall:
    """An aggregate over a column, ``*``, or a WS-call result."""

    function_name: str
    argument: typing.Union[ColumnRef, FunctionCall, Star]

    def __post_init__(self) -> None:
        if self.function_name.lower() not in AGGREGATE_FUNCTIONS:
            raise ValueError(
                f"not an aggregate function: {self.function_name}")


SelectItem = typing.Union[ColumnRef, FunctionCall, AggregateCall]


@dataclasses.dataclass(frozen=True)
class TableRef:
    """A FROM-clause entry with an optional alias."""

    table_name: str
    alias: str | None = None

    @property
    def binding(self) -> str:
        return self.alias or self.table_name


@dataclasses.dataclass(frozen=True)
class Literal:
    """A string or numeric constant."""

    value: typing.Any


@dataclasses.dataclass(frozen=True)
class Comparison:
    """``left op right``; a join predicate when both sides are columns."""

    left: ColumnRef
    op: str
    right: typing.Union[ColumnRef, Literal]

    @property
    def is_join(self) -> bool:
        return isinstance(self.right, ColumnRef)


@dataclasses.dataclass(frozen=True)
class SelectQuery:
    """A parsed single-block query."""

    items: tuple
    tables: tuple
    conditions: tuple = ()
    group_by: tuple = ()

    @property
    def is_aggregate(self) -> bool:
        return any(isinstance(item, AggregateCall) for item in self.items)

    @property
    def join_conditions(self) -> list[Comparison]:
        return [c for c in self.conditions if c.is_join]

    @property
    def filter_conditions(self) -> list[Comparison]:
        return [c for c in self.conditions if not c.is_join]
