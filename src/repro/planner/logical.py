"""Logical plans: name resolution and operator-tree construction.

The logical plan is the bridge between the AST and the optimizer; it
resolves every column reference against the table schemas and fixes
the shape ``Project([Apply]* (Join(Scanish, Scanish) | Scanish))``
with ``Scanish := [Filter]* Scan`` — exactly the query class the demo
system supports.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.data.schema import Schema, Column
from repro.data.tuples import ColumnPredicate
from repro.errors import PlanningError, SchemaError
from repro.planner.ast import (
    ColumnRef,
    FunctionCall,
    Literal,
    SelectQuery,
)


@dataclasses.dataclass
class LogicalScan:
    """Scan of one base table under a binding name."""

    table_name: str
    binding: str
    schema: Schema
    filters: list = dataclasses.field(default_factory=list)


@dataclasses.dataclass
class LogicalJoin:
    """Equi-join; ``build`` is the smaller input by catalog estimate."""

    build: LogicalScan
    probe: LogicalScan
    build_key_position: int
    probe_key_position: int
    schema: Schema


@dataclasses.dataclass
class LogicalApply:
    """WS function applied per tuple; appends the result column."""

    function_name: str
    argument_position: int
    schema: Schema


@dataclasses.dataclass
class LogicalAggregation:
    """Final (coordinator-side) grouping and aggregation.

    Positions refer to the *projected* row the compute subplan ships:
    the aggregation runs downstream of the result sink's provenance
    deduplication, so it is exactly-once under every adaptation and
    recovery path by construction.
    """

    #: Positions of the GROUP BY columns within the projected row.
    group_positions: list
    #: (function, projected position or None for count(*)) per call.
    aggregates: list
    #: Select-list order: ("group", i) or ("agg", j) entries.
    output_layout: list
    output_schema: Schema


@dataclasses.dataclass
class LogicalPlan:
    """Resolved logical plan for the supported query class."""

    scans: list
    join: LogicalJoin | None
    applies: list
    project_positions: list
    output_schema: Schema
    aggregation: LogicalAggregation | None = None

    @property
    def is_join_query(self) -> bool:
        return self.join is not None

    @property
    def is_aggregate_query(self) -> bool:
        return self.aggregation is not None


def _resolve(reference: ColumnRef,
             scans: typing.Sequence[LogicalScan]) -> tuple[LogicalScan, int]:
    """Find the scan providing ``reference`` and the column position."""
    matches = []
    for scan in scans:
        if reference.alias is not None and reference.alias != scan.binding:
            continue
        try:
            position = scan.schema.position_of(reference.column)
        except SchemaError:
            continue
        matches.append((scan, position))
    if not matches:
        raise PlanningError(f"cannot resolve column {reference.name!r}")
    if len(matches) > 1:
        raise PlanningError(f"ambiguous column {reference.name!r}")
    return matches[0]


def _literal_predicate(position: int, op: str, value) -> typing.Callable:
    comparators = {
        "=": lambda a: a == value,
        "!=": lambda a: a != value,
        "<": lambda a: a < value,
        "<=": lambda a: a <= value,
        ">": lambda a: a > value,
        ">=": lambda a: a >= value,
    }
    try:
        comparator = comparators[op]
    except KeyError:
        raise PlanningError(f"unsupported operator {op!r}") from None
    # A structured predicate: behaves exactly like the previous opaque
    # lambda when called on a row, but exposes (position, test) so the
    # columnar Select path can vectorize over the column array.
    return ColumnPredicate(position, comparator, f"col[{position}] {op} {value!r}")


def build_logical_plan(query: SelectQuery,
                       schemas: typing.Mapping[str, Schema],
                       cardinalities: typing.Mapping[str, int]
                       ) -> LogicalPlan:
    """Resolve ``query`` into a logical plan.

    ``schemas``/``cardinalities`` come from the metadata catalog.
    """
    if not 1 <= len(query.tables) <= 2:
        raise PlanningError(
            f"only 1 or 2 tables supported, got {len(query.tables)}")
    scans = []
    for table in query.tables:
        if table.table_name not in schemas:
            raise PlanningError(f"unknown table {table.table_name!r}")
        scans.append(LogicalScan(
            table_name=table.table_name,
            binding=table.binding,
            schema=schemas[table.table_name].with_alias(table.binding)))

    # Push filters down to their scans.
    for condition in query.filter_conditions:
        scan, position = _resolve(condition.left, scans)
        assert isinstance(condition.right, Literal)
        predicate = _literal_predicate(
            position, condition.op, condition.right.value)
        scan.filters.append((condition, predicate))

    join: LogicalJoin | None = None
    joins = query.join_conditions
    if len(query.tables) == 2:
        if len(joins) != 1:
            raise PlanningError(
                "two-table queries need exactly one equi-join predicate")
        if joins[0].op != "=":
            raise PlanningError("only equi-joins are supported")
        left_scan, left_pos = _resolve(joins[0].left, scans)
        right_scan, right_pos = _resolve(joins[0].right, scans)
        if left_scan is right_scan:
            raise PlanningError("join predicate references a single table")
        # Build on the smaller input by catalog cardinality.
        if (cardinalities.get(left_scan.table_name, 0)
                <= cardinalities.get(right_scan.table_name, 0)):
            build, build_pos = left_scan, left_pos
            probe, probe_pos = right_scan, right_pos
        else:
            build, build_pos = right_scan, right_pos
            probe, probe_pos = left_scan, left_pos
        # Row layout downstream of the join: probe columns then build
        # columns (matching Row.extend in the engine).
        schema = probe.schema.concat(build.schema)
        join = LogicalJoin(build, probe, build_pos, probe_pos, schema)
        current_schema = schema
        probe_width = len(probe.schema)

        def position_of(reference: ColumnRef) -> int:
            scan, position = _resolve(reference, scans)
            if scan is probe:
                return position
            return probe_width + position
    elif joins:
        raise PlanningError("join predicate without a second table")
    else:
        current_schema = scans[0].schema

        def position_of(reference: ColumnRef) -> int:
            _scan, position = _resolve(reference, scans)
            return position

    if query.is_aggregate:
        return _build_aggregate_plan(query, scans, join, current_schema,
                                     position_of)
    if query.group_by:
        raise PlanningError("GROUP BY requires aggregate select items")

    applies: list[LogicalApply] = []
    project_positions: list[int] = []
    output_columns: list[Column] = []
    for item in query.items:
        if isinstance(item, FunctionCall):
            argument_position = position_of(item.argument)
            result_column = Column(item.function_name.lower(), "float")
            current_schema = Schema(
                list(current_schema.columns) + [result_column])
            applies.append(LogicalApply(
                item.function_name, argument_position, current_schema))
            project_positions.append(len(current_schema) - 1)
            output_columns.append(result_column)
        else:
            position = position_of(item)
            project_positions.append(position)
            output_columns.append(current_schema.columns[position])
    return LogicalPlan(
        scans=scans,
        join=join,
        applies=applies,
        project_positions=project_positions,
        output_schema=Schema(output_columns))


def _unique_name(base: str, taken: set) -> str:
    name = base
    counter = 2
    while name in taken:
        name = f"{base}_{counter}"
        counter += 1
    taken.add(name)
    return name


def _build_aggregate_plan(query: SelectQuery, scans, join,
                          current_schema: Schema,
                          position_of) -> LogicalPlan:
    """Plan a GROUP BY / aggregate query.

    The compute subplan evaluates any WS calls and projects exactly the
    group-by columns plus the aggregate inputs; grouping itself happens
    at the coordinator over the deduplicated result stream.
    """
    from repro.planner.ast import AggregateCall, ColumnRef, FunctionCall, Star

    applies: list[LogicalApply] = []
    schema = current_schema
    apply_cache: dict = {}
    column_names = set(current_schema.names())

    def add_apply(call: FunctionCall) -> int:
        nonlocal schema
        argument_position = position_of(call.argument)
        cache_key = (call.function_name, argument_position)
        if cache_key in apply_cache:
            # min(Ws(x)) and max(Ws(x)) share one WS evaluation.
            return apply_cache[cache_key]
        result_column = Column(
            _unique_name(call.function_name.lower(), column_names),
            "float")
        schema = Schema(list(schema.columns) + [result_column])
        applies.append(LogicalApply(
            call.function_name, argument_position, schema))
        apply_cache[cache_key] = len(schema) - 1
        return apply_cache[cache_key]

    group_source_positions = [position_of(ref) for ref in query.group_by]

    # Resolve each select item to a source position (or None for *).
    resolved: list[tuple] = []   # ("group", source_pos) | ("agg", f, pos)
    for item in query.items:
        if isinstance(item, ColumnRef):
            position = position_of(item)
            if position not in group_source_positions:
                raise PlanningError(
                    f"non-aggregate column {item.name!r} must appear "
                    "in GROUP BY")
            resolved.append(("group", position))
        elif isinstance(item, AggregateCall):
            function = item.function_name.lower()
            if isinstance(item.argument, Star):
                if function != "count":
                    raise PlanningError(
                        f"'*' is only valid in count(*), not {function}")
                resolved.append(("agg", function, None))
            elif isinstance(item.argument, FunctionCall):
                resolved.append(("agg", function,
                                 add_apply(item.argument)))
            else:
                resolved.append(("agg", function,
                                 position_of(item.argument)))
        else:
            raise PlanningError(
                "plain WS calls cannot be mixed with aggregates; wrap "
                "them in an aggregate or drop the aggregation")

    # The compute projection: group columns then aggregate inputs.
    projected: list[int] = []
    for position in group_source_positions:
        if position not in projected:
            projected.append(position)
    for entry in resolved:
        if entry[0] == "agg" and entry[2] is not None:
            if entry[2] not in projected:
                projected.append(entry[2])
    if not projected:
        # count(*) with no grouping still needs one column to ship.
        projected.append(0)
    index_of = {position: i for i, position in enumerate(projected)}

    group_positions = [index_of[p] for p in group_source_positions]
    aggregates: list[tuple] = []
    output_layout: list[tuple] = []
    output_columns: list[Column] = []
    taken: set = set()
    for entry in resolved:
        if entry[0] == "group":
            group_index = group_source_positions.index(entry[1])
            output_layout.append(("group", group_index))
            column = schema.columns[entry[1]]
            output_columns.append(Column(
                _unique_name(column.name, taken), column.type,
                column.size_bytes))
        else:
            _tag, function, position = entry
            agg_index = len(aggregates)
            aggregates.append(
                (function,
                 index_of[position] if position is not None else None))
            if position is None:
                base = "count_star"
            else:
                base = f"{function}_{schema.columns[position].name}"
            column_type = "int" if function == "count" else "float"
            output_columns.append(Column(
                _unique_name(base, taken), column_type))
            output_layout.append(("agg", agg_index))

    output_schema = Schema(output_columns)
    aggregation = LogicalAggregation(
        group_positions=group_positions,
        aggregates=aggregates,
        output_layout=output_layout,
        output_schema=output_schema)
    return LogicalPlan(
        scans=scans,
        join=join,
        applies=applies,
        project_positions=projected,
        output_schema=output_schema,
        aggregation=aggregation)
