"""Physical (distributed) plans.

A physical plan fixes every decision the deployment needs: which
machine scans each table, which machines evaluate the partitioned
compute subplan, the distribution policy (weighted round-robin for
stateless pipelines, hash-bucket for joins), initial weights, and
per-channel byte widths.  The actual operator trees are instantiated
by :mod:`repro.dqp.deployment`.
"""

from __future__ import annotations

import dataclasses

from repro.data.schema import Schema
from repro.planner.logical import LogicalPlan

#: Subplan identifiers used throughout deployment and adaptation.
FEED_SUBPLAN_PREFIX = "feed"
COMPUTE_SUBPLAN = "compute"
ROOT_SUBPLAN = "root"

#: Distribution policy kinds.
POLICY_WRR = "wrr"
POLICY_HASH = "hash"


@dataclasses.dataclass(frozen=True)
class ScanSubplan:
    """A scan (+ pushed-down filters) rooted by an exchange producer."""

    subplan_id: str
    table_name: str
    machine_name: str
    #: Port on the compute subplan this scan feeds (0 = build side).
    target_port: int
    #: Column position of the partitioning key (None for stateless).
    key_position: int | None
    row_bytes: int
    estimated_total: int
    filters: tuple = ()


@dataclasses.dataclass(frozen=True)
class ComputeSubplan:
    """The partitioned middle subplan (WS calls or join + project)."""

    subplan_id: str
    machine_names: tuple
    #: "wrr" or "hash"; hash requires a shared bucket map.
    policy_kind: str
    initial_weights: tuple
    #: Join key positions (build, probe); None for non-join pipelines.
    join_keys: tuple | None
    #: (function_name, argument_position) apply steps, in order.
    applies: tuple
    project_positions: tuple
    output_row_bytes: int
    estimated_output: int


@dataclasses.dataclass(frozen=True)
class PhysicalPlan:
    """Everything needed to deploy a distributed query."""

    query_id: str
    scans: tuple
    compute: ComputeSubplan
    coordinator_machine: str
    output_schema: Schema
    logical: LogicalPlan

    @property
    def aggregation(self):
        """Coordinator-side aggregation spec, or None."""
        return self.logical.aggregation

    @property
    def partitioning_degree(self) -> int:
        return len(self.compute.machine_names)

    def machines_used(self) -> list[str]:
        """All distinct machine names participating in the query."""
        names: list[str] = []
        for scan in self.scans:
            if scan.machine_name not in names:
                names.append(scan.machine_name)
        for name in self.compute.machine_names:
            if name not in names:
                names.append(name)
        if self.coordinator_machine not in names:
            names.append(self.coordinator_machine)
        return names
