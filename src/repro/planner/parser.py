"""Hand-written recursive-descent parser for the demo query class.

Grammar (case-insensitive keywords)::

    query      := SELECT item (',' item)* FROM table (',' table)*
                  [WHERE condition (AND condition)*]
                  [GROUP BY colref (',' colref)*] [';']
    item       := IDENT '(' '*' ')'                -- count(*)
                | IDENT '(' operand ')'            -- WS call / aggregate
                | colref
    operand    := IDENT '(' colref ')' | colref    -- e.g. avg(Ws(c.x))
    table      := IDENT [IDENT]
    condition  := colref op (colref | literal)
    op         := '=' | '!=' | '<' | '<=' | '>' | '>='
    colref     := IDENT ['.' IDENT]
    literal    := STRING | NUMBER
"""

from __future__ import annotations

import re
import typing

from repro.errors import ParseError
from repro.planner.ast import (
    AGGREGATE_FUNCTIONS,
    AggregateCall,
    ColumnRef,
    Comparison,
    FunctionCall,
    Literal,
    STAR,
    SelectQuery,
    TableRef,
)

_TOKEN_RE = re.compile(r"""
    \s*(?:
        (?P<number>\d+(?:\.\d+)?)
      | (?P<string>'[^']*')
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op><=|>=|!=|=|<|>)
      | (?P<punct>[(),.;*])
    )""", re.VERBOSE)

_KEYWORDS = {"select", "from", "where", "and", "group", "by"}


def tokenize(text: str) -> list[tuple[str, str]]:
    """Split ``text`` into (kind, value) tokens."""
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            if text[position:].strip() == "":
                break
            raise ParseError(
                f"unexpected character {text[position]!r} at {position}")
        position = match.end()
        kind = match.lastgroup
        value = match.group(kind)
        if kind == "ident" and value.lower() in _KEYWORDS:
            tokens.append(("keyword", value.lower()))
        else:
            tokens.append((kind, value))
    return tokens


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]]) -> None:
        self.tokens = tokens
        self.position = 0

    def peek(self) -> tuple[str, str] | None:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def advance(self) -> tuple[str, str]:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of query")
        self.position += 1
        return token

    def expect(self, kind: str, value: str | None = None) -> str:
        token = self.advance()
        if token[0] != kind or (value is not None and token[1] != value):
            raise ParseError(
                f"expected {value or kind}, got {token[1]!r}")
        return token[1]

    def accept(self, kind: str, value: str | None = None) -> bool:
        token = self.peek()
        if token and token[0] == kind and (value is None
                                           or token[1] == value):
            self.position += 1
            return True
        return False

    # -- grammar productions -----------------------------------------------

    def query(self) -> SelectQuery:
        self.expect("keyword", "select")
        items = [self.select_item()]
        while self.accept("punct", ","):
            items.append(self.select_item())
        self.expect("keyword", "from")
        tables = [self.table_ref()]
        while self.accept("punct", ","):
            tables.append(self.table_ref())
        conditions: list[Comparison] = []
        if self.accept("keyword", "where"):
            conditions.append(self.condition())
            while self.accept("keyword", "and"):
                conditions.append(self.condition())
        group_by: list[ColumnRef] = []
        if self.accept("keyword", "group"):
            self.expect("keyword", "by")
            group_by.append(self.column_ref())
            while self.accept("punct", ","):
                group_by.append(self.column_ref())
        self.accept("punct", ";")
        if self.peek() is not None:
            raise ParseError(
                f"trailing input after query: {self.peek()[1]!r}")
        return SelectQuery(tuple(items), tuple(tables), tuple(conditions),
                           tuple(group_by))

    def select_item(self):
        name = self.expect("ident")
        if not self.accept("punct", "("):
            return self._qualify(name)
        is_aggregate = name.lower() in AGGREGATE_FUNCTIONS
        if self.accept("punct", "*"):
            self.expect("punct", ")")
            if name.lower() != "count":
                raise ParseError("'*' is only valid inside count(*)")
            return AggregateCall(name, STAR)
        argument = self.call_operand()
        self.expect("punct", ")")
        if is_aggregate:
            return AggregateCall(name, argument)
        if isinstance(argument, FunctionCall):
            raise ParseError(
                f"nested call inside non-aggregate {name!r}")
        return FunctionCall(name, argument)

    def call_operand(self):
        """A column reference or a nested single-argument call."""
        name = self.expect("ident")
        if self.accept("punct", "("):
            inner = self.column_ref()
            self.expect("punct", ")")
            return FunctionCall(name, inner)
        return self._qualify(name)

    def _qualify(self, name: str) -> ColumnRef:
        if self.accept("punct", "."):
            column = self.expect("ident")
            return ColumnRef(f"{name}.{column}")
        return ColumnRef(name)

    def column_ref(self) -> ColumnRef:
        return self._qualify(self.expect("ident"))

    def table_ref(self) -> TableRef:
        name = self.expect("ident")
        token = self.peek()
        if token and token[0] == "ident":
            return TableRef(name, self.advance()[1])
        return TableRef(name)

    def condition(self) -> Comparison:
        left = self.column_ref()
        op = self.expect("op")
        token = self.peek()
        if token is None:
            raise ParseError("condition missing right-hand side")
        if token[0] == "ident":
            right: typing.Union[ColumnRef, Literal] = self.column_ref()
        elif token[0] == "number":
            self.advance()
            text = token[1]
            right = Literal(float(text) if "." in text else int(text))
        elif token[0] == "string":
            self.advance()
            right = Literal(token[1][1:-1])
        else:
            raise ParseError(f"bad condition operand {token[1]!r}")
        return Comparison(left, op, right)


def parse(text: str) -> SelectQuery:
    """Parse ``text`` into a :class:`SelectQuery`."""
    if not text or not text.strip():
        raise ParseError("empty query")
    return _Parser(tokenize(text)).query()
