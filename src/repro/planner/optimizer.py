"""The scheduling optimizer (GDQS compile stage).

Mirrors the static OGSA-DQP pipeline the paper builds on ([11]): the
query is "parsed, optimised, and scheduled employing intra-operator
parallelism".  Decisions made here:

* each scan runs on the machine hosting its Grid Data Service;
* the compute subplan (WS calls or the join) is partitioned across the
  registry's compute machines (optionally capped by ``degree``),
  excluding data hosts and the coordinator where possible;
* initial weights are proportional to the machines' nominal speeds
  (uniform for the paper's homogeneous testbed);
* joins get hash-bucket partitioning on the join key, stateless
  pipelines weighted round-robin.

The optimizer never participates in adaptation: once the plan is
deployed, rebalancing is fully decentralised (§2).
"""

from __future__ import annotations

import itertools
import typing

from repro.errors import PlanningError
from repro.grid.registry import ResourceRegistry
from repro.planner.logical import LogicalPlan, LogicalScan
from repro.planner.physical import (
    COMPUTE_SUBPLAN,
    FEED_SUBPLAN_PREFIX,
    PhysicalPlan,
    POLICY_HASH,
    POLICY_WRR,
    ComputeSubplan,
    ScanSubplan,
)

_query_ids = itertools.count(1)


def _bounded_pick(registry: ResourceRegistry,
                  data_hosts: set[str], coordinator: str, degree: int,
                  machine_order: typing.Sequence[str],
                  exclude: typing.Container[str]) -> list[str] | None:
    """Bounded walk: the first ``degree`` valid preferred machines.

    Walks ``machine_order`` collecting names that survive every filter
    of the reference path below — registered compute, not crashed, not
    excluded, not a data host or the coordinator.  If ``degree`` names
    are collected the result equals the reference result exactly:

    * the reference ranks listed machines first, in list order, and
      unlisted ones after them, so its first ``degree`` entries are
      the first ``degree`` listed survivors — precisely this walk;
    * every collected name is in the reference's ``preferred`` (and
      ``spared``) subsets, so neither of its emptiness fallbacks (use
      all candidates / waive the blacklist) can have fired.

    Returns None — caller falls back to the reference path — whenever
    the walk cannot prove equivalence: too few listed survivors, or a
    duplicated name (the reference ranks duplicates by their *last*
    occurrence).  Cost is O(walked prefix), independent of fleet size,
    and crash checks use :meth:`~ResourceRegistry.peek` so the walk
    never materializes a lazy machine it then rejects.
    """
    chosen: list[str] = []
    seen: set[str] = set()
    for name in machine_order:
        if name in seen:
            return None
        seen.add(name)
        if not registry.is_compute(name):
            continue
        machine = registry.peek(name)
        if machine is not None and machine.is_crashed:
            continue
        if name in exclude:
            continue
        if name in data_hosts or name == coordinator:
            continue
        chosen.append(name)
        if len(chosen) == degree:
            return chosen
    return None


def _pick_compute_machines(registry: ResourceRegistry,
                           data_hosts: set[str], coordinator: str,
                           degree: int | None,
                           machine_order: typing.Sequence[str] | None = None,
                           exclude: typing.Container[str] = ()
                           ) -> list[str]:
    if degree is not None and degree >= 1:
        # With no caller preference the reference path keeps registry
        # order, so the walk over ``compute_machines()`` is the same
        # prefix — lazy fleets then materialize only the ``degree``
        # machines actually placed.
        walk = (machine_order if machine_order is not None
                else registry.compute_machines())
        fast = _bounded_pick(registry, data_hosts, coordinator, degree,
                             walk, exclude)
        if fast is not None:
            return fast
    # Permanently crashed machines are not resources: deploying a
    # fragment there would park its dispatch behind a closed CPU gate
    # forever.  ``exclude`` additionally blacklists machines the
    # caller distrusts (the scheduler's retry path names the machine
    # that failed the previous attempt); unlike a crash the blacklist
    # is advisory — if honouring it would empty the pool, it yields.
    candidates = [name for name in registry.compute_machines()
                  if not registry.machine(name).is_crashed]
    if exclude:
        spared = [name for name in candidates if name not in exclude]
        if spared:
            candidates = spared
    preferred = [name for name in candidates
                 if name not in data_hosts and name != coordinator]
    chosen = preferred or candidates
    if machine_order is not None:
        # Stable preference reorder: listed machines first in the given
        # order, unlisted ones after in registry order.  With no degree
        # cap every machine still participates, so a preference that
        # lists the pool in registry order is a no-op by construction.
        rank = {name: position
                for position, name in enumerate(machine_order)}
        chosen = sorted(chosen,
                        key=lambda name: rank.get(name, len(rank)))
    if degree is not None:
        if degree < 1:
            raise PlanningError(f"degree must be >= 1: {degree}")
        if degree > len(chosen):
            raise PlanningError(
                f"degree {degree} exceeds available machines {len(chosen)}")
        chosen = chosen[:degree]
    if not chosen:
        raise PlanningError("no compute machines available")
    return chosen


def _initial_weights(registry: ResourceRegistry,
                     machine_names: typing.Sequence[str]) -> tuple:
    """Weights proportional to nominal machine speed at plan time."""
    speeds = [registry.machine(name).cpu.speed_at(0.0)
              for name in machine_names]
    total = sum(speeds)
    return tuple(speed / total for speed in speeds)


def _scan_subplan(logical_scan: LogicalScan, registry: ResourceRegistry,
                  port: int, key_position: int | None,
                  ordinal: int) -> ScanSubplan:
    metadata = registry.table(logical_scan.table_name)
    return ScanSubplan(
        subplan_id=f"{FEED_SUBPLAN_PREFIX}{ordinal}",
        table_name=logical_scan.table_name,
        machine_name=metadata.machine_name,
        target_port=port,
        key_position=key_position,
        row_bytes=logical_scan.schema.width_bytes,
        estimated_total=metadata.cardinality,
        filters=tuple(logical_scan.filters))


def optimize(logical: LogicalPlan, registry: ResourceRegistry,
             coordinator_machine: str, degree: int | None = None,
             query_id: str | None = None,
             machine_order: typing.Sequence[str] | None = None,
             exclude_machines: typing.Container[str] = ()
             ) -> PhysicalPlan:
    """Turn a logical plan into a deployable physical plan.

    ``machine_order`` expresses a caller preference over compute
    machines (most preferred first); the multi-query scheduler passes
    the least-loaded ordering so capped-degree sessions spread across
    the pool instead of piling onto the registry's first machines.
    ``exclude_machines`` is a best-effort blacklist (retry
    re-placement); crashed machines are always excluded.
    """
    data_hosts = {registry.table(scan.table_name).machine_name
                  for scan in logical.scans}
    compute_machines = _pick_compute_machines(
        registry, data_hosts, coordinator_machine, degree, machine_order,
        exclude_machines)
    weights = _initial_weights(registry, compute_machines)
    query_id = query_id or f"q{next(_query_ids)}"

    applies = tuple((apply.function_name, apply.argument_position)
                    for apply in logical.applies)
    for function_name, _pos in applies:
        if not registry.has_operation(function_name):
            raise PlanningError(f"unknown WS operation {function_name!r}")

    if logical.join is not None:
        join = logical.join
        scans = (
            _scan_subplan(join.build, registry, port=0,
                          key_position=join.build_key_position, ordinal=0),
            _scan_subplan(join.probe, registry, port=1,
                          key_position=join.probe_key_position, ordinal=1),
        )
        policy_kind = POLICY_HASH
        join_keys = (join.build_key_position, join.probe_key_position)
        estimated_output = registry.table(join.probe.table_name).cardinality
    else:
        scans = (_scan_subplan(logical.scans[0], registry, port=0,
                               key_position=None, ordinal=0),)
        policy_kind = POLICY_WRR
        join_keys = None
        estimated_output = registry.table(
            logical.scans[0].table_name).cardinality

    compute = ComputeSubplan(
        subplan_id=COMPUTE_SUBPLAN,
        machine_names=tuple(compute_machines),
        policy_kind=policy_kind,
        initial_weights=weights,
        join_keys=join_keys,
        applies=applies,
        project_positions=tuple(logical.project_positions),
        output_row_bytes=logical.output_schema.width_bytes,
        estimated_output=estimated_output)

    return PhysicalPlan(
        query_id=query_id,
        scans=scans,
        compute=compute,
        coordinator_machine=coordinator_machine,
        output_schema=logical.output_schema,
        logical=logical)
