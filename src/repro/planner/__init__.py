"""Query compilation: parsing, logical planning, physical scheduling."""

from repro.planner.ast import (
    ColumnRef,
    Comparison,
    FunctionCall,
    Literal,
    SelectQuery,
    TableRef,
)
from repro.planner.logical import (
    LogicalApply,
    LogicalJoin,
    LogicalPlan,
    LogicalScan,
    build_logical_plan,
)
from repro.planner.optimizer import optimize
from repro.planner.parser import parse, tokenize
from repro.planner.physical import (
    COMPUTE_SUBPLAN,
    ComputeSubplan,
    FEED_SUBPLAN_PREFIX,
    PhysicalPlan,
    POLICY_HASH,
    POLICY_WRR,
    ROOT_SUBPLAN,
    ScanSubplan,
)

__all__ = [
    "COMPUTE_SUBPLAN",
    "ColumnRef",
    "Comparison",
    "ComputeSubplan",
    "FEED_SUBPLAN_PREFIX",
    "FunctionCall",
    "Literal",
    "LogicalApply",
    "LogicalJoin",
    "LogicalPlan",
    "LogicalScan",
    "POLICY_HASH",
    "POLICY_WRR",
    "PhysicalPlan",
    "ROOT_SUBPLAN",
    "ScanSubplan",
    "SelectQuery",
    "TableRef",
    "build_logical_plan",
    "optimize",
    "parse",
    "tokenize",
]
