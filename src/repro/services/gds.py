"""Grid Data Services (OGSA-DAI analog).

A :class:`GridDataService` exposes one relation on one machine.  Scan
operators deployed on that machine read the relation through the
service, paying a per-tuple wrapper cost on the host CPU — modelling
the OGSA-DAI generic wrapper the paper's scans go through.  Remote
metadata (cardinality, tuple width) is available through the
``op_metadata`` operation, which the optimizer uses when planning.
"""

from __future__ import annotations

import typing

from repro.data.relation import Relation
from repro.grid.container import GridContext
from repro.grid.registry import TableMetadata
from repro.services.base import GridService


class GridDataService(GridService):
    """Exposes one relation as a Grid Data Service."""

    def __init__(self, context: GridContext, machine_name: str,
                 relation: Relation,
                 access_work_per_tuple: float = 1.0) -> None:
        super().__init__(context, f"gds:{relation.name}", machine_name)
        self.relation = relation
        self.access_work_per_tuple = access_work_per_tuple
        context.registry.add_table(TableMetadata(
            table_name=relation.name,
            gds_endpoint=self.name,
            machine_name=machine_name,
            cardinality=relation.cardinality,
            tuple_bytes=relation.tuple_bytes,
        ))

    def op_metadata(self, payload: typing.Any, sender: str
                    ) -> typing.Generator:
        """Service operation returning catalog metadata."""
        return {
            "table": self.relation.name,
            "cardinality": self.relation.cardinality,
            "tuple_bytes": self.relation.tuple_bytes,
            "columns": self.relation.schema.names(),
        }
        yield  # pragma: no cover - generator form required by dispatcher

    def read(self, start: int, count: int) -> list:
        """Local rows ``[start, start+count)`` (used by co-located scans)."""
        return self.relation.rows[start:start + count]

    def read_block(self, start: int, count: int):
        """Like :meth:`read` but as a columnar batch (same rows/tids)."""
        return self.relation.read_block(start, count)
