"""Web Service operations as typed foreign functions.

OGSA-DQP lets "arbitrary Web Services play the role of typed foreign
functions" invoked by the operation_call operator (§2).  A
:class:`WebServiceOperation` couples a real Python function (so query
results are genuine values) with a base CPU cost charged on the
machine evaluating the call; perturbations target the operation's work
label, reproducing the paper's "10 times costlier" WS experiments.
"""

from __future__ import annotations

import collections
import math
import typing

from repro.grid.registry import OperationMetadata, ResourceRegistry


class WebServiceOperation:
    """A named, costed, deterministic operation."""

    def __init__(self, name: str,
                 function: typing.Callable[[typing.Any], typing.Any],
                 base_work_ms: float) -> None:
        self.name = name
        self.function = function
        self.base_work_ms = base_work_ms

    @property
    def work_label(self) -> str:
        """The perturbation-target label for this operation's work."""
        return f"ws:{self.name}"

    def invoke(self, value: typing.Any) -> typing.Any:
        """Compute the operation's actual result."""
        return self.function(value)

    def register(self, registry: ResourceRegistry,
                 machine_names: typing.Sequence[str]) -> None:
        """Advertise this operation in the resource registry."""
        registry.add_operation(OperationMetadata(
            operation_name=self.name,
            machine_names=list(machine_names),
            base_work_ms=self.base_work_ms,
        ))


#: Memo for :func:`shannon_entropy`.  The function is pure and the
#: cached demo relations re-serve identical sequence strings across
#: runs, so repeat calls are dictionary hits.  Cleared wholesale at
#: the (generous) bound rather than LRU-tracked: staying cheap on the
#: hot path matters more than eviction precision.
_ENTROPY_CACHE: dict[str, float] = {}
_ENTROPY_CACHE_LIMIT = 1 << 16


def shannon_entropy(sequence: str) -> float:
    """Shannon entropy (bits/symbol) of a sequence.

    The real computation behind the paper's ``EntropyAnalyser``
    bioinformatics service.
    """
    if not sequence:
        return 0.0
    cached = _ENTROPY_CACHE.get(sequence)
    if cached is not None:
        return cached
    counts = collections.Counter(sequence)
    total = len(sequence)
    entropy = -sum((count / total) * math.log2(count / total)
                   for count in counts.values())
    if len(_ENTROPY_CACHE) >= _ENTROPY_CACHE_LIMIT:
        _ENTROPY_CACHE.clear()
    _ENTROPY_CACHE[sequence] = entropy
    return entropy


def make_entropy_analyser(base_work_ms: float = 5.0) -> WebServiceOperation:
    """The demo ``EntropyAnalyser`` operation used by Q1."""
    return WebServiceOperation("EntropyAnalyser", shannon_entropy,
                               base_work_ms)
