"""Publish/subscribe support for adaptivity components.

The paper's adaptivity components "can subscribe to each other and
communicate asynchronously via notifications" (§2).
:class:`NotificationPublisher` is a mixin for services that maintain
per-topic subscriber lists and fan notifications out over the network.
Subscriptions may be established either by a direct API call during
wiring (the coordinator knows the endpoints) or remotely through the
``op_subscribe`` service operation.
"""

from __future__ import annotations

import typing

from repro.errors import ServiceError


class NotificationPublisher:
    """Mixin adding topic-based publication to a GridService."""

    def __init__(self) -> None:
        self._subscribers: dict[str, list[str]] = {}
        self.notifications_published = 0

    def subscribe(self, topic: str, endpoint: str) -> None:
        """Register ``endpoint`` for notifications on ``topic``."""
        subscribers = self._subscribers.setdefault(topic, [])
        if endpoint not in subscribers:
            subscribers.append(endpoint)

    def unsubscribe(self, topic: str, endpoint: str) -> None:
        subscribers = self._subscribers.get(topic, [])
        if endpoint in subscribers:
            subscribers.remove(endpoint)

    def subscribers_of(self, topic: str) -> list[str]:
        return list(self._subscribers.get(topic, []))

    def publish(self, topic: str, payload: typing.Any) -> int:
        """Notify every subscriber of ``topic``; returns the fan-out."""
        notify = getattr(self, "notify", None)
        if notify is None:
            raise ServiceError(
                "NotificationPublisher must be mixed into a GridService")
        subscribers = self._subscribers.get(topic, [])
        for endpoint in subscribers:
            notify(endpoint, topic, payload)
        self.notifications_published += len(subscribers)
        return len(subscribers)

    # Remote subscription endpoint (GridService op_ convention).
    def op_subscribe(self, payload: dict, sender: str
                     ) -> typing.Generator:
        """Service operation: ``{"topic": ...}`` subscribes the sender."""
        self.subscribe(payload["topic"], sender)
        return "subscribed"
        yield  # pragma: no cover - generator form required by dispatcher
