"""Grid service base class.

Services are the paper's unit of deployment: loosely-coupled,
machine-bound components that communicate asynchronously by message.
A :class:`GridService` owns a network endpoint and a dispatch loop
that routes incoming messages:

* ``request`` messages invoke ``op_<subject>`` generator methods and
  send the returned value back as a ``response``;
* ``notify`` messages invoke :meth:`on_notification` (pub/sub);
* ``data`` and ``control`` messages invoke :meth:`on_data` and
  :meth:`on_control`, which engine-level services override.

The synchronous-looking :meth:`call` helper performs a full
request/response round trip over the simulated network, so control
interactions (e.g. the Responder polling producers for progress) pay
realistic latency.
"""

from __future__ import annotations

import itertools
import typing

from repro.errors import ServiceError
from repro.grid.container import GridContext
from repro.net.message import (
    KIND_CONTROL,
    KIND_DATA,
    KIND_NOTIFY,
    KIND_REQUEST,
    KIND_RESPONSE,
    Message,
)
from repro.sim.events import Event

#: Wire size assumed for small control/notification payloads.
CONTROL_MESSAGE_BYTES = 768

_correlation_ids = itertools.count(1)


class GridService:
    """Base class for all simulated Grid services."""

    def __init__(self, context: GridContext, name: str,
                 machine_name: str) -> None:
        self.context = context
        self.env = context.env
        self.network = context.network
        self.name = name
        self.machine = context.registry.machine(machine_name)
        self.mailbox = self.network.register(name, machine_name)
        self._pending_calls: dict[int, Event] = {}
        # Correlation ids of calls already settled (timed out, or
        # completed by a first reply): a reply arriving for one — a
        # stale reply after a timeout, or a chaos-duplicated response —
        # must be discarded, not treated as a protocol violation.
        self._settled_calls: set[int] = set()
        self.stale_replies_discarded = 0
        # Messages held while the host machine is frozen (chaos).
        self._frozen_outbox: list = []
        self._flusher_running = False
        self._running = True
        self.crashed = False
        self._dispatcher = self.env.process(
            self._dispatch_loop(), name=f"dispatch:{name}")
        context.track_service(self)

    # -- lifecycle -----------------------------------------------------------

    def shutdown(self) -> None:
        """Stop dispatching and release the endpoint."""
        self._running = False
        self.network.unregister(self.name)

    def crash(self) -> None:
        """Simulate a host failure taking this service down.

        Dispatching stops, the endpoint is deactivated (messages to it
        are blackholed, as a dead LAN peer would), and the
        :meth:`on_crash` hook lets subclasses halt their internal
        activity.  Crashing is idempotent.
        """
        if self.crashed:
            return
        self.crashed = True
        self._running = False
        self.network.deactivate(self.name)
        self.on_crash()

    def on_crash(self) -> None:
        """Subclass hook run when the service crashes (default: none)."""

    # -- outgoing ---------------------------------------------------------

    def send(self, recipient: str, kind: str, payload: typing.Any,
             subject: str = "", size_bytes: int = CONTROL_MESSAGE_BYTES,
             correlation_id: int | None = None) -> Event:
        """Fire-and-forget message send; returns the delivery event."""
        if self.crashed:
            # A crashed host sends nothing; pretend instant "delivery"
            # so any in-flight process winds down without errors.
            return Event(self.env).succeed(None)
        message = Message(sender=self.name, recipient=recipient, kind=kind,
                          payload=payload, size_bytes=size_bytes,
                          subject=subject, correlation_id=correlation_id)
        if self.machine.frozen_until > self.env.now:
            # A frozen host transmits nothing; hold the message (as its
            # socket buffers would) and flush it when the stall ends.
            deferred = Event(self.env)
            self._frozen_outbox.append((message, deferred))
            if not self._flusher_running:
                self._flusher_running = True
                self.env.process(self._flush_frozen_outbox(),
                                 name=f"thaw-flush:{self.name}")
            return deferred
        return self.network.send(message)

    def _flush_frozen_outbox(self) -> typing.Generator:
        try:
            while self.machine.frozen_until > self.env.now:
                yield self.env.timeout(
                    self.machine.frozen_until - self.env.now)
            held, self._frozen_outbox = self._frozen_outbox, []
            for message, deferred in held:
                if self.crashed:
                    deferred.succeed(None)
                    continue
                self.env.process(self._forward_delivery(
                    self.network.send(message), deferred),
                    name=f"thaw-send:{self.name}")
        finally:
            self._flusher_running = False

    @staticmethod
    def _forward_delivery(delivery: Event,
                          deferred: Event) -> typing.Generator:
        value = yield delivery
        deferred.succeed(value)

    def notify(self, recipient: str, topic: str,
               payload: typing.Any) -> Event:
        """Send an asynchronous pub/sub notification."""
        return self.send(recipient, KIND_NOTIFY, payload, subject=topic)

    def call(self, recipient: str, operation: str,
             payload: typing.Any = None, timeout_ms: float | None = None,
             retry=None
             ) -> typing.Generator[Event, typing.Any, typing.Any]:
        """Request/response round trip: ``result = yield from call(...)``.

        With ``timeout_ms`` set, a missing response (e.g. the recipient
        crashed) raises :class:`~repro.errors.ServiceError` instead of
        blocking forever.  With a :class:`~repro.chaos.config
        .RetryPolicy` as ``retry``, failed attempts are repeated after
        a capped, jittered exponential backoff (each attempt bounded by
        ``timeout_ms`` or, failing that, the policy's ``timeout_ms``)
        until one succeeds or ``max_attempts`` is exhausted.
        """
        if retry is not None:
            result = yield from self._call_with_retry(
                recipient, operation, payload, timeout_ms, retry)
            return result
        correlation_id = next(_correlation_ids)
        reply = self.env.event()
        self._pending_calls[correlation_id] = reply
        self.send(recipient, KIND_REQUEST, payload, subject=operation,
                  correlation_id=correlation_id)
        if timeout_ms is None:
            response = yield reply
            return response
        winner, value = yield self.env.any_of(
            [reply, self.env.timeout(timeout_ms)])
        if winner is not reply:
            if self._pending_calls.pop(correlation_id, None) is not None:
                self._settled_calls.add(correlation_id)
            raise ServiceError(
                f"{self.name}: call {operation!r} to {recipient} timed "
                f"out after {timeout_ms} ms")
        return value

    def _call_with_retry(self, recipient: str, operation: str,
                         payload: typing.Any, timeout_ms: float | None,
                         retry) -> typing.Generator:
        attempt_timeout = (timeout_ms if timeout_ms is not None
                           else retry.timeout_ms)
        attempt = 0
        while True:
            attempt += 1
            try:
                result = yield from self.call(
                    recipient, operation, payload,
                    timeout_ms=attempt_timeout)
                return result
            except ServiceError:
                if (retry.max_attempts is not None
                        and attempt >= retry.max_attempts):
                    raise
                chaos = self.context.chaos
                if chaos is not None:
                    chaos.count_retry("call")
                    backoff = chaos.retry_backoff_ms(retry, attempt)
                else:
                    backoff = retry.backoff_ms(attempt)
                if backoff > 0:
                    yield self.env.timeout(backoff)

    # -- incoming ---------------------------------------------------------

    def _dispatch_loop(self) -> typing.Generator:
        while self._running:
            message = yield self.mailbox.get()
            while self.machine.frozen_until > self.env.now:
                # Frozen host: delivered messages sit in the mailbox's
                # kernel buffer until the stall ends.
                yield self.env.timeout(
                    self.machine.frozen_until - self.env.now)
            self._route(message)

    def _route(self, message: Message) -> None:
        if message.kind == KIND_RESPONSE:
            self._complete_call(message)
        elif message.kind == KIND_REQUEST:
            self.env.process(self._serve_request(message),
                             name=f"{self.name}:op:{message.subject}")
        elif message.kind == KIND_NOTIFY:
            self.on_notification(message.subject, message.payload,
                                 message.sender)
        elif message.kind == KIND_DATA:
            self.on_data(message)
        elif message.kind == KIND_CONTROL:
            self.on_control(message)
        else:
            raise ServiceError(
                f"{self.name}: unknown message kind {message.kind!r}")

    def _complete_call(self, message: Message) -> None:
        reply = self._pending_calls.pop(message.correlation_id, None)
        if reply is None:
            if message.correlation_id in self._settled_calls:
                # Reply to a call that already timed out or was
                # answered (duplicated response): discard it instead
                # of misdelivering (or killing the dispatcher).
                self.stale_replies_discarded += 1
                return
            raise ServiceError(
                f"{self.name}: unexpected response "
                f"(correlation {message.correlation_id})")
        self._settled_calls.add(message.correlation_id)
        if isinstance(message.payload, BaseException):
            reply.fail(message.payload)
        else:
            reply.succeed(message.payload)

    def _serve_request(self, message: Message) -> typing.Generator:
        handler = getattr(self, f"op_{message.subject}", None)
        if handler is None:
            result: typing.Any = ServiceError(
                f"{self.name}: no operation {message.subject!r}")
        else:
            try:
                result = yield from handler(message.payload, message.sender)
            except Exception as exc:  # delivered to the caller
                result = exc
        self.send(message.sender, KIND_RESPONSE, result,
                  subject=message.subject,
                  correlation_id=message.correlation_id)

    # -- overridable hooks ---------------------------------------------------

    def on_notification(self, topic: str, payload: typing.Any,
                        sender: str) -> None:
        """Handle a pub/sub notification (default: ignore)."""

    def on_data(self, message: Message) -> None:
        """Handle a tuple-buffer message (engine services override)."""
        raise ServiceError(f"{self.name}: unexpected data message")

    def on_control(self, message: Message) -> None:
        """Handle an engine control message (engine services override)."""
        raise ServiceError(f"{self.name}: unexpected control message")
