"""Grid service fabric: base service, pub/sub, data and WS services."""

from repro.services.base import CONTROL_MESSAGE_BYTES, GridService
from repro.services.gds import GridDataService
from repro.services.pubsub import NotificationPublisher
from repro.services.ws import (
    WebServiceOperation,
    make_entropy_analyser,
    shannon_entropy,
)

__all__ = [
    "CONTROL_MESSAGE_BYTES",
    "GridDataService",
    "GridService",
    "NotificationPublisher",
    "WebServiceOperation",
    "make_entropy_analyser",
    "shannon_entropy",
]
