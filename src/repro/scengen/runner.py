"""Executes generated scenarios and digests their runs for oracles.

:func:`fuzz_cell` is the module-level, picklable sweep-cell body: it
takes a scenario as its JSON dict, runs the probe plan on fresh demo
grids, applies every registered oracle and returns a JSON-able
outcome record — so the fuzz corpus is built through the existing
:class:`~repro.experiments.harness.SweepRunner` fork pool and is
byte-identical for any ``--jobs N``.

The probe plan per scenario:

* **main** — the scenario as generated (metrics on, reported to the
  experiment metrics sink);
* **rerun** — the identical configuration again (determinism oracle);
* **unit batch** — same run at ``batch_size=1`` (row-identity oracle),
  skipped when the scenario already runs at 1;
* **quiet** — metrics registry off and an explicitly *disabled*
  ``ChaosConfig`` substituted for ``None`` (zero-cost oracle);
* **baseline** — static, unperturbed, fault-free run of the same
  query/spec/batch (row-conservation reference and feedback
  normaliser).
"""

from __future__ import annotations

import hashlib
import traceback

from repro.chaos import ChaosConfig, MachineCrash, MachineFreeze
from repro.config import AdaptivityConfig, EngineConfig, FaultToleranceConfig
from repro.errors import QueryFailedError
from repro.experiments.harness import collect_metrics
from repro.scengen.grammar import PACING_PROFILES, Scenario
from repro.scengen.oracles import ProbeOutcome, RunDigest, check_all
from repro.workloads.proteins import DemoGrid, DemoGridSpec, \
    compute_machine_name
from repro.workloads.queries import Q1, Q2
from repro.workloads.scenarios import (
    perturb_join_sleep,
    perturb_machine_load,
    perturb_ws_cost,
    perturb_ws_cost_varying,
)

_QUERIES = {"Q1": Q1, "Q2": Q2}

#: Heartbeat pacing for freeze scenarios (the chaos experiment's
#: suspect/quarantine configuration).
_FREEZE_FT = dict(enabled=True, heartbeat_interval_ms=200.0,
                  suspect_timeout_ms=500.0, failure_timeout_ms=5000.0)

#: Crash scenarios detect fast and skip the suspect phase: heartbeats
#: never resume from a permanent loss, so quarantine would only delay
#: the rebuild.
_CRASH_FT = dict(enabled=True, heartbeat_interval_ms=200.0,
                 failure_timeout_ms=700.0)


def grid_spec(scenario: Scenario) -> DemoGridSpec:
    return DemoGridSpec(
        compute_machines=scenario.compute_machines,
        sequences_cardinality=scenario.sequences,
        interactions_cardinality=scenario.interactions,
        seed=scenario.world_seed,
        sites=scenario.sites,
        lazy_machines=scenario.lazy_machines)


def adaptivity_for(scenario: Scenario) -> AdaptivityConfig:
    if not scenario.adaptive:
        return AdaptivityConfig.disabled()
    return AdaptivityConfig(policy=scenario.policy,
                            **PACING_PROFILES[scenario.pacing])


def engine_config_for(scenario: Scenario,
                      batch_size: int | None = None) -> EngineConfig:
    adaptivity = adaptivity_for(scenario)
    logging_enabled = adaptivity.enabled and adaptivity.retrospective
    return EngineConfig(batch_size=batch_size or scenario.batch_size,
                        columnar=scenario.columnar,
                        logging_enabled=logging_enabled)


def chaos_config_for(scenario: Scenario) -> ChaosConfig | None:
    rule = scenario.chaos
    if rule is None:
        return None
    freezes = tuple(
        MachineFreeze(compute_machine_name(f.machine_index),
                      at_ms=f.at_ms, duration_ms=f.duration_ms)
        for f in rule.freezes)
    crashes = tuple(
        MachineCrash(compute_machine_name(c.machine_index),
                     at_ms=c.at_ms)
        for c in rule.crashes)
    return ChaosConfig.lossy(
        drop_probability=rule.drop,
        duplicate_probability=rule.duplicate,
        delay_probability=rule.delay,
        delay_ms=rule.delay_ms,
        ws_failure_probability=rule.ws_failure,
        freezes=freezes,
        crashes=crashes)


def fault_tolerance_for(scenario: Scenario) -> FaultToleranceConfig | None:
    if not scenario.fault_tolerance:
        return None
    if scenario.chaos is not None and scenario.chaos.crashes:
        return FaultToleranceConfig(**_CRASH_FT)
    return FaultToleranceConfig(**_FREEZE_FT)


def apply_perturbations(grid: DemoGrid, scenario: Scenario) -> None:
    for rule in scenario.perturbations:
        if rule.kind == "ws-cost":
            perturb_ws_cost(grid, factor=rule.factor,
                            machines=rule.machines)
        elif rule.kind == "ws-volatile":
            perturb_ws_cost_varying(grid, low=rule.low, high=rule.high,
                                    machines=rule.machines)
        elif rule.kind == "join-sleep":
            perturb_join_sleep(grid, sleep_ms=rule.sleep_ms,
                               machines=rule.machines)
        elif rule.kind == "machine-load":
            perturb_machine_load(grid, factor=rule.factor,
                                 machines=rule.machines,
                                 start_ms=rule.start_ms,
                                 end_ms=rule.end_ms or float("inf"))
        else:
            raise ValueError(f"unknown perturbation kind {rule.kind!r}")


def _root_channel_counts(grid: DemoGrid) -> tuple[int, int]:
    """(received, discarded) summed over the root exchange channel."""
    received = discarded = -1
    for record in grid.context.metrics.snapshot():
        channel = record.get("labels", {}).get("channel", "")
        if not channel.startswith("root:"):
            continue
        if record.get("name") == "exchange_rows_received":
            received = max(received, 0) + int(record["value"])
        elif record.get("name") == "exchange_rows_discarded":
            discarded = max(discarded, 0) + int(record["value"])
    return received, discarded


def _digest(grid: DemoGrid, result) -> RunDigest:
    rows_sha = hashlib.sha256(
        "\n".join(sorted(repr(row.values) for row in result.rows))
        .encode()).hexdigest()[:16]
    timeline = [(event.timestamp, event.category, event.source,
                 event.description)
                for event in grid.context.tracer.events]
    trace_sha = hashlib.sha256(repr(timeline).encode()).hexdigest()[:16]
    if grid.context.metrics.enabled:
        sink_rows, sink_discards = _root_channel_counts(grid)
    else:
        sink_rows = sink_discards = -1
    stats = result.stats
    return RunDigest(
        rows_sha=rows_sha, rows_count=stats.result_count,
        trace_sha=trace_sha, response_ms=stats.response_time_ms,
        events=grid.context.env.events_scheduled,
        adaptations=stats.adaptations_accepted,
        oscillation=round(stats.oscillation, 9),
        sink_rows=sink_rows, sink_discards=sink_discards)


def _run(scenario: Scenario, batch_size: int | None = None,
         metrics_enabled: bool = True,
         quiet_chaos: bool = False, report: bool = False) -> RunDigest:
    chaos = chaos_config_for(scenario)
    if quiet_chaos and chaos is None:
        # A *disabled* config must be indistinguishable from None.
        chaos = ChaosConfig()
    grid = DemoGrid(grid_spec(scenario),
                    engine_config=engine_config_for(scenario, batch_size),
                    fault_tolerance=fault_tolerance_for(scenario),
                    metrics_enabled=metrics_enabled,
                    chaos=chaos)
    apply_perturbations(grid, scenario)
    try:
        result = grid.run(_QUERIES[scenario.query],
                          adaptivity_for(scenario),
                          degree=scenario.degree)
    except QueryFailedError as exc:
        # A typed failure is a clean terminal outcome, not a probe
        # error: digest the failed run so determinism and availability
        # oracles still apply to it.
        return _failed_digest(grid, exc.failure)
    if report:
        collect_metrics(grid, experiment="fuzz",
                        scenario=scenario.scenario_id,
                        policy=scenario.policy, query=scenario.query)
    return _digest(grid, result)


def _failed_digest(grid: DemoGrid, failure) -> RunDigest:
    timeline = [(event.timestamp, event.category, event.source,
                 event.description)
                for event in grid.context.tracer.events]
    trace_sha = hashlib.sha256(repr(timeline).encode()).hexdigest()[:16]
    return RunDigest(
        rows_sha="", rows_count=0, trace_sha=trace_sha,
        response_ms=failure.elapsed_ms,
        events=grid.context.env.events_scheduled,
        adaptations=0, oscillation=0.0,
        failure=failure.cause)


def _baseline(scenario: Scenario) -> RunDigest:
    static = scenario.replace(policy="static", pacing="paper",
                              perturbations=(), chaos=None,
                              fault_tolerance=False)
    return _run(static)


def probe_scenario(scenario: Scenario) -> ProbeOutcome:
    """Run the full probe plan; crashes become the ``error`` field."""
    record = scenario.to_json()
    try:
        baseline = _baseline(scenario)
        main = _run(scenario, report=True)
        rerun = _run(scenario)
        unit_batch = (None if scenario.batch_size == 1
                      else _run(scenario, batch_size=1))
        quiet = _run(scenario, metrics_enabled=False, quiet_chaos=True)
    except Exception:  # noqa: BLE001 - a crash is a finding, not an exit
        trace = traceback.format_exc().strip().splitlines()
        return ProbeOutcome(scenario=record, main=None, rerun=None,
                            unit_batch=None, quiet=None, baseline=None,
                            error=trace[-1] if trace else "crash")
    return ProbeOutcome(scenario=record, main=main, rerun=rerun,
                        unit_batch=unit_batch, quiet=quiet,
                        baseline=baseline)


def fuzz_cell(scenario: dict) -> dict:
    """Sweep-cell body: probe one scenario, judge it, return JSON.

    Module-level and dict-in/dict-out so a cell crosses the fork
    boundary unchanged (see :class:`SweepCell`).
    """
    parsed = Scenario.from_json(scenario)
    outcome = probe_scenario(parsed)
    violations = check_all(outcome)
    return {
        "id": parsed.scenario_id,
        "scenario": outcome.scenario,
        "rules": list(parsed.rules),
        "error": outcome.error,
        "main": outcome.main.to_json() if outcome.main else None,
        "unit_batch": (outcome.unit_batch.to_json()
                       if outcome.unit_batch else None),
        "baseline": (outcome.baseline.to_json()
                     if outcome.baseline else None),
        "violations": [v.to_json() for v in violations],
    }
