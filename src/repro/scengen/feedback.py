"""Adaptive rule weighting: the grammar learns where it hurts.

After every sweep round the fuzzer feeds each outcome back through
:class:`AdaptiveWeights`: rules whose scenarios violated an invariant
are boosted hard, rules whose scenarios showed *interesting* dynamics
(hunting controllers, heavy oscillation, badly missed response
times) are boosted gently, and rules that produced quiet runs decay
back toward neutral — the pyrqg ``AdaptiveGrammar`` loop.  All
arithmetic is plain float math over outcomes in corpus order, so the
evolved weights (and hence the whole corpus) are reproducible for
any worker count.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.scengen.oracles import MAX_ADAPTATIONS, RunDigest


@dataclasses.dataclass
class RuleStats:
    """Book-keeping per grammar rule."""

    runs: int = 0
    violations: int = 0
    interest: float = 0.0

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


def interest_score(digest: RunDigest | None,
                   baseline: RunDigest | None) -> float:
    """How *interesting* a non-violating run was, in ``[0, 1]``.

    Interest is poor adaptation, not mere slowness: a hunting
    controller (many adaptations), reversed workload moves
    (oscillation) or a response time that blows far past the static
    baseline despite adapting.
    """
    if digest is None:
        return 1.0
    score = 0.0
    if digest.adaptations > 4:
        score += min(1.0, (digest.adaptations - 4) / MAX_ADAPTATIONS)
    score += min(1.0, digest.oscillation / 4.0)
    if baseline is not None and baseline.response_ms > 0:
        slowdown = digest.response_ms / baseline.response_ms
        if slowdown > 6.0:
            score += 0.5
    return min(1.0, score)


class AdaptiveWeights:
    """Multiplicative rule-weight updates with decay toward neutral."""

    def __init__(self,
                 base: typing.Mapping[str, float] | None = None,
                 learning_rate: float = 0.6,
                 min_weight: float = 0.2,
                 max_weight: float = 6.0) -> None:
        self.learning_rate = learning_rate
        self.min_weight = min_weight
        self.max_weight = max_weight
        self._weights: dict[str, float] = dict(base or {})
        self.stats: dict[str, RuleStats] = {}

    def weight(self, rule: str) -> float:
        return self._weights.get(rule, 1.0)

    def observe(self, rules: typing.Iterable[str], violated: bool,
                interest: float = 0.0) -> None:
        """Fold one scenario's outcome into its rules' weights."""
        interest = max(0.0, min(1.0, interest))
        for rule in rules:
            stats = self.stats.setdefault(rule, RuleStats())
            stats.runs += 1
            weight = self.weight(rule)
            if violated:
                stats.violations += 1
                weight *= 1.0 + self.learning_rate
            elif interest > 0.0:
                stats.interest += interest
                weight *= 1.0 + self.learning_rate * interest * 0.5
            else:
                # Quiet run: relax toward neutral so early noise
                # cannot pin the grammar in a corner forever.
                weight += (1.0 - weight) * 0.25
            self._weights[rule] = max(self.min_weight,
                                      min(self.max_weight, weight))

    def snapshot(self) -> dict[str, float]:
        """Current weights, sorted by name (stable for reports)."""
        return {rule: round(self._weights[rule], 6)
                for rule in sorted(self._weights)}

    def hottest(self, count: int = 8) -> list[tuple[str, float]]:
        """The ``count`` most up-weighted rules (ties by name)."""
        ranked = sorted(self._weights.items(),
                        key=lambda item: (-item[1], item[0]))
        return [(rule, round(weight, 3))
                for rule, weight in ranked[:count] if weight > 1.0]
