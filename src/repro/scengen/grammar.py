"""The scenario grammar: seeded composition of fuzzable workloads.

A :class:`Scenario` is a frozen, JSON-round-trippable description of
one complete run configuration: query and plan shape, data sizes,
world seed, batch granularity, adaptation policy and pacing,
perturbation schedule and chaos fault schedule.  Generation is a pure
function of ``(GRAMMAR_VERSION, master seed, index, rule weights)``:
the per-scenario RNG is derived by hashing, never shared, so scenario
``i`` is byte-identical however many workers generate the corpus and
whatever order they run in.

Each choice the grammar makes is attributed to a named *rule*
(``"query:Q2"``, ``"pacing:twitchy"``, ``"perturb:join-sleep"`` ...)
recorded on the scenario, so the feedback loop
(:mod:`repro.scengen.feedback`) can up-weight exactly the rules whose
scenarios misbehave — the pyrqg ``AdaptiveGrammar`` shape.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
import typing

#: Bump on any change to the scenario space or the draw order: a
#: corpus is only reproducible against the grammar that generated it.
#: v2 added the ``columnar`` axis (columnar vs legacy row plane).
#: v3 added the ``crash`` chaos kind (permanent machine loss).
#: v4 added the ``fleet`` axis (multi-site grids with lazy machines
#: and a capped parallelism degree), drawn after chaos.
GRAMMAR_VERSION = 4

#: Adaptivity pacing profiles by name.  ``paper`` keeps the paper's
#: conservative defaults (one adaptation per run); ``twitchy`` is the
#: tournament's dense-monitoring/low-threshold loop that surfaces
#: controller dynamics (and engine races) within a single run.
PACING_PROFILES: dict[str, dict] = {
    "paper": {},
    "brisk": dict(m1_interval=4, window_size=10,
                  thres_m=0.12, thres_a=0.12,
                  progress_cutoff=0.95,
                  cooldown_ms=250.0, decision_latency_ms=400.0),
    "twitchy": dict(m1_interval=2, window_size=8,
                    thres_m=0.08, thres_a=0.08,
                    progress_cutoff=0.97,
                    cooldown_ms=100.0, decision_latency_ms=100.0),
}

#: The non-policy name selecting a static (adaptivity-off) run.
STATIC_POLICY = "static"


@dataclasses.dataclass(frozen=True)
class PerturbationRule:
    """One perturbation of the generated scenario.

    ``kind`` selects the applier from
    :mod:`repro.workloads.scenarios`; the remaining fields are that
    applier's parameters (unused ones stay 0).  ``end_ms=0`` on a
    windowed kind means open-ended.
    """

    kind: str
    machines: int = 1
    factor: float = 0.0
    sleep_ms: float = 0.0
    low: float = 0.0
    high: float = 0.0
    start_ms: float = 0.0
    end_ms: float = 0.0


@dataclasses.dataclass(frozen=True)
class FreezeRule:
    """A machine freeze by compute-machine index (0-based)."""

    machine_index: int
    at_ms: float
    duration_ms: float


@dataclasses.dataclass(frozen=True)
class CrashRule:
    """A permanent machine crash by compute-machine index (0-based)."""

    machine_index: int
    at_ms: float


@dataclasses.dataclass(frozen=True)
class ChaosRule:
    """Chaos knobs; mapped onto :func:`repro.chaos.ChaosConfig.lossy`."""

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_ms: float = 0.0
    ws_failure: float = 0.0
    freezes: tuple = ()
    crashes: tuple = ()


@dataclasses.dataclass(frozen=True)
class Scenario:
    """One fully determined run configuration.

    Everything the runner needs is here; nothing is drawn at run
    time.  ``rules`` records the grammar rules that produced the
    scenario, for feedback attribution.
    """

    grammar_version: int
    seed: int
    query: str
    sequences: int
    interactions: int
    world_seed: int
    compute_machines: int
    batch_size: int
    policy: str
    pacing: str
    columnar: bool = True
    perturbations: tuple = ()
    chaos: ChaosRule | None = None
    fault_tolerance: bool = False
    #: Fleet shape (v4): compute sites, lazy machine registration and
    #: the plan's parallelism degree (None = use the whole pool).
    #: Defaults reproduce every pre-v4 scenario unchanged.
    sites: int = 1
    lazy_machines: bool = False
    degree: int | None = None
    rules: tuple = ()

    @property
    def scenario_id(self) -> str:
        """Short content digest naming corpus/repro artifacts."""
        return hashlib.sha256(
            self.canonical_json().encode()).hexdigest()[:12]

    @property
    def adaptive(self) -> bool:
        return self.policy != STATIC_POLICY

    # -- JSON round trip -------------------------------------------------

    def to_json(self) -> dict:
        record = dataclasses.asdict(self)
        record["perturbations"] = [dataclasses.asdict(p)
                                   for p in self.perturbations]
        if self.chaos is not None:
            chaos = dataclasses.asdict(self.chaos)
            chaos["freezes"] = [dataclasses.asdict(f)
                                for f in self.chaos.freezes]
            chaos["crashes"] = [dataclasses.asdict(c)
                                for c in self.chaos.crashes]
            record["chaos"] = chaos
        record["rules"] = list(self.rules)
        return record

    def canonical_json(self) -> str:
        return json.dumps(self.to_json(), sort_keys=True)

    @classmethod
    def from_json(cls, record: typing.Mapping) -> "Scenario":
        record = dict(record)
        record["perturbations"] = tuple(
            PerturbationRule(**p) for p in record.get("perturbations", ()))
        chaos = record.get("chaos")
        if chaos is not None:
            chaos = dict(chaos)
            chaos["freezes"] = tuple(FreezeRule(**f)
                                     for f in chaos.get("freezes", ()))
            chaos["crashes"] = tuple(CrashRule(**c)
                                     for c in chaos.get("crashes", ()))
            record["chaos"] = ChaosRule(**chaos)
        record["rules"] = tuple(record.get("rules", ()))
        return cls(**record)

    def replace(self, **changes) -> "Scenario":
        return dataclasses.replace(self, **changes)


def derive_seed(master_seed: int, index: int,
                version: int = GRAMMAR_VERSION) -> int:
    """The scenario RNG seed for corpus position ``index``.

    Hash-derived (the :class:`~repro.sim.rand.RandomStreams` idiom)
    so scenarios are independent of each other and of how many were
    generated before them.
    """
    digest = hashlib.sha256(
        f"scengen:{version}:{master_seed}:{index}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


#: Choice tables.  Each axis is a tuple of (rule suffix, value); the
#: rule name ``"<axis>:<suffix>"`` keys the weight table.
_QUERIES = (("Q1", "Q1"), ("Q2", "Q2"))
_SIZES = (("small", (60, 90)), ("medium", (120, 180)),
          ("large", (200, 300)))
_WORLD_SEEDS = tuple((str(i), i) for i in range(4))
_MACHINES = (("2", 2), ("3", 3))
_BATCHES = (("1", 1), ("4", 4), ("32", 32))
_COLUMNAR = (("on", True), ("off", False))
_POLICIES = ((STATIC_POLICY, STATIC_POLICY),
             ("paper-A1R1", "paper-A1R1"), ("paper-A1R2", "paper-A1R2"),
             ("paper-A2R1", "paper-A2R1"), ("paper-A2R2", "paper-A2R2"),
             ("hysteresis", "hysteresis"), ("pid", "pid"),
             ("chaos-aware", "chaos-aware"))
_PACINGS = tuple((name, name) for name in PACING_PROFILES)
_PERTURB_COUNTS = (("none", 0), ("one", 1), ("two", 2))
#: Perturbation kinds valid per query: WS perturbations target Q1's
#: operation call, the join sleep targets Q2's probe.
_PERTURB_KINDS = {
    "Q1": (("ws-cost", "ws-cost"), ("ws-volatile", "ws-volatile"),
           ("machine-load", "machine-load")),
    "Q2": (("join-sleep", "join-sleep"), ("machine-load", "machine-load")),
}
#: Fleet shapes: (machines, sites).  ``none`` keeps the scenario's
#: drawn machine count on the legacy flat single-site grid; the fleet
#: shapes override it with a larger lazily-registered multi-site pool
#: and cap the plan degree at 2 so placement exercises the site tier
#: without exploding per-scenario runtime.
_FLEETS = (("none", None), ("16x4", (16, 4)), ("64x8", (64, 8)))
_FLEET_DEGREE = 2
_CHAOS_KINDS = {
    "Q1": (("none", None), ("lossy", "lossy"), ("laggy", "laggy"),
           ("freeze", "freeze"), ("crash", "crash"),
           ("flaky-ws", "flaky-ws")),
    # Q2 has no WS call to make flaky.
    "Q2": (("none", None), ("lossy", "lossy"), ("laggy", "laggy"),
           ("freeze", "freeze"), ("crash", "crash")),
}

#: Rules that start below neutral weight: static runs exercise no
#: adaptation and fault-free is already every experiment's territory.
DEFAULT_WEIGHTS = {
    f"policy:{STATIC_POLICY}": 0.5,
    "chaos:none": 2.0,
    # The legacy row plane is contractually bit-identical to the
    # columnar one, so it needs coverage but not half the corpus.
    "columnar:off": 0.5,
    # Fleet scenarios are slower (bigger grids); most of the corpus
    # stays on the small grids where the failure modes historically
    # live, with steady minority coverage of the site tier.
    "fleet:none": 4.0,
}


class ScenarioGrammar:
    """Weighted, seeded scenario composition.

    ``weights`` maps rule names to positive floats (missing rules
    weigh ``1.0``); :meth:`generate` draws every axis by those
    weights from a scenario-private RNG.
    """

    version = GRAMMAR_VERSION

    def __init__(self,
                 weights: typing.Mapping[str, float] | None = None) -> None:
        self.weights = dict(DEFAULT_WEIGHTS)
        if weights:
            self.weights.update(weights)

    def _pick(self, rng: random.Random, axis: str, options,
              chosen: list):
        labelled = [(f"{axis}:{suffix}", value)
                    for suffix, value in options]
        totals = [max(0.0, self.weights.get(rule, 1.0))
                  for rule, _value in labelled]
        point = rng.random() * sum(totals)
        for (rule, value), weight in zip(labelled, totals):
            point -= weight
            if point <= 0:
                chosen.append(rule)
                return value
        chosen.append(labelled[-1][0])
        return labelled[-1][1]

    def _perturbation(self, rng: random.Random, query: str,
                      chosen: list) -> PerturbationRule:
        kind = self._pick(rng, "perturb", _PERTURB_KINDS[query], chosen)
        if kind == "ws-cost":
            return PerturbationRule(kind, factor=rng.choice((4.0, 10.0,
                                                             16.0)))
        if kind == "ws-volatile":
            low, high = rng.choice(((2.0, 12.0), (2.0, 20.0), (4.0, 24.0)))
            return PerturbationRule(kind, low=low, high=high)
        if kind == "join-sleep":
            return PerturbationRule(kind,
                                    sleep_ms=rng.choice((5.0, 12.0, 20.0)))
        start, end = rng.choice(((0.0, 0.0), (400.0, 3400.0)))
        return PerturbationRule("machine-load",
                                factor=rng.choice((2.0, 3.0)),
                                start_ms=start, end_ms=end)

    def _chaos(self, rng: random.Random, query: str,
               chosen: list) -> ChaosRule | None:
        kind = self._pick(rng, "chaos", _CHAOS_KINDS[query], chosen)
        if kind is None:
            return None
        if kind == "lossy":
            return ChaosRule(drop=0.02, duplicate=0.02)
        if kind == "laggy":
            return ChaosRule(delay=0.10, delay_ms=rng.choice((2.0, 6.0)))
        if kind == "flaky-ws":
            return ChaosRule(ws_failure=0.05)
        if kind == "crash":
            # Always the second compute machine: the first hosts the
            # double-up fallback when no spare exists, so every crash
            # scenario is recoverable and must terminate cleanly.
            return ChaosRule(crashes=(CrashRule(
                machine_index=1, at_ms=rng.choice((600.0, 1000.0))),))
        return ChaosRule(freezes=(FreezeRule(
            machine_index=1, at_ms=rng.choice((500.0, 900.0)),
            duration_ms=1500.0),))

    def generate(self, master_seed: int, index: int) -> Scenario:
        """Scenario ``index`` of the corpus seeded by ``master_seed``."""
        seed = derive_seed(master_seed, index, self.version)
        rng = random.Random(seed)
        chosen: list = []
        query = self._pick(rng, "query", _QUERIES, chosen)
        sequences, interactions = self._pick(rng, "size", _SIZES, chosen)
        world_seed = self._pick(rng, "world", _WORLD_SEEDS, chosen)
        machines = self._pick(rng, "machines", _MACHINES, chosen)
        batch = self._pick(rng, "batch", _BATCHES, chosen)
        columnar = self._pick(rng, "columnar", _COLUMNAR, chosen)
        policy = self._pick(rng, "policy", _POLICIES, chosen)
        pacing = self._pick(rng, "pacing", _PACINGS, chosen)
        count = self._pick(rng, "perturbs", _PERTURB_COUNTS, chosen)
        perturbations = tuple(self._perturbation(rng, query, chosen)
                              for _ in range(count))
        chaos = self._chaos(rng, query, chosen)
        fleet = self._pick(rng, "fleet", _FLEETS, chosen)
        sites, lazy, degree = 1, False, None
        if fleet is not None:
            machines, sites = fleet
            lazy, degree = True, _FLEET_DEGREE
        # Freezes stall heartbeats and crashes silence them forever;
        # both only make sense with the fault-tolerance machinery on,
        # so those rules imply it.
        fault_tolerance = bool(chaos is not None
                               and (chaos.freezes or chaos.crashes))
        return Scenario(
            grammar_version=self.version, seed=seed, query=query,
            sequences=sequences, interactions=interactions,
            world_seed=world_seed, compute_machines=machines,
            batch_size=batch, columnar=columnar,
            policy=policy, pacing=pacing,
            perturbations=perturbations, chaos=chaos,
            fault_tolerance=fault_tolerance,
            sites=sites, lazy_machines=lazy, degree=degree,
            rules=tuple(chosen))
