"""Grammar-driven scenario fuzzing for the adaptive query engine.

The seven experiments replay hand-written scenarios; this package
turns scenario coverage into a *search*.  A seeded grammar
(:mod:`~repro.scengen.grammar`) composes random-but-reproducible
scenarios — query/plan shape, data sizes, perturbation schedules,
chaos fault schedules, policy and pacing — a runner
(:mod:`~repro.scengen.runner`) executes each one through the sweep
pool and checks invariant oracles (:mod:`~repro.scengen.oracles`), a
feedback loop (:mod:`~repro.scengen.feedback`) up-weights grammar
rules whose scenarios misbehave, and a shrinker
(:mod:`~repro.scengen.shrink`) reduces any violating scenario to a
minimal repro plus a ready-to-commit regression test.

Entry point: ``python -m repro.experiments fuzz --budget N --seed S``.
"""

from repro.scengen.feedback import AdaptiveWeights, interest_score
from repro.scengen.fuzz import run
from repro.scengen.grammar import (
    GRAMMAR_VERSION,
    Scenario,
    ScenarioGrammar,
    derive_seed,
)
from repro.scengen.oracles import Violation, check_all, default_oracles
from repro.scengen.runner import fuzz_cell, probe_scenario
from repro.scengen.shrink import emit_regression, shrink_scenario

__all__ = [
    "AdaptiveWeights",
    "GRAMMAR_VERSION",
    "Scenario",
    "ScenarioGrammar",
    "Violation",
    "check_all",
    "default_oracles",
    "derive_seed",
    "emit_regression",
    "fuzz_cell",
    "interest_score",
    "probe_scenario",
    "run",
    "shrink_scenario",
]
