"""The fuzz campaign: generate, sweep, judge, learn, shrink.

``python -m repro.experiments fuzz --budget N --seed S --jobs J``
runs ``N`` generated scenarios in fixed-size rounds.  Within a round
the scenarios fan out over the :class:`SweepRunner` fork pool;
between rounds the grammar's rule weights are updated from the
round's outcomes in corpus order.  Because generation depends only
on ``(grammar version, master seed, index, weights)`` and weights
evolve from ordered outcomes, the whole campaign — corpus file,
report, shrunk repros — is byte-identical for any ``--jobs`` value.

Violating scenarios are greedily shrunk (up to ``max_shrinks``) and,
when ``--fuzz-out`` is given, each shrunk repro is written as a JSON
artifact plus a ready-to-commit pytest regression file.
"""

from __future__ import annotations

import json
import pathlib

from repro.experiments.harness import ExperimentReport, SweepCell, \
    SweepRunner
from repro.scengen.feedback import AdaptiveWeights, interest_score
from repro.scengen.grammar import (
    DEFAULT_WEIGHTS,
    GRAMMAR_VERSION,
    Scenario,
    ScenarioGrammar,
)
from repro.scengen.oracles import RunDigest, check_all
from repro.scengen.runner import fuzz_cell, probe_scenario
from repro.scengen.shrink import (
    emit_regression,
    reproducer,
    scenario_size,
    shrink_scenario,
    write_repro,
)

#: Scenarios per sweep round.  Fixed (not tied to ``jobs``) so the
#: weight-update schedule — and therefore the corpus — is identical
#: however the rounds are parallelised.
ROUND_SIZE = 10


def _digest_or_none(record) -> RunDigest | None:
    return RunDigest.from_json(record) if record else None


def run(jobs: int = 1, budget: int = 50, seed: int = 0,
        out_dir=None, round_size: int = ROUND_SIZE,
        max_shrinks: int = 2) -> ExperimentReport:
    """One full fuzz campaign; returns the printable report."""
    weights = AdaptiveWeights(base=DEFAULT_WEIGHTS)
    runner = SweepRunner(jobs)
    outcomes: list[tuple[int, Scenario, dict]] = []
    index = 0
    while index < budget:
        count = min(round_size, budget - index)
        grammar = ScenarioGrammar(weights.snapshot())
        scenarios = [grammar.generate(seed, index + offset)
                     for offset in range(count)]
        cells = [SweepCell(f"fuzz:{index + offset:04d}:"
                           f"{scenario.scenario_id}",
                           fuzz_cell, {"scenario": scenario.to_json()})
                 for offset, scenario in enumerate(scenarios)]
        for offset, (scenario, value) in enumerate(
                zip(scenarios, runner.run(cells))):
            violated = bool(value["violations"]) or bool(value["error"])
            interest = interest_score(
                _digest_or_none(value["main"]),
                _digest_or_none(value["baseline"]))
            weights.observe(scenario.rules, violated, interest)
            outcomes.append((index + offset, scenario, value))
        index += count

    violating = [(position, scenario, value)
                 for position, scenario, value in outcomes
                 if value["violations"]]
    shrunk_rows = []
    artifacts = []
    seen_signatures: set = set()
    for position, scenario, value in violating:
        if len(shrunk_rows) >= max_shrinks:
            break
        names = frozenset(v["oracle"] for v in value["violations"])
        signature = (scenario.query, names)
        if signature in seen_signatures:
            continue
        seen_signatures.add(signature)
        shrunk, probes = shrink_scenario(scenario, reproducer(names))
        final = check_all(probe_scenario(shrunk))
        shrunk_rows.append([
            f"shrunk:{scenario.scenario_id}",
            f"{scenario.scenario_id} -> {shrunk.scenario_id} "
            f"(size {scenario_size(scenario)} -> "
            f"{scenario_size(shrunk)}, {probes} probes, "
            f"oracles: {', '.join(sorted(names))})"])
        artifacts.append((shrunk, final))

    if out_dir is not None:
        directory = pathlib.Path(out_dir)
        directory.mkdir(parents=True, exist_ok=True)
        with open(directory / "corpus.jsonl", "w",
                  encoding="utf-8") as handle:
            for position, _scenario, value in outcomes:
                record = {"index": position, **value}
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        with open(directory / "weights.json", "w",
                  encoding="utf-8") as handle:
            json.dump(weights.snapshot(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        for shrunk, final in artifacts:
            write_repro(shrunk, final,
                        directory / f"repro_{shrunk.scenario_id}.json")
            emit_regression(
                shrunk, final,
                directory / f"test_shrunk_{shrunk.scenario_id}.py")

    oracle_counts: dict[str, int] = {}
    for _position, _scenario, value in violating:
        for violation in value["violations"]:
            oracle = violation["oracle"]
            oracle_counts[oracle] = oracle_counts.get(oracle, 0) + 1
    rows = [
        ["grammar", f"v{GRAMMAR_VERSION}"],
        ["budget", budget],
        ["seed", seed],
        ["round size", min(round_size, budget) if budget else 0],
        ["scenarios run", len(outcomes)],
        ["violating scenarios", len(violating)],
        ["violating ids",
         ", ".join(value["id"]
                   for _p, _s, value in violating) or "-"],
    ]
    rows.extend([f"violations:{oracle}", count]
                for oracle, count in sorted(oracle_counts.items()))
    hottest = weights.hottest()
    rows.append(["hottest rules",
                 ", ".join(f"{rule}={weight}"
                           for rule, weight in hottest) or "-"])
    rows.extend(shrunk_rows)
    return ExperimentReport(
        experiment_id="fuzz",
        title="Grammar-driven scenario fuzzing (adaptive, seeded)",
        columns=["metric", "value"],
        rows=rows,
        notes=("Every scenario is a pure function of (grammar "
               "version, master seed, corpus index, rule weights); "
               "weights evolve between fixed-size rounds from "
               "outcomes in corpus order, so the corpus, this report "
               "and any shrunk repros are byte-identical for any "
               "--jobs value.  Probe plan per scenario: main run, "
               "identical rerun, batch_size=1 run, metrics-off/"
               "chaos-disabled run, static baseline."))
