"""Invariant oracles over one scenario's probe runs.

The runner executes each generated scenario several times (the main
run, an identical rerun, a ``batch_size=1`` run, a quiet run with
metrics disabled and an explicitly *disabled* chaos config, and the
static unperturbed baseline) and condenses every run to a
:class:`RunDigest`.  Oracles are plain functions from the resulting
:class:`ProbeOutcome` to a list of :class:`Violation` — pluggable via
:data:`ORACLES`, so later subsystems can register their own checks
without touching the runner.
"""

from __future__ import annotations

import dataclasses
import typing

#: Convergence bounds: an adaptive run that deploys more adaptations
#: than this, or moves-and-reverses more workload mass, is hunting,
#: not converging.  Generous on purpose — the fuzzer's zero-violation
#: CI gate must not trip on a merely sub-optimal controller.
MAX_ADAPTATIONS = 32
MAX_OSCILLATION = 8.0


@dataclasses.dataclass(frozen=True)
class RunDigest:
    """Everything an oracle may ask about one finished run.

    ``rows_sha`` hashes the *sorted* row reprs (adaptation legally
    reorders arrival), ``trace_sha`` the full adaptivity-trace
    timeline in order, ``events`` the DES events scheduled.
    ``sink_rows``/``sink_discards`` read the root exchange channel's
    counters (-1 when metrics were off for that run).  ``failure``
    names the typed failure cause when the query settled without a
    result (crash scenarios past the recovery budget) — a *clean*
    terminal outcome, distinct from the probe-level ``error``.
    """

    rows_sha: str
    rows_count: int
    trace_sha: str
    response_ms: float
    events: int
    adaptations: int
    oscillation: float
    sink_rows: int = -1
    sink_discards: int = -1
    failure: str = ""

    def to_json(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_json(cls, record: typing.Mapping) -> "RunDigest":
        return cls(**record)


@dataclasses.dataclass(frozen=True)
class ProbeOutcome:
    """The digests of one scenario's probe plan.

    ``unit_batch`` is None when the scenario already ran at
    ``batch_size=1``; ``error`` carries the exception text when a run
    crashed (in which case the other fields hold the baseline only).
    """

    scenario: dict
    main: RunDigest | None
    rerun: RunDigest | None
    unit_batch: RunDigest | None
    quiet: RunDigest | None
    baseline: RunDigest | None
    error: str = ""

    @property
    def has_chaos(self) -> bool:
        return self.scenario.get("chaos") is not None

    @property
    def has_crashes(self) -> bool:
        chaos = self.scenario.get("chaos") or {}
        return bool(chaos.get("crashes"))

    @property
    def adaptive(self) -> bool:
        return self.scenario.get("policy") != "static"


@dataclasses.dataclass(frozen=True)
class Violation:
    """One oracle's verdict that a scenario broke an invariant."""

    oracle: str
    detail: str

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


def check_no_crash(outcome: ProbeOutcome) -> list[Violation]:
    """No generated configuration may raise out of the engine."""
    if outcome.error:
        return [Violation("no-crash", outcome.error)]
    return []


def check_determinism(outcome: ProbeOutcome) -> list[Violation]:
    """Two runs of one scenario are bit-identical, chaos included."""
    if outcome.main is None or outcome.rerun is None:
        return []
    if outcome.main != outcome.rerun:
        return [Violation(
            "determinism",
            f"rerun diverged: {outcome.main.to_json()} != "
            f"{outcome.rerun.to_json()}")]
    return []


def check_batch_identity(outcome: ProbeOutcome) -> list[Violation]:
    """``batch_size=1`` returns the same row multiset as ``bs=N``."""
    if outcome.main is None or outcome.unit_batch is None:
        return []
    if outcome.main.failure or outcome.unit_batch.failure:
        # A typed failure has no row set to compare; availability and
        # determinism still police these runs.
        return []
    if outcome.unit_batch.rows_sha != outcome.main.rows_sha:
        return [Violation(
            "batch-identity",
            f"bs=1 rows {outcome.unit_batch.rows_sha} "
            f"({outcome.unit_batch.rows_count}) != "
            f"bs={outcome.scenario.get('batch_size')} rows "
            f"{outcome.main.rows_sha} ({outcome.main.rows_count})")]
    return []


def check_zero_cost(outcome: ProbeOutcome) -> list[Violation]:
    """Metrics off + a *disabled* chaos config cost nothing.

    The quiet run disables the metrics registry and passes an
    explicitly disabled ``ChaosConfig`` where the main run passed
    None (or keeps the scenario's enabled one); its timeline — rows,
    trace, response, DES event count — must be bit-identical.
    """
    if outcome.main is None or outcome.quiet is None:
        return []
    main, quiet = outcome.main, outcome.quiet
    same = (quiet.rows_sha == main.rows_sha
            and quiet.trace_sha == main.trace_sha
            and quiet.response_ms == main.response_ms
            and quiet.events == main.events)
    if not same:
        return [Violation(
            "zero-cost",
            f"metrics-off/chaos-disabled run diverged: "
            f"events {quiet.events} != {main.events} or trace "
            f"{quiet.trace_sha} != {main.trace_sha}")]
    return []


def check_row_conservation(outcome: ProbeOutcome) -> list[Violation]:
    """Rows survive the exchanges: none invented, none lost.

    Two forms: the result multiset equals the static baseline's (the
    query's answer does not depend on adaptation, perturbation or —
    thanks to retries and dedup — injected faults), and on fault-free
    runs the root exchange channel's received-minus-discarded counter
    equals the result cardinality.
    """
    if outcome.main is None or outcome.baseline is None:
        return []
    if outcome.main.failure:
        # No result to conserve; check_availability owns this case.
        return []
    violations = []
    if outcome.main.rows_sha != outcome.baseline.rows_sha:
        violations.append(Violation(
            "row-conservation",
            f"result rows diverge from static baseline: "
            f"{outcome.main.rows_count} rows "
            f"({outcome.main.rows_sha}) vs baseline "
            f"{outcome.baseline.rows_count} rows "
            f"({outcome.baseline.rows_sha})"))
    if not outcome.has_chaos and outcome.main.sink_rows >= 0:
        delivered = outcome.main.sink_rows - max(
            0, outcome.main.sink_discards)
        # Retrospective replay legitimately re-delivers join outputs
        # (the sink dedups by provenance), so an adaptive run may see
        # *more* rows at the root channel than the result — never
        # fewer, and a static run may see neither.
        invented = delivered < outcome.main.rows_count
        unexplained = (delivered > outcome.main.rows_count
                       and not outcome.adaptive)
        if invented or unexplained:
            violations.append(Violation(
                "row-conservation",
                f"root channel delivered {delivered} rows but the "
                f"result has {outcome.main.rows_count}"))
    return violations


def check_convergence(outcome: ProbeOutcome) -> list[Violation]:
    """The control loop settles instead of hunting."""
    if outcome.main is None or not outcome.adaptive:
        return []
    violations = []
    if outcome.main.adaptations > MAX_ADAPTATIONS:
        violations.append(Violation(
            "convergence",
            f"{outcome.main.adaptations} adaptations exceeds the "
            f"bound of {MAX_ADAPTATIONS}"))
    if outcome.main.oscillation > MAX_OSCILLATION:
        violations.append(Violation(
            "convergence",
            f"oscillation {outcome.main.oscillation:.3f} exceeds "
            f"the bound of {MAX_OSCILLATION}"))
    return violations


def check_availability(outcome: ProbeOutcome) -> list[Violation]:
    """Every admitted query terminates: full result or typed failure.

    For crash scenarios the run must settle one way or the other —
    a complete result (recovery succeeded, same cardinality as the
    baseline) or a named typed failure.  A partial result means a
    query neither recovered nor failed cleanly.
    """
    if outcome.main is None or outcome.baseline is None:
        return []
    if not outcome.has_crashes:
        return []
    main = outcome.main
    if main.failure:
        return []
    if main.rows_count != outcome.baseline.rows_count:
        return [Violation(
            "availability",
            f"crash run neither failed nor completed: {main.rows_count} "
            f"rows vs baseline {outcome.baseline.rows_count}")]
    return []


#: Pluggable oracle registry: name -> ProbeOutcome -> [Violation].
ORACLES: dict[str, typing.Callable[[ProbeOutcome], list]] = {
    "no-crash": check_no_crash,
    "determinism": check_determinism,
    "batch-identity": check_batch_identity,
    "zero-cost": check_zero_cost,
    "row-conservation": check_row_conservation,
    "convergence": check_convergence,
    "availability": check_availability,
}


def default_oracles() -> tuple:
    return tuple(ORACLES)


def check_all(outcome: ProbeOutcome,
              oracles: typing.Iterable[str] | None = None) -> list:
    """Run ``oracles`` (default: all registered) over one outcome."""
    names = tuple(oracles) if oracles is not None else default_oracles()
    violations: list = []
    for name in names:
        violations.extend(ORACLES[name](outcome))
    return violations
