"""Greedy scenario minimisation and regression-test emission.

Given a violating scenario, :func:`shrink_scenario` repeatedly tries
strictly-smaller variants — drop the chaos schedule, drop individual
faults and perturbations, halve data sizes, shed the third machine,
shrink the batch, zero the world seed — and keeps the first variant
on which the violation still reproduces.  Every candidate has a
strictly smaller :func:`scenario_size`, and the size is a
non-negative integer, so the loop provably terminates; a probe cap
bounds wall-clock besides.

The shrunk scenario is emitted twice: a JSON repro artifact
(machine-readable, replayable with ``probe_scenario``) and a
self-contained pytest file ready to commit under
``tests/regressions/`` — the shipped regression suite runs in tier-1.
"""

from __future__ import annotations

import dataclasses
import json
import pprint
import typing

from repro.scengen.grammar import ChaosRule, Scenario
from repro.scengen.oracles import check_all
from repro.scengen.runner import probe_scenario

_MIN_ROWS = 12


def scenario_size(scenario: Scenario) -> int:
    """The strictly-decreasing metric the shrinker minimises."""
    size = scenario.sequences + scenario.interactions
    size += 40 * len(scenario.perturbations)
    if scenario.chaos is not None:
        chaos = scenario.chaos
        size += 20
        size += 20 * len(chaos.freezes)
        size += sum(10 for knob in (chaos.drop, chaos.duplicate,
                                    chaos.delay, chaos.ws_failure)
                    if knob > 0)
    size += 30 * (scenario.compute_machines - 2)
    size += scenario.batch_size
    size += scenario.world_seed
    size += 10 if scenario.fault_tolerance else 0
    return size


def _simplified_chaos(chaos: ChaosRule) -> ChaosRule | None:
    """Collapse an all-zero chaos rule to None (no empty-but-enabled
    schedule: enabling chaos swaps in the retry send path, which is
    not what 'no faults' means)."""
    empty = (chaos.drop == 0 and chaos.duplicate == 0
             and chaos.delay == 0 and chaos.ws_failure == 0
             and not chaos.freezes)
    return None if empty else chaos


def _candidates(scenario: Scenario
                ) -> typing.Iterator[Scenario]:
    """Strictly-smaller variants, most aggressive first."""
    chaos = scenario.chaos
    if chaos is not None:
        yield scenario.replace(chaos=None, fault_tolerance=False)
        for index in range(len(chaos.freezes)):
            freezes = (chaos.freezes[:index]
                       + chaos.freezes[index + 1:])
            trimmed = dataclasses.replace(chaos, freezes=freezes)
            yield scenario.replace(chaos=_simplified_chaos(trimmed))
        for knob in ("drop", "duplicate", "delay", "ws_failure"):
            if getattr(chaos, knob) > 0:
                trimmed = dataclasses.replace(chaos, **{knob: 0.0})
                yield scenario.replace(chaos=_simplified_chaos(trimmed))
    for index in range(len(scenario.perturbations)):
        perturbations = (scenario.perturbations[:index]
                         + scenario.perturbations[index + 1:])
        yield scenario.replace(perturbations=perturbations)
    if scenario.fault_tolerance:
        yield scenario.replace(fault_tolerance=False)
    for field, floor in (("sequences", _MIN_ROWS),
                         ("interactions", _MIN_ROWS)):
        value = getattr(scenario, field)
        halved = max(floor, value // 2)
        if halved < value:
            yield scenario.replace(**{field: halved})
    if scenario.compute_machines > 2:
        yield scenario.replace(compute_machines=2)
    if scenario.batch_size > 1:
        yield scenario.replace(batch_size=max(1, scenario.batch_size // 2))
    if scenario.world_seed > 0:
        yield scenario.replace(world_seed=0)


def reproducer(oracle_names: typing.Collection[str]
               ) -> typing.Callable[[Scenario], bool]:
    """A predicate: does the scenario still violate one of these?"""
    names = frozenset(oracle_names)

    def reproduces(scenario: Scenario) -> bool:
        violations = check_all(probe_scenario(scenario))
        return any(v.oracle in names for v in violations)

    return reproduces


def shrink_scenario(scenario: Scenario,
                    reproduces: typing.Callable[[Scenario], bool],
                    max_probes: int = 200
                    ) -> tuple[Scenario, int]:
    """Greedily minimise ``scenario`` while ``reproduces`` holds.

    Returns the smallest reproducing scenario found and the number
    of probe runs spent.  Deterministic: candidates are tried in a
    fixed order and the first reproducing one is taken.
    """
    current = scenario
    probes = 0
    improved = True
    while improved and probes < max_probes:
        improved = False
        for candidate in _candidates(current):
            if scenario_size(candidate) >= scenario_size(current):
                continue
            probes += 1
            if reproduces(candidate):
                current = candidate
                improved = True
                break
            if probes >= max_probes:
                break
    return current, probes


def write_repro(scenario: Scenario, violations: list, path) -> None:
    """The machine-readable repro artifact for one shrunk scenario."""
    record = {
        "grammar_version": scenario.grammar_version,
        "scenario_id": scenario.scenario_id,
        "scenario": scenario.to_json(),
        "violations": [v.to_json() for v in violations],
        "replay": ("probe_scenario(Scenario.from_json(record"
                   "['scenario']))"),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")


_REGRESSION_TEMPLATE = '''\
"""Shrunk fuzzer repro: {oracles} violation(s).

Auto-generated by ``repro.scengen`` (grammar v{version}, scenario
{scenario_id}); the scenario dict below is the shrinker's minimal
reproduction.  Regenerate with the shrinker rather than hand-editing.
"""

from repro.scengen.grammar import Scenario
from repro.scengen.oracles import check_all
from repro.scengen.runner import probe_scenario

SCENARIO = {scenario_literal}


def test_shrunk_scenario_{suffix}_holds_invariants():
    outcome = probe_scenario(Scenario.from_json(SCENARIO))
    violations = [v.to_json() for v in check_all(outcome)]
    assert violations == []
'''


def emit_regression(scenario: Scenario, violations: list, path) -> None:
    """A self-contained pytest file asserting the invariants hold."""
    oracles = ", ".join(sorted({v.oracle for v in violations}))
    source = _REGRESSION_TEMPLATE.format(
        oracles=oracles or "invariant",
        version=scenario.grammar_version,
        scenario_id=scenario.scenario_id,
        scenario_literal=pprint.pformat(scenario.to_json(), width=68,
                                        sort_dicts=True),
        suffix=scenario.scenario_id)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(source)
