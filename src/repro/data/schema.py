"""Relational schemas.

Schemas are intentionally small: typed, named columns with byte widths
(the byte widths feed the network cost model).  Column references use
the ``alias.column`` form the demo queries use, but bare column names
resolve too when unambiguous.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.errors import SchemaError

#: Supported column types and their default widths in bytes.
_DEFAULT_WIDTHS = {"int": 8, "float": 8, "str": 32}


@dataclasses.dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    type: str = "str"
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if self.type not in _DEFAULT_WIDTHS:
            raise SchemaError(f"unsupported column type: {self.type}")
        if self.size_bytes <= 0:
            object.__setattr__(
                self, "size_bytes", _DEFAULT_WIDTHS[self.type])


class Schema:
    """An ordered list of columns, optionally qualified by an alias."""

    def __init__(self, columns: typing.Sequence[Column],
                 alias: str | None = None) -> None:
        if not columns:
            raise SchemaError("schema needs at least one column")
        self.columns = list(columns)
        self.alias = alias
        self._index: dict[str, int] = {}
        for position, column in enumerate(self.columns):
            if column.name in self._index:
                raise SchemaError(f"duplicate column: {column.name}")
            self._index[column.name] = position

    def __len__(self) -> int:
        return len(self.columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns

    @property
    def width_bytes(self) -> int:
        """Total tuple width in bytes."""
        return sum(column.size_bytes for column in self.columns)

    def names(self) -> list[str]:
        return [column.name for column in self.columns]

    def position_of(self, reference: str) -> int:
        """Resolve ``column`` or ``alias.column`` to a position."""
        name = reference
        if "." in reference:
            alias, name = reference.split(".", 1)
            if self.alias is not None and alias != self.alias:
                raise SchemaError(
                    f"alias {alias!r} does not match schema alias "
                    f"{self.alias!r}")
        if name not in self._index:
            raise SchemaError(
                f"unknown column {reference!r}; have {self.names()}")
        return self._index[name]

    def has(self, reference: str) -> bool:
        """True when ``reference`` resolves against this schema."""
        try:
            self.position_of(reference)
        except SchemaError:
            return False
        return True

    def with_alias(self, alias: str) -> "Schema":
        """Copy of this schema qualified by ``alias``."""
        return Schema(self.columns, alias=alias)

    def project(self, references: typing.Sequence[str]) -> "Schema":
        """Schema of a projection onto ``references``."""
        return Schema([self.columns[self.position_of(ref)]
                       for ref in references])

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join output (this ++ other, deduplicating names)."""
        merged = list(self.columns)
        seen = {column.name for column in merged}
        for column in other.columns:
            name = column.name
            while name in seen:
                name = f"{name}_r"
            seen.add(name)
            merged.append(Column(name, column.type, column.size_bytes))
        return Schema(merged)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Schema {self.names()}>"
