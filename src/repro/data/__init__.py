"""Relational data model: schemas, provenance-tracked rows, relations."""

from repro.data.batch import Batch
from repro.data.generator import (
    AMINO_ACIDS,
    INTERACTIONS_CARDINALITY,
    SEQUENCE_LENGTH,
    SEQUENCES_CARDINALITY,
    generate_protein_interactions,
    generate_protein_sequences,
    interactions_schema,
    sequences_schema,
)
from repro.data.relation import Relation
from repro.data.schema import Column, Schema
from repro.data.tuples import Row, Tid, make_base_tid, row_size_bytes

__all__ = [
    "AMINO_ACIDS",
    "Batch",
    "Column",
    "INTERACTIONS_CARDINALITY",
    "Relation",
    "Row",
    "SEQUENCES_CARDINALITY",
    "SEQUENCE_LENGTH",
    "Schema",
    "Tid",
    "generate_protein_interactions",
    "generate_protein_sequences",
    "interactions_schema",
    "make_base_tid",
    "row_size_bytes",
    "sequences_schema",
]
