"""Morsel-driven batches of provenance-tracked rows.

The engine's hot path moves :class:`Batch` objects — ordered containers
of :class:`~repro.data.tuples.Row`s — between operators instead of one
row at a time, so a chain of ``next_batch()`` calls schedules one
simulator event per *batch* of CPU work rather than one per tuple.
Per-tuple provenance is untouched: a batch is a view over its rows,
every row keeps its ``tid``, and recovery / dedup / repartitioning
logic keeps operating on individual tuples.

``EngineConfig.batch_size`` controls the morsel size; ``batch_size=1``
degrades every ``next_batch`` path to the original per-tuple iterator
semantics, which is what the equivalence property tests exploit.
"""

from __future__ import annotations

import typing

from repro.data.tuples import Row, Tid


class Batch:
    """An ordered, immutable-by-convention morsel of rows.

    Operators may share the underlying list when they do not mutate it
    (e.g. a pass-through exchange); transforming operators build a new
    ``Batch`` via :meth:`replace_rows`.
    """

    __slots__ = ("rows",)

    def __init__(self, rows: typing.Sequence[Row]) -> None:
        self.rows = list(rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> typing.Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def __getitem__(self, index: int) -> Row:
        return self.rows[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Batch of {len(self.rows)} rows>"

    # -- provenance and accounting ------------------------------------

    def tids(self) -> list[Tid]:
        """Provenance ids of every row, in batch order."""
        return [row.tid for row in self.rows]

    def size_bytes(self, row_bytes: int) -> int:
        """Approximate serialized payload size under a fixed row width."""
        return row_bytes * len(self.rows)

    # -- construction helpers ------------------------------------------

    @classmethod
    def of(cls, *rows: Row) -> "Batch":
        return cls(list(rows))

    def replace_rows(self, rows: typing.Sequence[Row]) -> "Batch":
        """A new batch holding ``rows`` (used by transforming operators)."""
        return Batch(rows)

    def split_at(self, index: int) -> tuple["Batch", "Batch"]:
        """Split into ``(first index rows, rest)`` preserving order."""
        return Batch(self.rows[:index]), Batch(self.rows[index:])

    def chunks(self, max_rows: int) -> typing.Iterator["Batch"]:
        """Yield consecutive sub-batches of at most ``max_rows`` rows."""
        if max_rows < 1:
            raise ValueError(f"max_rows must be >= 1: {max_rows}")
        for start in range(0, len(self.rows), max_rows):
            yield Batch(self.rows[start:start + max_rows])
