"""Morsel-driven batches of provenance-tracked rows.

The engine's hot path moves :class:`Batch` objects — ordered containers
of :class:`~repro.data.tuples.Row`s — between operators instead of one
row at a time, so a chain of ``next_batch()`` calls schedules one
simulator event per *batch* of CPU work rather than one per tuple.
Per-tuple provenance is untouched: a batch is a view over its rows,
every row keeps its ``tid``, and recovery / dedup / repartitioning
logic keeps operating on individual tuples.

Since the columnar data plane (``EngineConfig.columnar``), a batch can
be backed either by a row list (the original representation) or by
parallel per-column value lists plus a tid column.  Vectorized
operators read and write the column arrays directly; row-at-a-time
consumers (``__iter__``, ``__getitem__``, recovery/dedup/repartition
logic) are served by lazy ``Row`` materialization, so both backings
expose the same API and the same ordering.  Plain stdlib lists are
used for the columns — values are heterogeneous Python objects
(strings, floats) so ``array``/numpy buffers would buy nothing here,
and numpy stays an optional-off non-dependency.

``EngineConfig.batch_size`` controls the morsel size; ``batch_size=1``
degrades every ``next_batch`` path to the original per-tuple iterator
semantics, which is what the equivalence property tests exploit.
"""

from __future__ import annotations

import typing

from repro.data.tuples import Row, Tid


class Batch:
    """An ordered, immutable-by-convention morsel of rows.

    Operators may share the underlying storage when they do not mutate
    it (e.g. a pass-through exchange); transforming operators build a
    new ``Batch`` via :meth:`replace_rows` or :meth:`from_columns`.

    Exactly one of the two backings is authoritative: ``_rows`` (row
    list) or ``_columns``/``_tids`` (parallel column lists).  Reading
    ``.rows`` on a column-backed batch materializes — and caches — the
    row list; reading :meth:`columns` on a row-backed batch builds and
    caches the column lists.  Either way the logical content is
    identical, so downstream behaviour cannot depend on the backing.
    """

    __slots__ = ("_rows", "_columns", "_tids")

    def __init__(self, rows: typing.Sequence[Row]) -> None:
        self._rows: list[Row] | None = list(rows)
        self._columns: list[list] | None = None
        self._tids: list[Tid] | None = None

    @classmethod
    def from_columns(cls, columns: typing.Sequence[list],
                     tids: list[Tid]) -> "Batch":
        """A column-backed batch over parallel value lists + a tid column.

        The lists are adopted, not copied — callers hand over ownership.
        """
        batch = cls.__new__(cls)
        batch._rows = None
        batch._columns = list(columns)
        batch._tids = tids
        return batch

    # -- backing introspection -----------------------------------------

    @property
    def is_columnar(self) -> bool:
        """True when the authoritative backing is columnar."""
        return self._rows is None

    @property
    def width(self) -> int:
        """Number of columns (0 for an empty row-backed batch)."""
        if self._columns is not None:
            return len(self._columns)
        if self._rows:
            return len(self._rows[0].values)
        return 0

    # -- row-at-a-time view (lazy materialization) ---------------------

    @property
    def rows(self) -> list[Row]:
        """The row list; materialized (and cached) when column-backed."""
        if self._rows is None:
            columns = self._columns
            tids = self._tids
            if columns:
                self._rows = [Row(values, tid)
                              for values, tid in zip(zip(*columns), tids)]
            else:
                self._rows = [Row((), tid) for tid in tids]
        return self._rows

    def __len__(self) -> int:
        if self._rows is not None:
            return len(self._rows)
        return len(self._tids)

    def __iter__(self) -> typing.Iterator[Row]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return len(self) > 0

    def __getitem__(self, index: int) -> Row:
        return self.rows[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "columnar" if self.is_columnar else "row"
        return f"<Batch of {len(self)} rows ({kind})>"

    # -- columnar view -------------------------------------------------

    def columns(self) -> list[list]:
        """Parallel per-column value lists (built and cached if needed)."""
        if self._columns is None:
            rows = self._rows
            if rows:
                self._columns = [list(column)
                                 for column in zip(*(r.values for r in rows))]
            else:
                self._columns = []
            self._tids = [row.tid for row in rows]
        return self._columns

    def column(self, position: int) -> list:
        """One column's values, in batch order."""
        return self.columns()[position]

    # -- provenance and accounting ------------------------------------

    def tids(self) -> list[Tid]:
        """Provenance ids of every row, in batch order."""
        if self._tids is not None:
            return self._tids
        return [row.tid for row in self._rows]

    def size_bytes(self, row_bytes: int) -> int:
        """Approximate serialized payload size under a fixed row width."""
        return row_bytes * len(self)

    # -- construction helpers ------------------------------------------

    @classmethod
    def of(cls, *rows: Row) -> "Batch":
        return cls(list(rows))

    def replace_rows(self, rows: typing.Sequence[Row]) -> "Batch":
        """A new batch holding ``rows`` (used by transforming operators)."""
        return Batch(rows)

    def slice(self, start: int, stop: int) -> "Batch":
        """Sub-batch of rows ``[start, stop)``, preserving the backing."""
        if self._rows is not None:
            return Batch(self._rows[start:stop])
        return Batch.from_columns(
            [column[start:stop] for column in self._columns],
            self._tids[start:stop])

    def split_at(self, index: int) -> tuple["Batch", "Batch"]:
        """Split into ``(first index rows, rest)`` preserving order."""
        return self.slice(0, index), self.slice(index, len(self))

    def chunks(self, max_rows: int) -> typing.Iterator["Batch"]:
        """Yield consecutive sub-batches of at most ``max_rows`` rows."""
        if max_rows < 1:
            raise ValueError(f"max_rows must be >= 1: {max_rows}")
        for start in range(0, len(self), max_rows):
            yield self.slice(start, start + max_rows)

    def select_columns(self, positions: typing.Sequence[int]) -> "Batch":
        """Vectorized projection: keep ``positions`` columns, share tids."""
        columns = self.columns()
        return Batch.from_columns([columns[p] for p in positions],
                                  self.tids())

    def filter_tids(self, drop: typing.AbstractSet[Tid]
                    ) -> tuple["Batch", int]:
        """Drop rows whose tid is in ``drop``; returns (kept, removed).

        Used by the exchange consumer's discard path, which must reach
        inside queued wire blocks during a retrospective repartition.
        """
        tids = self.tids()
        keep = [i for i, tid in enumerate(tids) if tid not in drop]
        removed = len(tids) - len(keep)
        if removed == 0:
            return self, 0
        if self._rows is not None:
            rows = self._rows
            return Batch([rows[i] for i in keep]), removed
        return Batch.from_columns(
            [[column[i] for i in keep] for column in self._columns],
            [tids[i] for i in keep]), removed

    @classmethod
    def concat(cls, parts: typing.Sequence["Batch"]) -> "Batch":
        """One batch holding every part's rows, in order.

        Column-backed when every part is column-backed with the same
        width (the wire-block reassembly path); otherwise falls back to
        row concatenation.
        """
        if len(parts) == 1:
            return parts[0]
        live = [part for part in parts if len(part)]
        if any(part.is_columnar for part in live):
            widths = {part.width for part in live}
            if len(widths) == 1:
                # Row-backed parts (typically stray single rows between
                # wire blocks) convert column-wise at their own size, so
                # the large columnar blocks are never row-materialized.
                columns = [[] for _ in range(widths.pop())]
                tids: list[Tid] = []
                for part in live:
                    for accumulator, column in zip(columns, part.columns()):
                        accumulator.extend(column)
                    tids.extend(part.tids())
                return cls.from_columns(columns, tids)
        rows: list[Row] = []
        for part in parts:
            rows.extend(part.rows)
        return cls(rows)
