"""Tuples with provenance identifiers.

Every base tuple carries a globally unique ``tid``.  Derived tuples
(projections, WS results, join outputs) carry tids composed from their
inputs' tids, so any result tuple can be deduplicated no matter how
many times a retrospective repartition replays its inputs.  This is
the mechanism that makes R1 state redistribution exactly-once.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.data.schema import Schema

#: Type of a provenance identifier: a base id or a tree of ids.
Tid = typing.Union[str, tuple]


@dataclasses.dataclass(frozen=True, slots=True)
class Row:
    """An immutable data tuple.

    (Named ``Row`` to avoid clashing with ``tuple``; the public API
    exposes it as ``repro.Row``.)

    Slotted: rows are the single most-allocated object in a run, and a
    slotted frozen dataclass avoids the per-instance ``__dict__``.
    """

    values: tuple
    tid: Tid

    def value(self, position: int) -> typing.Any:
        return self.values[position]

    def project(self, positions: typing.Sequence[int]) -> "Row":
        """New row keeping ``positions``; provenance is inherited."""
        return Row(tuple(self.values[p] for p in positions), self.tid)

    def extend(self, extra_values: tuple, other_tid: Tid) -> "Row":
        """Join-style combination with another row's values and tid."""
        return Row(self.values + extra_values, (self.tid, other_tid))

    def replace_values(self, values: tuple) -> "Row":
        """New row with different values, same provenance."""
        return Row(tuple(values), self.tid)


@dataclasses.dataclass(frozen=True, slots=True)
class ColumnPredicate:
    """A single-column predicate that exposes its structure.

    Callable on a :class:`Row` like any opaque predicate, but carrying
    ``position`` and ``test`` so the vectorized ``Select`` path can run
    ``test`` directly over a column array instead of materializing rows.
    ``description`` feeds plan explanations.
    """

    position: int
    test: typing.Callable[[typing.Any], bool]
    description: str = "predicate"

    def __call__(self, row: Row) -> bool:
        return self.test(row.values[self.position])


def make_base_tid(table_name: str, ordinal: int) -> str:
    """Provenance id for the ``ordinal``-th tuple of a base table."""
    return f"{table_name}#{ordinal}"


def row_size_bytes(row: Row, schema: Schema) -> int:
    """Approximate serialized size of ``row`` under ``schema``."""
    return schema.width_bytes
