"""In-memory relations backing the Grid Data Services."""

from __future__ import annotations

import typing

from repro.data.batch import Batch
from repro.data.schema import Schema
from repro.data.tuples import Row, make_base_tid
from repro.errors import SchemaError


class Relation:
    """A named table of :class:`~repro.data.tuples.Row` objects."""

    def __init__(self, name: str, schema: Schema,
                 rows: typing.Sequence[Row] = ()) -> None:
        self.name = name
        self.schema = schema
        self.rows: list[Row] = list(rows)
        for row in self.rows:
            self._check(row)
        # Columnar snapshot for block reads, built lazily and
        # invalidated by append(); the row count tracks staleness.
        self._columns: list[list] | None = None
        self._column_tids: list | None = None
        self._columns_rowcount = -1

    @classmethod
    def from_values(cls, name: str, schema: Schema,
                    value_rows: typing.Iterable[tuple]) -> "Relation":
        """Build a relation assigning fresh provenance ids."""
        rows = [Row(tuple(values), make_base_tid(name, ordinal))
                for ordinal, values in enumerate(value_rows)]
        return cls(name, schema, rows)

    def _check(self, row: Row) -> None:
        if len(row.values) != len(self.schema):
            raise SchemaError(
                f"{self.name}: row arity {len(row.values)} != schema arity "
                f"{len(self.schema)}")

    def append(self, row: Row) -> None:
        self._check(row)
        self.rows.append(row)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> typing.Iterator[Row]:
        return iter(self.rows)

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    @property
    def tuple_bytes(self) -> int:
        return self.schema.width_bytes

    def read_block(self, start: int, count: int) -> Batch:
        """Rows ``[start, start+count)`` as a columnar batch.

        Decomposes the stored rows into per-column lists once (cached
        until the relation grows), so repeated scans slice columns
        instead of touching row objects.  Values and tids are exactly
        those of ``self.rows[start:start+count]``.
        """
        if self._columns_rowcount != len(self.rows):
            width = len(self.schema)
            rows = self.rows
            self._columns = [[row.values[position] for row in rows]
                             for position in range(width)]
            self._column_tids = [row.tid for row in rows]
            self._columns_rowcount = len(rows)
        stop = start + count
        return Batch.from_columns(
            [column[start:stop] for column in self._columns],
            self._column_tids[start:stop])

    def column_values(self, reference: str) -> list:
        """All values of one column (test/analysis helper)."""
        position = self.schema.position_of(reference)
        return [row.values[position] for row in self.rows]
