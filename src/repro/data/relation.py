"""In-memory relations backing the Grid Data Services."""

from __future__ import annotations

import typing

from repro.data.schema import Schema
from repro.data.tuples import Row, make_base_tid
from repro.errors import SchemaError


class Relation:
    """A named table of :class:`~repro.data.tuples.Row` objects."""

    def __init__(self, name: str, schema: Schema,
                 rows: typing.Sequence[Row] = ()) -> None:
        self.name = name
        self.schema = schema
        self.rows: list[Row] = list(rows)
        for row in self.rows:
            self._check(row)

    @classmethod
    def from_values(cls, name: str, schema: Schema,
                    value_rows: typing.Iterable[tuple]) -> "Relation":
        """Build a relation assigning fresh provenance ids."""
        rows = [Row(tuple(values), make_base_tid(name, ordinal))
                for ordinal, values in enumerate(value_rows)]
        return cls(name, schema, rows)

    def _check(self, row: Row) -> None:
        if len(row.values) != len(self.schema):
            raise SchemaError(
                f"{self.name}: row arity {len(row.values)} != schema arity "
                f"{len(self.schema)}")

    def append(self, row: Row) -> None:
        self._check(row)
        self.rows.append(row)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> typing.Iterator[Row]:
        return iter(self.rows)

    @property
    def cardinality(self) -> int:
        return len(self.rows)

    @property
    def tuple_bytes(self) -> int:
        return self.schema.width_bytes

    def column_values(self, reference: str) -> list:
        """All values of one column (test/analysis helper)."""
        position = self.schema.position_of(reference)
        return [row.values[position] for row in self.rows]
