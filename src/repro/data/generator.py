"""Synthetic protein demo database.

The paper's evaluation uses the OGSA-DQP demo database:
``protein_sequences`` (3000 tuples, modified so every tuple has the
same length) and ``protein_interactions`` (4700 tuples).  This module
generates data with the same shape from a seed: ORF identifiers in the
yeast systematic-naming style, fixed-length amino-acid sequences, and
interaction pairs referencing the sequence table's keys.
"""

from __future__ import annotations

import random

from repro.data.relation import Relation
from repro.data.schema import Column, Schema

#: The 20 standard amino-acid one-letter codes.
AMINO_ACIDS = "ACDEFGHIKLMNPQRSTVWY"

#: Default sizes matching the paper (§3.2).
SEQUENCES_CARDINALITY = 3000
INTERACTIONS_CARDINALITY = 4700
SEQUENCE_LENGTH = 256


def sequences_schema(sequence_length: int = SEQUENCE_LENGTH) -> Schema:
    """Schema of ``protein_sequences``: (ORF, sequence)."""
    return Schema([
        Column("ORF", "str", 16),
        Column("sequence", "str", sequence_length),
    ])


def interactions_schema() -> Schema:
    """Schema of ``protein_interactions``: (ORF1, ORF2)."""
    return Schema([
        Column("ORF1", "str", 16),
        Column("ORF2", "str", 16),
    ])


def _orf_name(ordinal: int) -> str:
    """Yeast-style systematic ORF name, e.g. ``YAL001C``."""
    chromosome = chr(ord("A") + (ordinal // 400) % 16)
    arm = "L" if (ordinal // 200) % 2 == 0 else "R"
    strand = "C" if ordinal % 2 == 0 else "W"
    return f"Y{chromosome}{arm}{ordinal % 1000:03d}{strand}"


def generate_protein_sequences(
        rng: random.Random,
        cardinality: int = SEQUENCES_CARDINALITY,
        sequence_length: int = SEQUENCE_LENGTH) -> Relation:
    """The ``protein_sequences`` table with fixed-length sequences."""
    schema = sequences_schema(sequence_length)
    rows = []
    for ordinal in range(cardinality):
        orf = f"{_orf_name(ordinal)}-{ordinal}"
        sequence = "".join(rng.choices(AMINO_ACIDS, k=sequence_length))
        rows.append((orf, sequence))
    return Relation.from_values("protein_sequences", schema, rows)


def generate_protein_interactions(
        rng: random.Random,
        sequences: Relation,
        cardinality: int = INTERACTIONS_CARDINALITY) -> Relation:
    """The ``protein_interactions`` table referencing ``sequences``.

    ORF1 values are drawn from the sequence table's keys so the demo
    join (Q2) has full match semantics, as its 4700-tuple output in the
    paper suggests.
    """
    orfs = sequences.column_values("ORF")
    if not orfs:
        raise ValueError("sequences relation is empty")
    rows = []
    for _ in range(cardinality):
        orf1 = rng.choice(orfs)
        orf2 = rng.choice(orfs)
        rows.append((orf1, orf2))
    return Relation.from_values(
        "protein_interactions", interactions_schema(), rows)
