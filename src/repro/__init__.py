"""repro — adaptive Grid query processing, reproduced.

A faithful, fully simulated reproduction of Gounaris et al.,
*Adapting to Changing Resource Performance in Grid Query Processing*
(VLDB DMG 2005): a service-oriented distributed query processor
(OGSA-DQP analog) whose intra-operator parallelism rebalances at
runtime through the paper's monitor/assess/respond architecture.

Quickstart::

    from repro import AdaptivityConfig, DemoGrid, Q1, perturb_ws_cost

    grid = DemoGrid()
    perturb_ws_cost(grid, factor=10.0)          # one machine 10x slower
    result = grid.run(Q1, AdaptivityConfig())   # adaptive run
    print(result.response_time_ms, result.stats.adaptations_accepted)
"""

from repro.config import (
    ASSESSMENT_A1,
    ASSESSMENT_A2,
    AdaptivityConfig,
    CostModel,
    EngineConfig,
    FaultToleranceConfig,
    RESPONSE_R1,
    RESPONSE_R2,
    SchedulerConfig,
)
from repro.data import Column, Relation, Row, Schema
from repro.dqp import QueryProcessor, QueryResult, QueryStatistics
from repro.errors import AdmissionRejected, ReproError
from repro.sched import (
    QueryScheduler,
    QuerySession,
    WorkloadDriver,
    WorkloadReport,
    WorkloadSpec,
)
from repro.grid import (
    CostFactor,
    GridContext,
    JitterFactor,
    Machine,
    SleepInjection,
    StochasticCostFactor,
)
from repro.services import (
    GridDataService,
    WebServiceOperation,
    make_entropy_analyser,
    shannon_entropy,
)
from repro.telemetry import Tracer, format_timeline
from repro.workloads import (
    DemoGrid,
    DemoGridSpec,
    Q1,
    Q2,
    perturb_join_sleep,
    perturb_ws_cost,
    perturb_ws_cost_varying,
)

__version__ = "1.0.0"

__all__ = [
    "ASSESSMENT_A1",
    "ASSESSMENT_A2",
    "AdaptivityConfig",
    "AdmissionRejected",
    "Column",
    "CostFactor",
    "CostModel",
    "DemoGrid",
    "DemoGridSpec",
    "EngineConfig",
    "FaultToleranceConfig",
    "GridContext",
    "GridDataService",
    "JitterFactor",
    "Machine",
    "Q1",
    "Q2",
    "QueryProcessor",
    "QueryResult",
    "QueryScheduler",
    "QuerySession",
    "QueryStatistics",
    "RESPONSE_R1",
    "RESPONSE_R2",
    "Relation",
    "ReproError",
    "Row",
    "Schema",
    "SchedulerConfig",
    "SleepInjection",
    "Tracer",
    "StochasticCostFactor",
    "WebServiceOperation",
    "WorkloadDriver",
    "WorkloadReport",
    "WorkloadSpec",
    "make_entropy_analyser",
    "perturb_join_sleep",
    "perturb_ws_cost",
    "perturb_ws_cost_varying",
    "format_timeline",
    "shannon_entropy",
    "__version__",
]
