"""Integration tests: full distributed query runs on the demo grid.

These exercise the whole stack — parser, optimizer, deployment, the
exchange protocol with checkpointing and announcements, the adaptivity
loop and teardown — at reduced data sizes for speed.
"""

import pytest

from repro.config import AdaptivityConfig, RESPONSE_R1, RESPONSE_R2
from repro.services.ws import shannon_entropy
from repro.workloads import (
    DemoGrid,
    DemoGridSpec,
    Q1,
    Q2,
    perturb_join_sleep,
    perturb_ws_cost,
    perturb_ws_cost_varying,
)

SMALL = DemoGridSpec(sequences_cardinality=150,
                     interactions_cardinality=220,
                     sequence_length=24)


def run(query, adaptivity=None, perturb=None, spec=SMALL, degree=None):
    grid = DemoGrid(spec)
    if perturb:
        perturb(grid)
    return grid, grid.run(query, adaptivity or AdaptivityConfig.disabled(),
                          degree=degree)


def reference_q1(grid):
    """Expected Q1 result computed directly from the generated data."""
    relation = grid.gds_map["protein_sequences"].relation
    return sorted(shannon_entropy(seq)
                  for seq in relation.column_values("sequence"))


def reference_q2(grid):
    """Expected Q2 result computed directly from the generated data."""
    sequences = grid.gds_map["protein_sequences"].relation
    interactions = grid.gds_map["protein_interactions"].relation
    orfs = set(sequences.column_values("ORF"))
    return sorted(orf2 for orf1, orf2
                  in (row.values for row in interactions)
                  if orf1 in orfs)


class TestStaticExecution:
    def test_q1_produces_correct_entropies(self):
        grid, result = run(Q1)
        assert sorted(v[0] for v in result.values()) == pytest.approx(
            reference_q1(grid))

    def test_q2_produces_correct_join(self):
        grid, result = run(Q2)
        assert sorted(v[0] for v in result.values()) == reference_q2(grid)

    def test_static_run_reports_no_adaptivity_activity(self):
        _grid, result = run(Q1)
        stats = result.stats
        assert stats.raw_monitoring_events == 0
        assert stats.adaptations_accepted == 0
        assert stats.duplicates_dropped == 0

    def test_uniform_static_distribution(self):
        _grid, result = run(Q1)
        counts = result.stats.tuples_per_consumer
        assert counts == [75, 75]

    def test_response_time_positive_and_deterministic(self):
        _grid, first = run(Q1)
        _grid, second = run(Q1)
        assert first.response_time_ms > 0
        assert first.response_time_ms == second.response_time_ms

    def test_filter_query_end_to_end(self):
        grid = DemoGrid(SMALL)
        relation = grid.gds_map["protein_interactions"].relation
        target = relation.rows[0].values[0]
        expected = sorted(
            v for o1, v in (r.values for r in relation) if o1 == target)
        result = grid.run(
            f"select i.ORF2 from protein_interactions i "
            f"where i.ORF1 = '{target}'", AdaptivityConfig.disabled())
        assert sorted(v[0] for v in result.values()) == expected

    def test_degree_one_runs_on_single_machine(self):
        _grid, result = run(Q1, degree=1)
        assert result.stats.tuples_per_consumer == [150]

    def test_three_way_partitioning(self):
        spec = DemoGridSpec(sequences_cardinality=150,
                            interactions_cardinality=220,
                            sequence_length=24, compute_machines=3)
        _grid, result = run(Q1, spec=spec)
        assert result.stats.tuples_per_consumer == [50, 50, 50]

    def test_output_schema_names(self):
        _grid, result = run(Q1)
        assert result.schema.names() == ["entropyanalyser"]


class TestAdaptiveExecution:
    def test_q1_adaptive_results_equal_static(self):
        for response in (RESPONSE_R2, RESPONSE_R1):
            grid, result = run(
                Q1, AdaptivityConfig(response=response,
                                     decision_latency_ms=100.0),
                perturb=lambda g: perturb_ws_cost(g, 10.0))
            assert sorted(v[0] for v in result.values()) == pytest.approx(
                reference_q1(grid)), response

    def test_q2_adaptive_r1_results_equal_static(self):
        grid, result = run(
            Q2, AdaptivityConfig(response=RESPONSE_R1,
                                 decision_latency_ms=100.0),
            perturb=lambda g: perturb_join_sleep(g, 10.0))
        assert sorted(v[0] for v in result.values()) == reference_q2(grid)

    def test_adaptation_shifts_load_away_from_perturbed_machine(self):
        # Retrospective response so the shift is visible in the final
        # attribution even at this small data size.
        _grid, result = run(
            Q1, AdaptivityConfig(response=RESPONSE_R1,
                                 decision_latency_ms=100.0),
            perturb=lambda g: perturb_ws_cost(g, 10.0))
        counts = result.stats.tuples_per_consumer
        assert result.stats.adaptations_accepted >= 1
        assert counts[0] < counts[1]  # compute-1 is the perturbed one

    def test_adaptivity_reduces_response_time_under_imbalance(self):
        perturb = lambda g: perturb_ws_cost(g, 10.0)  # noqa: E731
        _grid, static = run(Q1, perturb=perturb)
        _grid, adaptive = run(
            Q1, AdaptivityConfig(response=RESPONSE_R1,
                                 decision_latency_ms=100.0),
            perturb=perturb)
        assert adaptive.response_time_ms < static.response_time_ms

    def test_retrospective_moves_are_recorded(self):
        _grid, result = run(
            Q1, AdaptivityConfig(response=RESPONSE_R1,
                                 decision_latency_ms=100.0),
            perturb=lambda g: perturb_ws_cost(g, 10.0))
        assert result.stats.retrospective_moves >= 1
        assert result.stats.tuples_moved > 0

    def test_prospective_never_moves_tuples(self):
        _grid, result = run(
            Q1, AdaptivityConfig(response=RESPONSE_R2,
                                 decision_latency_ms=100.0),
            perturb=lambda g: perturb_ws_cost(g, 10.0))
        assert result.stats.tuples_moved == 0

    def test_no_adaptation_without_imbalance(self):
        _grid, result = run(Q1, AdaptivityConfig(decision_latency_ms=100.0))
        assert result.stats.adaptations_accepted == 0

    def test_varying_perturbation_still_correct(self):
        grid, result = run(
            Q1, AdaptivityConfig(response=RESPONSE_R1,
                                 decision_latency_ms=100.0),
            perturb=lambda g: perturb_ws_cost_varying(g, 5.0, 25.0))
        assert sorted(v[0] for v in result.values()) == pytest.approx(
            reference_q1(grid))

    def test_monitoring_funnel_filters_notifications(self):
        _grid, result = run(
            Q1, AdaptivityConfig(decision_latency_ms=100.0),
            perturb=lambda g: perturb_ws_cost(g, 10.0))
        stats = result.stats
        assert stats.raw_monitoring_events > stats.cost_notifications
        assert stats.cost_notifications >= stats.proposals_sent
        assert stats.proposals_sent >= stats.adaptations_accepted

    def test_q2_join_state_repartitioning_exactly_once(self):
        grid, result = run(
            Q2, AdaptivityConfig(response=RESPONSE_R1,
                                 decision_latency_ms=100.0,
                                 cooldown_ms=100.0),
            perturb=lambda g: perturb_join_sleep(g, 15.0))
        values = sorted(v[0] for v in result.values())
        assert values == reference_q2(grid)
        # Dedup may have dropped replay duplicates, never results.
        assert result.stats.result_count == len(reference_q2(grid))

    def test_three_machines_one_perturbed(self):
        spec = DemoGridSpec(sequences_cardinality=150,
                            interactions_cardinality=220,
                            sequence_length=24, compute_machines=3)
        grid, result = run(
            Q1, AdaptivityConfig(response=RESPONSE_R1,
                                 decision_latency_ms=100.0),
            perturb=lambda g: perturb_ws_cost(g, 10.0), spec=spec)
        assert sorted(v[0] for v in result.values()) == pytest.approx(
            reference_q1(grid))
        counts = result.stats.tuples_per_consumer
        assert counts[0] == min(counts)


class TestMultiQuerySessions:
    def test_sequential_queries_on_one_grid(self):
        grid = DemoGrid(SMALL)
        first = grid.run(Q1, AdaptivityConfig.disabled())
        second = grid.run(Q2, AdaptivityConfig.disabled())
        assert first.query_id != second.query_id
        assert len(first.rows) == 150
        assert len(second.rows) == 220

    def test_adaptive_then_static(self):
        grid = DemoGrid(SMALL)
        perturb_ws_cost(grid, 10.0)
        adaptive = grid.run(Q1, AdaptivityConfig(decision_latency_ms=100.0))
        static = grid.run(Q1, AdaptivityConfig.disabled())
        assert len(adaptive.rows) == len(static.rows) == 150
