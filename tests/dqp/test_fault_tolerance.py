"""Fault-tolerance tests: machine failure, detection and recovery.

The paper's R1 response rides on infrastructure "developed mainly to
attain fault tolerance" [18]; these tests exercise that original
purpose: a compute machine crashes mid-query, the GDQS detects the
missed heartbeats, re-creates the lost evaluators (on a spare, or by
doubling up), and the feed producers replay their recovery logs —
with exactly-once results throughout.
"""

import math

import pytest

from repro.config import AdaptivityConfig, FaultToleranceConfig, RESPONSE_R1
from repro.errors import ConfigurationError, ServiceError
from repro.services.ws import shannon_entropy
from repro.workloads import (
    DemoGrid,
    DemoGridSpec,
    Q1,
    Q2,
    perturb_join_sleep,
    perturb_ws_cost,
)

SPEC = DemoGridSpec(sequences_cardinality=300, interactions_cardinality=400,
                    sequence_length=24, spare_machines=1)
FT = FaultToleranceConfig(enabled=True, heartbeat_interval_ms=200.0,
                          failure_timeout_ms=700.0)


def q1_reference(grid):
    relation = grid.gds_map["protein_sequences"].relation
    return sorted(shannon_entropy(s)
                  for s in relation.column_values("sequence"))


def q2_reference(grid):
    sequences = grid.gds_map["protein_sequences"].relation
    interactions = grid.gds_map["protein_interactions"].relation
    orfs = set(sequences.column_values("ORF"))
    return sorted(o2 for o1, o2 in (r.values for r in interactions)
                  if o1 in orfs)


def close_lists(got, expected):
    return (len(got) == len(expected)
            and all(math.isclose(a, b) for a, b in zip(got, expected)))


class TestFaultToleranceConfig:
    def test_defaults_disabled(self):
        assert not FaultToleranceConfig().enabled

    @pytest.mark.parametrize("kwargs", [
        {"heartbeat_interval_ms": 0.0},
        {"heartbeat_interval_ms": 500.0, "failure_timeout_ms": 400.0},
        {"call_timeout_ms": 0.0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultToleranceConfig(**kwargs)


class TestCrashMechanics:
    def test_fail_machine_crashes_its_services(self):
        grid = DemoGrid(SPEC, fault_tolerance=FT)
        grid.fail_machine_at("compute-2", at_ms=100.0)
        grid.context.env.run(until=200.0)
        services = [s for s in grid.context._services
                    if s.machine.name == "compute-2"]
        # No query yet: only tracked services on that machine crash.
        assert all(s.crashed for s in services) or not services

    def test_messages_to_crashed_endpoint_are_dropped(self):
        grid = DemoGrid(SPEC)
        network = grid.context.network
        network.register("victim", "compute-1")
        network.deactivate("victim")
        from repro.net import KIND_DATA, Message
        network.send(Message(sender="gds:protein_sequences",
                             recipient="victim", kind=KIND_DATA,
                             payload=None, size_bytes=10))
        grid.context.env.run()
        assert network.messages_dropped == 1


class TestRecovery:
    def run_with_failure(self, query, at_ms, spec=SPEC, perturb=None,
                         adaptivity=None, machine="compute-2"):
        grid = DemoGrid(spec, fault_tolerance=FT)
        if perturb:
            perturb(grid)
        grid.fail_machine_at(machine, at_ms=at_ms)
        result = grid.run(query,
                          adaptivity or AdaptivityConfig.disabled())
        return grid, result

    def test_q1_failure_mid_feed_recovers_exactly_once(self):
        grid, result = self.run_with_failure(Q1, at_ms=900.0)
        assert close_lists(sorted(v[0] for v in result.values()),
                           q1_reference(grid))
        assert result.stats.machines_recovered == 1
        assert result.stats.tuples_replayed_for_recovery > 0

    def test_q1_failure_after_feed_completed(self):
        # A slowed machine stretches the run past the feed; when it
        # dies at 2.5 s the feed is finished and the lost backlog lives
        # only in consumer queues — recoverable solely from the logs.
        grid, result = self.run_with_failure(
            Q1, at_ms=2500.0, machine="compute-1",
            perturb=lambda g: perturb_ws_cost(g, 5.0))
        assert close_lists(sorted(v[0] for v in result.values()),
                           q1_reference(grid))
        assert result.stats.machines_recovered == 1

    def test_q2_failure_loses_join_state_and_rebuilds(self):
        grid, result = self.run_with_failure(Q2, at_ms=2000.0)
        assert sorted(v[0] for v in result.values()) == q2_reference(grid)
        assert result.stats.machines_recovered == 1
        # The replacement received the full build side again.
        assert result.stats.tuples_replayed_for_recovery > 100

    def test_replacement_prefers_spare_machine(self):
        grid, result = self.run_with_failure(Q1, at_ms=900.0)
        used = {c for c in result.stats.tuples_per_consumer if c > 0}
        assert result.stats.machines_recovered == 1
        spare_gqes = [
            gqes for gqes in
            grid.processor.gdqs._heartbeats  # heartbeats observed
            if "spare-1" in gqes]
        assert spare_gqes

    def test_without_spare_doubles_up_on_survivor(self):
        import dataclasses
        spec = dataclasses.replace(SPEC, spare_machines=0)
        grid, result = self.run_with_failure(Q1, at_ms=900.0, spec=spec)
        assert close_lists(sorted(v[0] for v in result.values()),
                           q1_reference(grid))
        assert result.stats.machines_recovered == 1

    def test_failure_plus_adaptivity_q1(self):
        grid, result = self.run_with_failure(
            Q1, at_ms=1500.0,
            perturb=lambda g: perturb_ws_cost(g, 8.0),
            adaptivity=AdaptivityConfig(response=RESPONSE_R1,
                                        decision_latency_ms=200.0))
        assert close_lists(sorted(v[0] for v in result.values()),
                           q1_reference(grid))
        assert result.stats.machines_recovered == 1

    def test_failure_plus_adaptivity_q2(self):
        grid, result = self.run_with_failure(
            Q2, at_ms=2500.0,
            perturb=lambda g: perturb_join_sleep(g, 10.0),
            adaptivity=AdaptivityConfig(response=RESPONSE_R1,
                                        decision_latency_ms=200.0))
        assert sorted(v[0] for v in result.values()) == q2_reference(grid)
        assert result.stats.machines_recovered == 1

    def test_no_failure_means_no_recovery_activity(self):
        grid = DemoGrid(SPEC, fault_tolerance=FT)
        result = grid.run(Q1, AdaptivityConfig.disabled())
        assert result.stats.machines_recovered == 0
        assert result.stats.tuples_replayed_for_recovery == 0

    def test_heartbeats_observed_by_gdqs(self):
        grid = DemoGrid(SPEC, fault_tolerance=FT)
        grid.run(Q1, AdaptivityConfig.disabled())
        beats = grid.processor.gdqs._heartbeats
        assert any("compute-1" in name for name in beats)

    def test_ft_forces_recovery_logging(self):
        from repro.config import EngineConfig
        grid = DemoGrid(SPEC, engine_config=EngineConfig(
            logging_enabled=False), fault_tolerance=FT)
        grid.fail_machine_at("compute-2", at_ms=900.0)
        result = grid.run(Q1, AdaptivityConfig.disabled())
        # Despite logging "disabled", recovery still has logs to replay.
        assert close_lists(sorted(v[0] for v in result.values()),
                           q1_reference(grid))

    def test_adaptation_aimed_at_a_dying_machine(self):
        """Regression: an R1 rebalance moved tuples *to* a machine in
        the instant it crashed; the replays were blackholed and the
        dead consumer's pre-crash announcements were already satisfied.
        Completion must wait for the failure to be handled so the
        recovery replay restores the moved backlog."""
        grid, result = self.run_with_failure(
            Q1, at_ms=998.0,
            perturb=lambda g: perturb_ws_cost(g, 6.0),
            adaptivity=AdaptivityConfig(response=RESPONSE_R1,
                                        decision_latency_ms=100.0))
        assert close_lists(sorted(v[0] for v in result.values()),
                           q1_reference(grid))
        assert result.stats.machines_recovered == 1

    def test_responder_death_mid_update_is_finalized(self):
        """Regression: the Responder (on compute-1) died between the
        replay and discard phases of an update, leaving the feed
        producer 'moving' forever; the GDQS now rolls the orphaned
        update forward during recovery."""
        grid = DemoGrid(SPEC, fault_tolerance=FT)
        perturb_ws_cost(grid, 6.0)
        grid.fail_machine_at("compute-1", at_ms=1000.0)
        handle = grid.processor.gdqs.submit(
            Q1, AdaptivityConfig(response=RESPONSE_R1,
                                 decision_latency_ms=100.0))
        grid.context.env.run(until=handle.done)
        grid.context.env.run()
        result = handle.result
        assert close_lists(sorted(v[0] for v in result.values()),
                           q1_reference(grid))
        assert result.stats.machines_recovered == 1
        # No feed producer is left mid-move.
        for _endpoint, producer in handle.runtime.feed_producers:
            assert not producer.moving

    def test_suspect_quarantine_survives_failed_recovery(self, monkeypatch):
        """Regression: when a recovery attempt aborted with a
        ``ServiceError``, the retry path dropped the quarantined clone
        indices recorded during the suspect phase; the eventual
        successful recovery then left the rebuilt clones parked at
        weight zero.  The suspect bookkeeping must survive the retry
        so the post-recovery reintegration finds them."""
        ft = FaultToleranceConfig(enabled=True,
                                  heartbeat_interval_ms=200.0,
                                  suspect_timeout_ms=400.0,
                                  failure_timeout_ms=1000.0)
        grid = DemoGrid(SPEC, fault_tolerance=ft)
        grid.fail_machine_at("compute-2", at_ms=900.0)
        gdqs = grid.processor.gdqs
        real = gdqs._recover
        attempts = []

        def flaky(runtime, gqes):
            attempts.append(gqes.name)
            if len(attempts) == 1:
                raise ServiceError("injected: control peer unreachable")
            return (yield from real(runtime, gqes))

        monkeypatch.setattr(gdqs, "_recover", flaky)
        result = grid.run(Q1, AdaptivityConfig())
        assert len(attempts) >= 2  # first attempt failed, then retried
        assert close_lists(sorted(v[0] for v in result.values()),
                           q1_reference(grid))
        assert result.stats.machines_recovered == 1
        # The silence window crossed suspect before failure: the
        # clones were quarantined, and — the regression — reintegrated
        # again once the retried recovery rebuilt them.
        assert result.stats.clones_quarantined >= 1
        assert result.stats.clones_reintegrated >= 1

    def test_response_time_reflects_recovery_cost(self):
        grid_ok = DemoGrid(SPEC, fault_tolerance=FT)
        clean = grid_ok.run(Q1, AdaptivityConfig.disabled())
        _grid, failed = self.run_with_failure(Q1, at_ms=900.0)
        assert failed.response_time_ms > clean.response_time_ms
