"""Integration tests: aggregate queries on the distributed engine.

The central claim: coordinator-side aggregation runs downstream of the
provenance dedup, so aggregates are invariant under adaptivity,
retrospective repartitioning and failure recovery.
"""

import collections

import pytest

from repro.config import AdaptivityConfig, FaultToleranceConfig, RESPONSE_R1
from repro.services.ws import shannon_entropy
from repro.workloads import (
    DemoGrid,
    DemoGridSpec,
    perturb_join_sleep,
    perturb_ws_cost,
)

SPEC = DemoGridSpec(sequences_cardinality=150, interactions_cardinality=220,
                    sequence_length=24, spare_machines=1)

AVG_ENTROPY = ("select count(*), avg(EntropyAnalyser(p.sequence)) "
               "from protein_sequences p")
GROUPED_JOIN = ("select i.ORF1, count(*) from protein_sequences p, "
                "protein_interactions i where i.ORF1 = p.ORF "
                "group by i.ORF1")


def reference_avg_entropy(grid):
    values = [shannon_entropy(s) for s in grid.gds_map[
        "protein_sequences"].relation.column_values("sequence")]
    return len(values), sum(values) / len(values)


def reference_grouped_join(grid):
    counts = collections.Counter(
        grid.gds_map["protein_interactions"].relation.column_values("ORF1"))
    return dict(counts)


class TestStaticAggregation:
    def test_global_count_and_avg_over_ws(self):
        grid = DemoGrid(SPEC)
        result = grid.run(AVG_ENTROPY, AdaptivityConfig.disabled())
        count, average = result.values()[0]
        expected_count, expected_average = reference_avg_entropy(grid)
        assert count == expected_count
        assert average == pytest.approx(expected_average)
        assert result.schema.names() == ["count_star",
                                         "avg_entropyanalyser"]

    def test_grouped_join_counts(self):
        grid = DemoGrid(SPEC)
        result = grid.run(GROUPED_JOIN, AdaptivityConfig.disabled())
        got = {orf: count for orf, count in result.values()}
        assert got == reference_grouped_join(grid)

    def test_grouped_filter_query(self):
        grid = DemoGrid(SPEC)
        orf = grid.gds_map["protein_interactions"].relation.rows[0].values[0]
        result = grid.run(
            f"select count(*) from protein_interactions i "
            f"where i.ORF1 = '{orf}'", AdaptivityConfig.disabled())
        expected = reference_grouped_join(grid)[orf]
        assert result.values()[0][0] == expected

    def test_min_max_sum_over_join(self):
        grid = DemoGrid(SPEC)
        # Degenerate numeric column: count per group via sum of 1s is
        # not expressible, so aggregate over entropy of joined rows.
        result = grid.run(
            "select min(EntropyAnalyser(p.sequence)), "
            "max(EntropyAnalyser(p.sequence)) from protein_sequences p",
            AdaptivityConfig.disabled())
        values = [shannon_entropy(s) for s in grid.gds_map[
            "protein_sequences"].relation.column_values("sequence")]
        minimum, maximum = result.values()[0]
        assert minimum == pytest.approx(min(values))
        assert maximum == pytest.approx(max(values))

    def test_result_count_reflects_groups(self):
        grid = DemoGrid(SPEC)
        result = grid.run(GROUPED_JOIN, AdaptivityConfig.disabled())
        assert result.stats.result_count == len(reference_grouped_join(grid))


class TestAggregationInvariance:
    def test_invariant_under_retrospective_adaptation(self):
        grid = DemoGrid(SPEC)
        perturb_ws_cost(grid, 10.0)
        result = grid.run(
            AVG_ENTROPY, AdaptivityConfig(response=RESPONSE_R1,
                                          decision_latency_ms=100.0))
        count, average = result.values()[0]
        expected_count, expected_average = reference_avg_entropy(grid)
        assert count == expected_count
        assert average == pytest.approx(expected_average)

    def test_grouped_join_invariant_under_adaptation(self):
        grid = DemoGrid(SPEC)
        perturb_join_sleep(grid, 12.0)
        result = grid.run(
            GROUPED_JOIN, AdaptivityConfig(response=RESPONSE_R1,
                                           decision_latency_ms=100.0))
        got = {orf: count for orf, count in result.values()}
        assert got == reference_grouped_join(grid)

    def test_invariant_under_machine_failure(self):
        ft = FaultToleranceConfig(enabled=True,
                                  heartbeat_interval_ms=200.0,
                                  failure_timeout_ms=700.0)
        grid = DemoGrid(SPEC, fault_tolerance=ft)
        grid.fail_machine_at("compute-2", at_ms=900.0)
        result = grid.run(AVG_ENTROPY, AdaptivityConfig.disabled())
        count, average = result.values()[0]
        expected_count, expected_average = reference_avg_entropy(grid)
        assert result.stats.machines_recovered == 1
        assert count == expected_count
        assert average == pytest.approx(expected_average)
