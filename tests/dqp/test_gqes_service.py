"""Service-level tests for the GQES (routing, ops, quiescence)."""

import pytest

from repro.config import AdaptivityConfig, CostModel, EngineConfig
from repro.dqp.gqes import GQES
from repro.engine.control import DataBuffer, QueryComplete
from repro.errors import ServiceError
from repro.grid import GridContext
from repro.net.message import KIND_CONTROL, KIND_DATA
from repro.services.base import GridService
from repro.workloads import DemoGrid, DemoGridSpec, Q1

SMALL = DemoGridSpec(sequences_cardinality=100, interactions_cardinality=120,
                     sequence_length=16)


def make_gqes():
    context = GridContext(seed=0)
    context.add_machine("m1")
    context.add_machine("m2")
    gqes = GQES(context, "qx", "m1", EngineConfig(), CostModel())
    peer = GridService(context, "peer", "m2")
    return context, gqes, peer


class TestGqesRouting:
    def test_data_for_unknown_channel_raises(self):
        context, gqes, peer = make_gqes()
        peer.send(gqes.name, KIND_DATA,
                  DataBuffer("ghost:0:0", "xp:ghost:0", [], 0))
        with pytest.raises(ServiceError, match="unknown channel"):
            context.env.run()

    def test_unknown_control_payload_raises(self):
        context, gqes, peer = make_gqes()
        peer.send(gqes.name, KIND_CONTROL, object())
        with pytest.raises(ServiceError, match="unknown control"):
            context.env.run()

    def test_query_complete_is_idempotent(self):
        context, gqes, peer = make_gqes()
        peer.send(gqes.name, KIND_CONTROL, QueryComplete("qx"))
        peer.send(gqes.name, KIND_CONTROL, QueryComplete("qx"))
        context.env.run()
        assert gqes.query_complete.triggered

    def test_fresh_gqes_is_quiescent(self):
        _context, gqes, _peer = make_gqes()
        assert gqes.is_quiescent()

    def test_update_for_unknown_producer_is_reported(self):
        context, gqes, peer = make_gqes()

        def caller(env):
            result = yield from peer.call(
                gqes.name, "update_distribution",
                {"update": None, "producer_id": "nope", "phase": "replay"})
            return result

        process = context.env.process(caller(context.env))
        context.env.run(until=process)
        assert process.value == "unknown-producer"

    def test_update_after_query_complete_is_rejected(self):
        context, gqes, peer = make_gqes()
        gqes.query_complete.succeed(None)

        def caller(env):
            result = yield from peer.call(
                gqes.name, "update_distribution",
                {"update": None, "producer_id": "x", "phase": "replay"})
            return result

        process = context.env.process(caller(context.env))
        context.env.run(until=process)
        assert process.value == "query-complete"

    def test_progress_for_unknown_subplan_is_empty(self):
        context, gqes, peer = make_gqes()

        def caller(env):
            reports = yield from peer.call(
                gqes.name, "progress", {"subplan_id": "ghost"})
            processed = yield from peer.call(
                gqes.name, "processed", {"subplan_id": "ghost"})
            return reports, processed

        process = context.env.process(caller(context.env))
        context.env.run(until=process)
        assert process.value == ([], 0)


class TestGqesDuringQuery:
    def deploy(self):
        grid = DemoGrid(SMALL)
        handle = grid.processor.gdqs.submit(Q1, AdaptivityConfig.disabled())
        return grid, handle

    def test_quiescent_only_after_completion(self):
        grid, handle = self.deploy()
        grid.context.env.run(until=500.0)
        runtime = handle.runtime
        assert not all(g.is_quiescent() for g in runtime.all_gqes())
        grid.context.env.run(until=handle.done)
        grid.context.env.run()
        assert all(g.is_quiescent() for g in runtime.all_gqes())

    def test_duplicate_fragment_deployment_rejected(self):
        grid, handle = self.deploy()
        runtime = handle.runtime
        fragment = runtime.compute_fragments[0]
        gqes = runtime.gqes_by_machine[fragment.ctx.machine.name]
        with pytest.raises(ServiceError, match="already"):
            gqes.deploy(fragment)
        grid.context.env.run(until=handle.done)

    def test_crashed_gqes_counts_quiescent(self):
        grid, handle = self.deploy()
        grid.context.env.run(until=300.0)
        runtime = handle.runtime
        victim = runtime.gqes_by_machine["compute-2"]
        victim.crash()
        assert victim.is_quiescent()
