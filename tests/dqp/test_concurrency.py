"""Tests for concurrent query execution and utilisation accounting."""

import pytest

from repro.config import AdaptivityConfig, RESPONSE_R1
from repro.services.ws import shannon_entropy
from repro.workloads import (
    DemoGrid,
    DemoGridSpec,
    Q1,
    Q2,
    perturb_machine_load,
    perturb_ws_cost,
)

SPEC = DemoGridSpec(sequences_cardinality=150, interactions_cardinality=200,
                    sequence_length=24)


class TestConcurrentQueries:
    def submit_both(self, grid, adaptivity=None):
        adaptivity = adaptivity or AdaptivityConfig.disabled()
        first = grid.processor.gdqs.submit(Q1, adaptivity)
        second = grid.processor.gdqs.submit(Q2, adaptivity)
        env = grid.context.env
        env.run(until=first.done)
        env.run(until=second.done)
        env.run()
        return first, second

    def test_concurrent_queries_are_both_correct(self):
        grid = DemoGrid(SPEC)
        first, second = self.submit_both(grid)
        expected_q1 = sorted(
            shannon_entropy(s) for s in grid.gds_map[
                "protein_sequences"].relation.column_values("sequence"))
        assert sorted(v[0] for v in first.result.values()) == pytest.approx(
            expected_q1)
        assert second.result.stats.result_count == 200

    def test_concurrency_costs_response_time(self):
        solo = DemoGrid(SPEC).run(Q1, AdaptivityConfig.disabled())
        grid = DemoGrid(SPEC)
        first, _second = self.submit_both(grid)
        # The shared data host serialises the two feeds.
        assert (first.result.response_time_ms
                > solo.response_time_ms * 1.3)

    def test_concurrent_adaptive_queries_do_not_interfere(self):
        grid = DemoGrid(SPEC)
        perturb_ws_cost(grid, 8.0)
        adaptivity = AdaptivityConfig(response=RESPONSE_R1,
                                      decision_latency_ms=100.0)
        first, second = self.submit_both(grid, adaptivity)
        assert first.result.stats.result_count == 150
        assert second.result.stats.result_count == 200
        # Replay duplicates (if any) were suppressed, never results.
        tids = [row.tid for row in first.result.rows]
        assert len(set(tids)) == len(tids)

    def test_queries_get_distinct_service_names(self):
        grid = DemoGrid(SPEC)
        first, second = self.submit_both(grid)
        names_1 = {g.name for g in first.runtime.all_gqes()}
        names_2 = {g.name for g in second.runtime.all_gqes()}
        assert not names_1 & names_2


class TestUtilisationAccounting:
    def test_utilisation_reported_per_machine(self):
        grid = DemoGrid(SPEC)
        result = grid.run(Q1, AdaptivityConfig.disabled())
        utilisation = result.stats.machine_utilisation
        assert set(utilisation) == {"data-host", "compute-1", "compute-2",
                                    "coordinator"}
        assert all(0.0 <= value <= 1.0 for value in utilisation.values())
        # The feed dominates: the data host is the busiest machine.
        assert utilisation["data-host"] == max(utilisation.values())
        assert utilisation["data-host"] > 0.8

    def test_perturbed_machine_shows_higher_utilisation(self):
        grid = DemoGrid(SPEC)
        perturb_ws_cost(grid, 10.0)
        result = grid.run(Q1, AdaptivityConfig.disabled())
        utilisation = result.stats.machine_utilisation
        assert utilisation["compute-1"] > utilisation["compute-2"]

    def test_second_query_utilisation_not_polluted_by_first(self):
        grid = DemoGrid(SPEC)
        grid.run(Q1, AdaptivityConfig.disabled())
        second = grid.run(Q1, AdaptivityConfig.disabled())
        # Deltas are per-query: still bounded and feed-dominated.
        utilisation = second.stats.machine_utilisation
        assert utilisation["data-host"] > 0.8
        assert utilisation["coordinator"] < 0.5


class TestMachineLoadScenario:
    def test_machine_wide_load_slows_everything(self):
        baseline = DemoGrid(SPEC).run(Q1, AdaptivityConfig.disabled())
        grid = DemoGrid(SPEC)
        perturb_machine_load(grid, 3.0)  # compute-1 fully loaded
        result = grid.run(Q1, AdaptivityConfig.disabled())
        assert result.response_time_ms > baseline.response_time_ms

    def test_adaptivity_compensates_machine_load(self):
        static_grid = DemoGrid(SPEC)
        perturb_machine_load(static_grid, 6.0)
        static = static_grid.run(Q1, AdaptivityConfig.disabled())
        adaptive_grid = DemoGrid(SPEC)
        perturb_machine_load(adaptive_grid, 6.0)
        adaptive = adaptive_grid.run(
            Q1, AdaptivityConfig(response=RESPONSE_R1,
                                 decision_latency_ms=100.0))
        assert adaptive.response_time_ms < static.response_time_ms

    def test_windowed_load(self):
        grid = DemoGrid(SPEC)
        perturb_machine_load(grid, 5.0, start_ms=100.0, end_ms=200.0)
        machine = grid.context.machine("compute-1")
        perturbation = machine.perturbations[0]
        assert perturbation.matches("anything", 150.0)
        assert not perturbation.matches("anything", 250.0)
