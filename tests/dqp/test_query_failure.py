"""Typed query failures: irrecoverable crashes end cleanly, not loudly.

A permanently crashed machine whose state cannot be rebuilt (the data
host, or a compute machine once the recovery budget is spent) must
fail the query with a :class:`~repro.dqp.gdqs.QueryFailed` outcome —
delivered as the *value* of a succeeded ``handle.done`` event, so no
waiter ever sees an unhandled exception — and the simulation must
drain to quiescence afterwards.
"""

import dataclasses

import pytest

from repro.chaos import ChaosConfig, MachineCrash
from repro.config import AdaptivityConfig, FaultToleranceConfig
from repro.dqp.gdqs import (
    CAUSE_BUDGET,
    CAUSE_UNRECOVERABLE,
    QueryFailed,
)
from repro.errors import QueryFailedError
from repro.workloads import DATA_HOST, DemoGrid, DemoGridSpec, Q2

SPEC = DemoGridSpec(sequences_cardinality=120,
                    interactions_cardinality=150,
                    sequence_length=16, spare_machines=1)
FT = FaultToleranceConfig(enabled=True, heartbeat_interval_ms=200.0,
                          failure_timeout_ms=700.0)


def crash(machine, at_ms=600.0):
    return ChaosConfig.lossy(crashes=(MachineCrash(machine, at_ms=at_ms),))


class TestUnrecoverableCrash:
    def test_data_host_crash_fails_query_with_typed_cause(self):
        grid = DemoGrid(SPEC, fault_tolerance=FT, chaos=crash(DATA_HOST))
        with pytest.raises(QueryFailedError) as info:
            grid.run(Q2, AdaptivityConfig.disabled())
        failure = info.value.failure
        assert failure.failed
        assert failure.cause == CAUSE_UNRECOVERABLE
        assert failure.failed_machine == DATA_HOST
        assert failure.elapsed_ms > 0.0
        # The failure is terminal accounting, not an error escape.
        assert grid.processor.gdqs.queries_failed == 1

    def test_handle_done_succeeds_with_failure_value(self):
        grid = DemoGrid(SPEC, fault_tolerance=FT, chaos=crash(DATA_HOST))
        handle = grid.processor.gdqs.submit(Q2,
                                            AdaptivityConfig.disabled())
        env = grid.context.env
        env.run(until=handle.done)
        # The event *succeeded*: waiters resume normally and find the
        # typed failure as the value, never an exception.
        assert handle.done.ok
        assert isinstance(handle.done.value, QueryFailed)
        assert handle.failure is handle.done.value
        assert handle.completed_at is not None
        # The simulation drains cleanly: no orphaned process throws.
        env.run()


class TestRecoveryBudget:
    def test_zero_budget_turns_first_loss_into_failure(self):
        ft = dataclasses.replace(FT, max_recoveries=0)
        grid = DemoGrid(SPEC, fault_tolerance=ft,
                        chaos=crash("compute-2"))
        with pytest.raises(QueryFailedError) as info:
            grid.run(Q2, AdaptivityConfig.disabled())
        failure = info.value.failure
        assert failure.cause == CAUSE_BUDGET
        assert failure.failed_machine == "compute-2"
        assert failure.recoveries == 0

    def test_budget_of_one_still_recovers_a_single_loss(self):
        ft = dataclasses.replace(FT, max_recoveries=1)
        grid = DemoGrid(SPEC, fault_tolerance=ft,
                        chaos=crash("compute-2"))
        result = grid.run(Q2, AdaptivityConfig.disabled())
        assert result.stats.result_count == 150
        assert result.stats.machines_recovered == 1
