"""Unit tests for configuration validation."""

import pytest

from repro.config import (
    ASSESSMENT_A1,
    AdaptivityConfig,
    CostModel,
    EngineConfig,
    RESPONSE_R1,
    RESPONSE_R2,
)
from repro.errors import ConfigurationError


class TestAdaptivityConfig:
    def test_defaults_match_paper_section_3_1(self):
        config = AdaptivityConfig()
        assert config.m1_interval == 10
        assert config.window_size == 25
        assert config.thres_m == pytest.approx(0.20)
        assert config.thres_a == pytest.approx(0.20)
        assert config.assessment == ASSESSMENT_A1
        assert config.enabled

    def test_disabled_factory(self):
        config = AdaptivityConfig.disabled()
        assert not config.enabled

    def test_retrospective_property(self):
        assert AdaptivityConfig(response=RESPONSE_R1).retrospective
        assert not AdaptivityConfig(response=RESPONSE_R2).retrospective

    def test_replace_creates_modified_copy(self):
        config = AdaptivityConfig()
        other = config.replace(thres_a=0.5)
        assert other.thres_a == 0.5
        assert config.thres_a == pytest.approx(0.20)

    @pytest.mark.parametrize("kwargs", [
        {"assessment": "A3"},
        {"response": "R9"},
        {"m1_interval": -1},
        {"window_size": 2},
        {"min_window_events": 0},
        {"min_window_events": 99},
        {"thres_m": -0.1},
        {"thres_m_floor": -1e-9},
        {"thres_a": -0.1},
        {"progress_cutoff": 0.0},
        {"progress_cutoff": 1.5},
        {"hash_buckets": 0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdaptivityConfig(**kwargs)


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.buffer_size == 50
        assert config.checkpoint_interval == 50
        assert config.logging_enabled

    @pytest.mark.parametrize("kwargs", [
        {"batch_size": 0},
        {"batch_size": -1},
        {"batch_size": 2.5},
        {"batch_size": True},
        {"buffer_size": 0},
        {"buffer_size": 50.0},
        {"checkpoint_interval": 0},
        {"checkpoint_interval": "50"},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            EngineConfig(**kwargs)

    def test_replace(self):
        assert EngineConfig().replace(buffer_size=10).buffer_size == 10


class TestCostModel:
    def test_replace_is_non_destructive(self):
        cost = CostModel()
        other = cost.replace(ack_work=99.0)
        assert other.ack_work == 99.0
        assert cost.ack_work != 99.0

    def test_all_costs_non_negative(self):
        cost = CostModel()
        import dataclasses
        for field in dataclasses.fields(cost):
            assert getattr(cost, field.name) >= 0, field.name
