"""Unit tests for the network fabric."""

import pytest

from repro.errors import NetworkError
from repro.net import KIND_DATA, Message, Network, NetworkConfig
from repro.sim import Environment


def make_network(env, latency=1.0, bandwidth=1000.0):
    return Network(env, NetworkConfig(latency_ms=latency,
                                      bandwidth_bytes_per_ms=bandwidth,
                                      loopback_delay_ms=0.01))


def test_remote_message_arrives_in_mailbox():
    env = Environment()
    net = make_network(env)
    net.register("a", "m1")
    mailbox_b = net.register("b", "m2")
    received = []

    def receiver(env):
        message = yield mailbox_b.get()
        received.append((env.now, message.payload))

    env.process(receiver(env))
    net.send(Message(sender="a", recipient="b", kind=KIND_DATA,
                     payload="hello", size_bytes=500))
    env.run()
    # 500/1000 ms transmission + 1 ms latency.
    assert received == [(pytest.approx(1.5), "hello")]


def test_local_message_uses_loopback():
    env = Environment()
    net = make_network(env)
    net.register("a", "m1")
    mailbox_b = net.register("b", "m1")
    received = []

    def receiver(env):
        message = yield mailbox_b.get()
        received.append(env.now)

    env.process(receiver(env))
    net.send(Message(sender="a", recipient="b", kind=KIND_DATA,
                     payload="x", size_bytes=10_000_000))
    env.run()
    assert received == [pytest.approx(0.01)]


def test_send_event_fires_at_delivery():
    env = Environment()
    net = make_network(env)
    net.register("a", "m1")
    net.register("b", "m2")

    def sender(env):
        done = net.send(Message(sender="a", recipient="b", kind=KIND_DATA,
                                payload=None, size_bytes=1000))
        yield done
        return env.now

    proc = env.process(sender(env))
    env.run(until=proc)
    assert proc.value == pytest.approx(2.0)  # 1 ms transmit + 1 ms latency


def test_unknown_endpoint_raises():
    env = Environment()
    net = make_network(env)
    net.register("a", "m1")
    with pytest.raises(NetworkError):
        net.send(Message(sender="a", recipient="ghost", kind=KIND_DATA,
                         payload=None))


def test_duplicate_endpoint_rejected():
    env = Environment()
    net = make_network(env)
    net.register("a", "m1")
    with pytest.raises(NetworkError):
        net.register("a", "m2")


def test_messages_between_same_machines_share_link():
    env = Environment()
    net = make_network(env, latency=0.0, bandwidth=100.0)
    net.register("a", "m1")
    net.register("b", "m2")
    net.register("c", "m2")
    arrivals = []

    def receiver(env, mailbox, name):
        yield mailbox.get()
        arrivals.append((name, env.now))

    env.process(receiver(env, net.endpoint("b").mailbox, "b"))
    env.process(receiver(env, net.endpoint("c").mailbox, "c"))
    net.send(Message(sender="a", recipient="b", kind=KIND_DATA,
                     payload=None, size_bytes=100))
    net.send(Message(sender="a", recipient="c", kind=KIND_DATA,
                     payload=None, size_bytes=100))
    env.run()
    # Both messages traverse the single m1->m2 link: 1 ms then 2 ms.
    assert sorted(t for _, t in arrivals) == [pytest.approx(1.0),
                                              pytest.approx(2.0)]


def test_delivery_statistics_accumulate():
    env = Environment()
    net = make_network(env)
    net.register("a", "m1")
    net.register("b", "m2")
    net.send(Message(sender="a", recipient="b", kind=KIND_DATA,
                     payload=None, size_bytes=100))
    net.send(Message(sender="a", recipient="b", kind=KIND_DATA,
                     payload=None, size_bytes=200))
    env.run()
    assert net.messages_delivered == 2
    assert net.bytes_delivered == 300
