"""Unit tests for the SOAP-style serialization cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.net import SerializationModel


class TestSerializationModel:
    def test_serialize_work_scales_linearly(self):
        model = SerializationModel(serialize_per_message=2.0,
                                   serialize_per_tuple=0.5)
        assert model.serialize_work(0) == 2.0
        assert model.serialize_work(10) == 7.0

    def test_deserialize_work(self):
        model = SerializationModel(deserialize_per_message=1.0,
                                   deserialize_per_tuple=0.1)
        assert model.deserialize_work(50) == pytest.approx(6.0)

    def test_wire_size_inflates_payload(self):
        model = SerializationModel(envelope_bytes=100, size_inflation=2.0)
        assert model.wire_size(1000) == 2100

    def test_negative_values_rejected(self):
        with pytest.raises(ConfigurationError):
            SerializationModel(serialize_per_tuple=-0.1)
        with pytest.raises(ConfigurationError):
            SerializationModel(envelope_bytes=-1)

    @given(st.integers(min_value=0, max_value=10_000))
    def test_costs_are_monotone_in_tuple_count(self, count):
        model = SerializationModel()
        assert model.serialize_work(count + 1) >= model.serialize_work(count)
        assert (model.deserialize_work(count + 1)
                >= model.deserialize_work(count))

    @given(st.integers(min_value=0, max_value=1_000_000))
    def test_wire_size_at_least_envelope(self, payload):
        model = SerializationModel()
        assert model.wire_size(payload) >= model.envelope_bytes
