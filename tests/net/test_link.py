"""Unit tests for the link model."""

import pytest

from repro.errors import ConfigurationError
from repro.net.link import Link
from repro.sim import Environment


def test_transfer_time_is_latency_plus_transmission():
    env = Environment()
    link = Link(env, latency_ms=2.0, bandwidth_bytes_per_ms=100.0)

    def body(env):
        yield link.transfer(500)
        return env.now

    proc = env.process(body(env))
    env.run()
    # 500 bytes / 100 B/ms = 5 ms transmission + 2 ms latency.
    assert proc.value == pytest.approx(7.0)


def test_concurrent_transfers_serialise_on_the_link():
    env = Environment()
    link = Link(env, latency_ms=0.0, bandwidth_bytes_per_ms=100.0)
    deliveries = []

    def body(env, name, size):
        yield link.transfer(size)
        deliveries.append((name, env.now))

    env.process(body(env, "a", 300))
    env.process(body(env, "b", 200))
    env.run()
    assert deliveries == [("a", pytest.approx(3.0)), ("b", pytest.approx(5.0))]


def test_fifo_delivery_order_preserved_with_latency():
    env = Environment()
    link = Link(env, latency_ms=5.0, bandwidth_bytes_per_ms=1000.0)
    order = []

    def body(env, name, size):
        yield link.transfer(size)
        order.append(name)

    env.process(body(env, "big", 2000))
    env.process(body(env, "small", 10))
    env.run()
    assert order == ["big", "small"]


def test_link_statistics():
    env = Environment()
    link = Link(env, latency_ms=1.0, bandwidth_bytes_per_ms=100.0)

    def body(env):
        yield link.transfer(100)
        yield link.transfer(50)

    env.process(body(env))
    env.run()
    assert link.bytes_sent == 150
    assert link.messages_sent == 2


def test_invalid_link_parameters_rejected():
    env = Environment()
    with pytest.raises(ConfigurationError):
        Link(env, latency_ms=-1.0, bandwidth_bytes_per_ms=1.0)
    with pytest.raises(ConfigurationError):
        Link(env, latency_ms=0.0, bandwidth_bytes_per_ms=0.0)
