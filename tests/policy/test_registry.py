"""Unit tests for the policy registry and its config integration."""

import pytest

from repro.config import AdaptivityConfig
from repro.errors import ConfigurationError
from repro.policy import (
    HysteresisPolicy,
    PolicyRegistry,
    create_policy,
    default_registry,
    paper_policy_name,
)


class TestPolicyRegistry:
    def test_default_registry_has_all_builtins(self):
        assert default_registry().names() == [
            "chaos-aware", "hysteresis", "paper-A1R1", "paper-A1R2",
            "paper-A2R1", "paper-A2R2", "pid"]

    def test_unknown_name_lists_registered_policies(self):
        with pytest.raises(ConfigurationError) as excinfo:
            default_registry().get("A3")
        message = str(excinfo.value)
        assert "'A3'" in message
        assert "paper-A1R1" in message
        assert "hysteresis" in message

    def test_duplicate_registration_rejected(self):
        registry = PolicyRegistry()
        registry.register("x", HysteresisPolicy)
        with pytest.raises(ValueError):
            registry.register("x", HysteresisPolicy)

    def test_paper_axes_roundtrip(self):
        registry = default_registry()
        assert registry.paper_axes(paper_policy_name("A2", "R1")) == (
            "A2", "R1")
        assert registry.paper_axes("hysteresis") is None
        assert registry.assessments() == ["A1", "A2"]
        assert registry.responses() == ["R1", "R2"]

    def test_create_names_the_instance(self):
        config = AdaptivityConfig(policy="hysteresis")
        policy = create_policy(config)
        assert isinstance(policy, HysteresisPolicy)
        assert policy.name == "hysteresis"

    def test_unknown_param_lists_known_tunables(self):
        with pytest.raises(ConfigurationError) as excinfo:
            default_registry().validate_params("hysteresis",
                                               {"alhpa": 1.0})
        message = str(excinfo.value)
        assert "'alhpa'" in message
        assert "alpha" in message
        assert "release_ratio" in message


class TestConfigValidation:
    def test_unknown_policy_error_lists_options(self):
        with pytest.raises(ConfigurationError) as excinfo:
            AdaptivityConfig(policy="A3")
        message = str(excinfo.value)
        assert "'A3'" in message
        assert "pid" in message

    def test_bad_assessment_error_lists_valid_axes(self):
        with pytest.raises(ConfigurationError) as excinfo:
            AdaptivityConfig(assessment="A3")
        assert "A1" in str(excinfo.value)
        assert "A2" in str(excinfo.value)

    def test_paper_policy_name_is_authoritative_over_axes(self):
        config = AdaptivityConfig(policy="paper-A2R1",
                                  assessment="A1", response="R2")
        assert config.assessment == "A2"
        assert config.response == "R1"
        assert config.retrospective is True

    def test_axes_resolve_to_paper_policy_name(self):
        config = AdaptivityConfig(assessment="A2", response="R2")
        assert config.policy is None
        assert config.policy_name == "paper-A2R2"

    def test_policy_params_mapping_normalised_to_sorted_tuple(self):
        config = AdaptivityConfig(policy="pid",
                                  policy_params={"ki": 0.1, "kp": 0.7})
        assert config.policy_params == (("ki", 0.1), ("kp", 0.7))
        assert config.params() == {"ki": 0.1, "kp": 0.7}

    def test_unknown_policy_param_rejected_at_config_time(self):
        with pytest.raises(ConfigurationError):
            AdaptivityConfig(policy="pid", policy_params={"kd": 0.2})

    def test_params_reach_the_instance(self):
        config = AdaptivityConfig(policy="pid",
                                  policy_params={"kp": 0.7})
        policy = create_policy(config)
        assert policy.params["kp"] == 0.7
        assert policy.params["ki"] == 0.15  # default preserved
