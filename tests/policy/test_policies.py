"""Unit tests for the non-paper controllers, in isolation.

Each policy is driven directly through the protocol surface (observe/
diagnose/decide and the lifecycle hooks) with hand-made notifications
— no grid, no simulation — so the controller arithmetic is pinned
down independently of the services that host it.
"""

import types

import pytest

from repro.config import AdaptivityConfig
from repro.core import BalancingTask, CostNotification, ImbalanceProposal
from repro.policy import create_policy
from repro.policy.base import DEPLOY, SKIP


def make_task():
    return BalancingTask(
        subplan_id="compute",
        instance_ids=("compute:0", "compute:1"),
        initial_weights=(0.5, 0.5),
        instance_channels={"compute:0": ("c0",), "compute:1": ("c1",)},
        co_located_channels=frozenset(),
        producer_endpoints=("gqes:data",),
        producers=(("xp", "gqes:data", 0),),
        policy_kind="wrr")


def m1(instance_id, value):
    return CostNotification(
        kind="m1", key=f"m1|{instance_id}", instance_id=instance_id,
        recipient_channel=None, subplan_id="compute",
        average_value=value, window_length=5, timestamp=0.0)


def policy_named(name, **config_kwargs):
    return create_policy(AdaptivityConfig(policy=name, **config_kwargs))


def feed(policy, task, cost0, cost1):
    policy.observe(m1("compute:0", cost0), task)
    policy.observe(m1("compute:1", cost1), task)


class TestHysteresisPolicy:
    def test_ewma_smooths_cost_updates(self):
        policy, task = policy_named("hysteresis"), make_task()
        policy.observe(m1("compute:0", 10.0), task)
        policy.observe(m1("compute:0", 20.0), task)
        # alpha = 0.4: 0.4 * 20 + 0.6 * 10.
        assert policy.instance_cost(task, "compute:0") == pytest.approx(14.0)

    def test_disarms_after_adaptation(self):
        policy, task = policy_named("hysteresis"), make_task()
        feed(policy, task, 10.0, 1.0)
        outcome = policy.diagnose(task, [0.5, 0.5], now=0.0)
        assert outcome is not None
        proposed, _costs = outcome
        assert proposed[1] > proposed[0]
        policy.on_adaptation("compute", tuple(proposed), now=0.0)
        # Same imbalance, same weights: the disarmed trigger stays mute.
        assert policy.diagnose(task, [0.5, 0.5], now=1.0) is None

    def test_rearms_once_deviation_falls_below_release(self):
        policy, task = policy_named("hysteresis"), make_task()
        feed(policy, task, 10.0, 1.0)
        proposed, _costs = policy.diagnose(task, [0.5, 0.5], now=0.0)
        policy.on_adaptation("compute", tuple(proposed), now=0.0)
        # Deployed weights now match the target: deviation ~0 re-arms
        # (and, being below thres_a, still proposes nothing).
        assert policy.diagnose(task, list(proposed), now=1.0) is None
        # The imbalance flips: the re-armed trigger fires again.
        feed(policy, task, 1.0, 1.0)  # EWMA pulls costs back together
        feed(policy, task, 1.0, 1.0)
        feed(policy, task, 1.0, 1.0)
        outcome = policy.diagnose(task, list(proposed), now=2.0)
        assert outcome is not None


class TestPidPolicy:
    def test_steps_toward_target_instead_of_jumping(self):
        policy, task = policy_named("pid"), make_task()
        feed(policy, task, 10.0, 1.0)
        proposed, costs = policy.diagnose(task, [0.5, 0.5], now=0.0)
        target_0 = (1 / 10) / (1 / 10 + 1 / 1)  # inverse-cost weight
        # A partial step: strictly between the setpoint and current.
        assert target_0 < proposed[0] < 0.5
        assert proposed[0] + proposed[1] == pytest.approx(1.0)

    def test_deadband_clears_integral_and_stays_quiet(self):
        policy, task = policy_named("pid"), make_task()
        feed(policy, task, 10.0, 1.0)
        policy.diagnose(task, [0.5, 0.5], now=0.0)  # accumulates error
        assert policy._integral  # noqa: SLF001 - white-box check
        feed(policy, task, 1.0, 1.0)
        feed(policy, task, 1.0, 1.0)
        feed(policy, task, 1.0, 1.0)
        assert policy.diagnose(task, [0.5, 0.5], now=1.0) is None
        assert not policy._integral

    def test_decision_threshold_scaled_by_deadband_ratio(self):
        policy = policy_named("pid", thres_a=0.2)
        assert policy.decision_threshold() == pytest.approx(0.1)

    def test_integral_term_accumulates_across_steps(self):
        policy, task = policy_named("pid"), make_task()
        feed(policy, task, 10.0, 1.0)
        first, _ = policy.diagnose(task, [0.5, 0.5], now=0.0)
        second, _ = policy.diagnose(task, [0.5, 0.5], now=1.0)
        # Same error twice: the integral term makes the second step
        # larger than the first from the same starting vector.
        assert second[0] < first[0]


class TestChaosAwarePolicy:
    def test_quarantined_clone_pinned_to_zero(self):
        policy, task = policy_named("chaos-aware"), make_task()
        feed(policy, task, 1.0, 1.0)
        assert policy.diagnose(task, [0.5, 0.5], now=0.0) is None
        policy.on_quarantine("compute", 1, now=0.0)
        proposed, _costs = policy.diagnose(task, [0.5, 0.5], now=1.0)
        assert proposed == [1.0, 0.0]

    def test_all_clones_quarantined_proposes_nothing(self):
        policy, task = policy_named("chaos-aware"), make_task()
        feed(policy, task, 1.0, 1.0)
        policy.on_quarantine("compute", 0, now=0.0)
        policy.on_quarantine("compute", 1, now=0.0)
        assert policy.diagnose(task, [0.5, 0.5], now=1.0) is None

    def test_reintegrated_clone_ramps_back_gradually(self):
        policy, task = policy_named("chaos-aware"), make_task()
        feed(policy, task, 1.0, 1.0)
        policy.on_quarantine("compute", 1, now=0.0)
        policy.on_reintegration("compute", 1, now=1000.0)
        # Right after reintegration the clone's cost is inflated by
        # the full penalty (3.0): shaped weights (1, 1/3) -> (.75, .25).
        proposed, _costs = policy.diagnose(task, [1.0, 0.0], now=1000.0)
        assert proposed[0] == pytest.approx(0.75)
        assert proposed[1] == pytest.approx(0.25)
        # Many half-lives later the penalty has fully decayed: equal
        # costs mean no imbalance worth proposing.
        assert policy.diagnose(task, [0.5, 0.5], now=50_000.0) is None

    def test_decide_remasks_weights_quarantined_after_assessment(self):
        policy = policy_named("chaos-aware", cooldown_ms=0.0)
        policy.on_quarantine("compute", 1, now=0.0)
        state = types.SimpleNamespace(weights=[0.5, 0.5],
                                      last_adaptation=None)
        stale = ImbalanceProposal("compute", (0.5, 0.5), (0.2, 0.8),
                                  (1.0, 1.0), 0.0)
        verdict = policy.decide(state, stale, now=10.0)
        assert verdict.action == DEPLOY
        assert list(verdict.weights) == [1.0, 0.0]

    def test_decide_skips_when_nothing_remains_after_mask(self):
        policy = policy_named("chaos-aware", cooldown_ms=0.0)
        policy.on_quarantine("compute", 0, now=0.0)
        policy.on_quarantine("compute", 1, now=0.0)
        state = types.SimpleNamespace(weights=[0.5, 0.5],
                                      last_adaptation=None)
        stale = ImbalanceProposal("compute", (0.5, 0.5), (0.2, 0.8),
                                  (1.0, 1.0), 0.0)
        verdict = policy.decide(state, stale, now=10.0)
        assert verdict.action == SKIP
        assert verdict.reason == "quarantined"
