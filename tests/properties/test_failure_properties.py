"""Property-based tests for failure recovery.

Whatever the failure time — during the feed, the build, the probe, or
near completion — and whatever the adaptivity policy, results must be
exactly the static no-failure results.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import AdaptivityConfig, FaultToleranceConfig
from repro.services.ws import shannon_entropy
from repro.workloads import DemoGrid, DemoGridSpec, Q1, Q2, perturb_ws_cost

SPEC = DemoGridSpec(sequences_cardinality=90, interactions_cardinality=130,
                    sequence_length=16, spare_machines=1)
FT = FaultToleranceConfig(enabled=True, heartbeat_interval_ms=150.0,
                          failure_timeout_ms=500.0)

slow_settings = settings(max_examples=10, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])


def q1_reference(grid):
    relation = grid.gds_map["protein_sequences"].relation
    return sorted(shannon_entropy(s)
                  for s in relation.column_values("sequence"))


def q2_reference(grid):
    sequences = grid.gds_map["protein_sequences"].relation
    interactions = grid.gds_map["protein_interactions"].relation
    orfs = set(sequences.column_values("ORF"))
    return sorted(o2 for o1, o2 in (r.values for r in interactions)
                  if o1 in orfs)


@given(fail_at=st.floats(min_value=50.0, max_value=2500.0),
       victim=st.sampled_from(["compute-1", "compute-2"]))
@slow_settings
def test_q1_exactly_once_for_any_failure_time(fail_at, victim):
    grid = DemoGrid(SPEC, fault_tolerance=FT)
    grid.fail_machine_at(victim, at_ms=fail_at)
    result = grid.run(Q1, AdaptivityConfig.disabled())
    got = sorted(v[0] for v in result.values())
    expected = q1_reference(grid)
    assert len(got) == len(expected)
    assert all(math.isclose(a, b) for a, b in zip(got, expected))


@given(fail_at=st.floats(min_value=100.0, max_value=3000.0))
@slow_settings
def test_q2_exactly_once_for_any_failure_time(fail_at):
    grid = DemoGrid(SPEC, fault_tolerance=FT)
    grid.fail_machine_at("compute-2", at_ms=fail_at)
    result = grid.run(Q2, AdaptivityConfig.disabled())
    assert sorted(v[0] for v in result.values()) == q2_reference(grid)


@given(fail_at=st.floats(min_value=200.0, max_value=2000.0),
       response=st.sampled_from(["R1", "R2"]))
@slow_settings
def test_failure_composed_with_adaptation(fail_at, response):
    grid = DemoGrid(SPEC, fault_tolerance=FT)
    perturb_ws_cost(grid, 6.0)
    grid.fail_machine_at("compute-2", at_ms=fail_at)
    result = grid.run(Q1, AdaptivityConfig(response=response,
                                           decision_latency_ms=100.0))
    got = sorted(v[0] for v in result.values())
    expected = q1_reference(grid)
    assert len(got) == len(expected)
    assert all(math.isclose(a, b) for a, b in zip(got, expected))


@given(fail_at=st.floats(min_value=100.0, max_value=1500.0))
@slow_settings
def test_aggregates_invariant_under_failure(fail_at):
    grid = DemoGrid(SPEC, fault_tolerance=FT)
    grid.fail_machine_at("compute-2", at_ms=fail_at)
    result = grid.run("select count(*) from protein_sequences p",
                      AdaptivityConfig.disabled())
    assert result.values()[0][0] == SPEC.sequences_cardinality
