"""Property tests: the fleet-scale machinery is invisible at small scale.

The sharded scheduler state (incremental placement index, incremental
breaker set, heartbeat wheel, lazy machines) must not change a single
bit of today's small-grid behaviour:

* **Single implicit site degenerates.**  A grid that never names
  sites gets one flat machine tier whose order equals the legacy
  ``least_loaded_order`` sort (pinned in
  ``tests/sched/test_fleet_index.py``); the scheduler-equivalence
  suite then pins the whole timeline against the direct path.  Here
  we pin the remaining A/B axes end to end: heartbeat wheel vs the
  per-query legacy monitors, candidate budget vs the full order, and
  lazy vs eager machine construction.
* **Reproducible at fleet shape.**  Multi-site lazy grids driven
  through the scheduler replay bit-for-bit under the same seed.

The grid seed honours ``REPRO_TEST_SEED`` so CI exercises these
properties under more than one simulated world.
"""

import dataclasses
import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosConfig, MachineCrash, RetryPolicy
from repro.config import (
    AdaptivityConfig,
    FaultToleranceConfig,
    SchedulerConfig,
)
from repro.dqp.gdqs import QueryFailed
from repro.workloads import DemoGrid, DemoGridSpec, Q1, Q2

SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))
SPEC = DemoGridSpec(sequences_cardinality=120,
                    interactions_cardinality=180,
                    sequence_length=20, compute_machines=3,
                    seed=SEED)

RETRY = RetryPolicy(max_attempts=3, backoff_base_ms=100.0,
                    backoff_cap_ms=1000.0)

slow_settings = settings(max_examples=6, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])


def ft_config(wheel: bool) -> FaultToleranceConfig:
    return FaultToleranceConfig(enabled=True, heartbeat_interval_ms=200.0,
                                failure_timeout_ms=700.0, max_recoveries=2,
                                heartbeat_wheel=wheel)


def timeline_of(grid):
    return [(event.timestamp, event.category, event.source,
             event.description, event.data)
            for event in grid.context.tracer.events]


def run_single_crashy(seed, wheel):
    """One fault-tolerant query through a mid-run machine crash."""
    chaos = ChaosConfig.lossy(crashes=(
        MachineCrash("compute-2", at_ms=900.0),))
    grid = DemoGrid(dataclasses.replace(SPEC, seed=seed,
                                        spare_machines=1),
                    fault_tolerance=ft_config(wheel), chaos=chaos)
    result = grid.run(Q1, AdaptivityConfig.disabled())
    return grid, result


@given(seed=st.sampled_from([0, 1]))
@slow_settings
def test_wheel_identical_to_legacy_monitor_for_one_query(seed):
    # With one fault-tolerant query in flight the wheel ticks exactly
    # when the per-query monitor would: same timer events, same
    # recovery timeline, same result.
    wheel_grid, wheel_result = run_single_crashy(seed, wheel=True)
    legacy_grid, legacy_result = run_single_crashy(seed, wheel=False)
    assert (wheel_grid.context.env.events_scheduled
            == legacy_grid.context.env.events_scheduled)
    assert timeline_of(wheel_grid) == timeline_of(legacy_grid)
    assert wheel_result.values() == legacy_result.values()
    assert wheel_result.response_time_ms == legacy_result.response_time_ms


def run_sequential(seed, wheel):
    """Two fault-tolerant queries back to back (no overlap)."""
    grid = DemoGrid(dataclasses.replace(SPEC, seed=seed),
                    fault_tolerance=ft_config(wheel))
    first = grid.run(Q1, AdaptivityConfig.disabled())
    second = grid.run(Q2, AdaptivityConfig.disabled())
    return grid, first, second


@given(seed=st.sampled_from([0, 1]))
@slow_settings
def test_wheel_identical_for_sequential_queries(seed):
    # The wheel drains between queries and respawns for the second
    # one, reproducing the legacy one-process-per-query event count.
    wheel = run_sequential(seed, wheel=True)
    legacy = run_sequential(seed, wheel=False)
    assert (wheel[0].context.env.events_scheduled
            == legacy[0].context.env.events_scheduled)
    assert timeline_of(wheel[0]) == timeline_of(legacy[0])
    assert wheel[1].values() == legacy[1].values()
    assert wheel[2].values() == legacy[2].values()


def run_overlapping(seed):
    chaos = ChaosConfig.lossy(crashes=(
        MachineCrash("compute-2", at_ms=900.0),))
    grid = DemoGrid(dataclasses.replace(SPEC, seed=seed),
                    fault_tolerance=ft_config(True), chaos=chaos)
    scheduler = grid.scheduler(SchedulerConfig(max_concurrent=4,
                                               retry=RETRY))
    for query in (Q1, Q2, Q1, Q2):
        scheduler.submit(query, adaptivity=AdaptivityConfig.disabled(),
                         degree=2)
    outcomes = scheduler.drain()
    return grid, outcomes


@given(seed=st.sampled_from([0, 1]))
@slow_settings
def test_wheel_overlapping_queries_replay_bit_for_bit(seed):
    # Overlapping queries share the wheel's phase (a documented, still
    # deterministic divergence from per-query timers), so the promise
    # is exact reproducibility plus total terminal accounting.
    first_grid, first = run_overlapping(seed)
    second_grid, second = run_overlapping(seed)
    assert (first_grid.context.env.events_scheduled
            == second_grid.context.env.events_scheduled)
    assert timeline_of(first_grid) == timeline_of(second_grid)
    assert len(first) == len(second) == 4
    for left, right in zip(first, second):
        assert type(left) is type(right)
        if isinstance(left, QueryFailed):
            assert left == right
        else:
            assert sorted(left.values()) == sorted(right.values())


def run_budgeted(seed, candidates):
    grid = DemoGrid(dataclasses.replace(SPEC, seed=seed))
    scheduler = grid.scheduler(SchedulerConfig(
        max_concurrent=2, placement_candidates=candidates))
    for query in (Q1, Q2, Q1):
        scheduler.submit(query, adaptivity=AdaptivityConfig.disabled(),
                         degree=2)
    outcomes = scheduler.drain()
    return grid, outcomes


@given(seed=st.sampled_from([0, 1]),
       candidates=st.sampled_from([3, 5, 64]))
@slow_settings
def test_covering_candidate_budget_identical_to_full_order(seed,
                                                           candidates):
    # Any budget covering the compute pool emits the same candidate
    # prefix as the unbounded order, so the whole run is bit-identical.
    full_grid, full = run_budgeted(seed, None)
    capped_grid, capped = run_budgeted(seed, candidates)
    assert (full_grid.context.env.events_scheduled
            == capped_grid.context.env.events_scheduled)
    assert timeline_of(full_grid) == timeline_of(capped_grid)
    for left, right in zip(full, capped):
        assert sorted(left.values()) == sorted(right.values())


def run_fleet(seed):
    """A lazy 16-machine / 4-site grid under concurrent load."""
    spec = dataclasses.replace(SPEC, seed=seed, compute_machines=16,
                               sites=4, lazy_machines=True)
    grid = DemoGrid(spec)
    scheduler = grid.scheduler(SchedulerConfig(
        max_concurrent=4, placement_candidates=8))
    for query in (Q1, Q2, Q1, Q2, Q1):
        scheduler.submit(query, adaptivity=AdaptivityConfig.disabled(),
                         degree=2)
    outcomes = scheduler.drain()
    return grid, scheduler, outcomes


@given(seed=st.sampled_from([0, 1]))
@slow_settings
def test_lazy_multisite_fleet_replays_bit_for_bit(seed):
    first_grid, first_sched, first = run_fleet(seed)
    second_grid, second_sched, second = run_fleet(seed)
    assert (first_grid.context.env.events_scheduled
            == second_grid.context.env.events_scheduled)
    assert timeline_of(first_grid) == timeline_of(second_grid)
    assert len(first) == len(second) == 5
    for left, right in zip(first, second):
        assert sorted(left.values()) == sorted(right.values())
    materialized = {
        name for name in first_grid.compute_machines
        if first_grid.context.registry.is_materialized(name)}
    # Placement spread across sites but never touched the whole fleet.
    assert materialized
    assert materialized < set(first_grid.compute_machines)
    assert first_sched.statistics().completed == 5
    assert second_sched.statistics().completed == 5
