"""Property tests: metric recording is invisible to the simulation.

The metrics layer promises that every instrument update is a plain
attribute mutation — it may read the clock, but never schedules a DES
event, charges CPU work, or draws randomness.  Two runs of the same
query on the same spec, one with the registry enabled and one with it
disabled, must therefore be bit-identical: same total event count,
same full trace (timestamps, categories, sources, descriptions and
payloads), same result rows.  Only the telemetry output may differ.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import AdaptivityConfig
from repro.workloads import (
    DemoGrid,
    DemoGridSpec,
    Q1,
    Q2,
    perturb_join_sleep,
    perturb_ws_cost,
)

SPEC = DemoGridSpec(sequences_cardinality=150, interactions_cardinality=220,
                    sequence_length=24,
                    seed=int(os.environ.get("REPRO_TEST_SEED", "0")))

slow_settings = settings(max_examples=8, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])

policies = st.builds(
    AdaptivityConfig,
    assessment=st.sampled_from(["A1", "A2"]),
    response=st.sampled_from(["R1", "R2"]),
    decision_latency_ms=st.sampled_from([50.0, 300.0]),
)


def run_once(query_text, adaptivity, metrics_enabled, perturb=None):
    grid = DemoGrid(SPEC, metrics_enabled=metrics_enabled)
    if perturb is not None:
        perturb(grid)
    result = grid.run(query_text, adaptivity)
    timeline = [(event.timestamp, event.category, event.source,
                 event.description, event.data)
                for event in grid.context.tracer.events]
    return grid, result, timeline


@given(config=policies, factor=st.sampled_from([5.0, 10.0, 25.0]))
@slow_settings
def test_q1_timeline_bit_identical_with_and_without_metrics(config, factor):
    def perturb(g):
        perturb_ws_cost(g, factor)
    on_grid, on_result, on_timeline = run_once(Q1, config, True, perturb)
    off_grid, off_result, off_timeline = run_once(Q1, config, False, perturb)
    assert (on_grid.context.env.events_scheduled
            == off_grid.context.env.events_scheduled)
    assert on_timeline == off_timeline
    assert sorted(on_result.values()) == sorted(off_result.values())
    # The enabled run did measure: utilisation gauges exist for every
    # machine, and the detector counted raw monitoring events.
    metrics = on_grid.context.metrics
    for name in on_grid.compute_machines:
        gauge = metrics.find("gauge", "machine_cpu_utilisation",
                             machine=name)
        assert gauge is not None
        assert 0.0 < gauge.value <= 1.0
    raw = metrics.find("counter", "detector_raw_events",
                       query=on_result.query_id, kind="m1")
    assert raw is not None and raw.value > 0
    # The disabled run recorded nothing at all.
    assert off_grid.context.metrics.snapshot() == []


@given(config=policies, sleep_ms=st.sampled_from([6.0, 30.0]))
@slow_settings
def test_q2_timeline_bit_identical_with_and_without_metrics(config,
                                                            sleep_ms):
    def perturb(g):
        perturb_join_sleep(g, sleep_ms)
    on_grid, on_result, on_timeline = run_once(Q2, config, True, perturb)
    off_grid, off_result, off_timeline = run_once(Q2, config, False, perturb)
    assert (on_grid.context.env.events_scheduled
            == off_grid.context.env.events_scheduled)
    assert on_timeline == off_timeline
    assert sorted(on_result.values()) == sorted(off_result.values())


@given(response=st.sampled_from(["R1", "R2"]))
@slow_settings
def test_adaptive_run_produces_a_report(response):
    config = AdaptivityConfig(response=response)
    grid, result, _timeline = run_once(
        Q1, config, True, perturb=lambda g: perturb_ws_cost(g, 10.0))
    reports = grid.context.metrics.reports
    assert len(reports) == 1
    report = reports[0]
    assert report.query_id == result.query_id
    assert report.response_time_ms == result.response_time_ms
    assert report.raw_monitoring_events > 0
    assert report.cost_notifications > 0
    assert sum(report.tuples_per_consumer) == len(result.rows)
    assert report.detection_latency_ms["count"] >= report.proposals_sent
