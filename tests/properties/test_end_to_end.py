"""Property-based tests over full distributed runs.

The central invariant of the whole system: *whatever the
perturbations, policies and thresholds, an adaptive run returns
exactly the rows a static run returns* — adaptation changes when and
where tuples are processed, never the result.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import AdaptivityConfig
from repro.services.ws import shannon_entropy
from repro.workloads import (
    DemoGrid,
    DemoGridSpec,
    Q1,
    Q2,
    perturb_join_sleep,
    perturb_ws_cost,
    perturb_ws_cost_varying,
)

TINY = DemoGridSpec(sequences_cardinality=80, interactions_cardinality=120,
                    sequence_length=16)

slow_settings = settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow,
                           HealthCheck.function_scoped_fixture])

adaptivity_configs = st.builds(
    AdaptivityConfig,
    response=st.sampled_from(["R1", "R2"]),
    assessment=st.sampled_from(["A1", "A2"]),
    m1_interval=st.sampled_from([5, 10, 20]),
    min_window_events=st.integers(min_value=1, max_value=3),
    thres_a=st.sampled_from([0.05, 0.2, 0.5]),
    decision_latency_ms=st.sampled_from([0.0, 50.0, 500.0]),
    cooldown_ms=st.sampled_from([0.0, 200.0]),
    progress_cutoff=st.sampled_from([0.5, 0.92]),
)


def q1_reference(grid):
    relation = grid.gds_map["protein_sequences"].relation
    return sorted(shannon_entropy(s)
                  for s in relation.column_values("sequence"))


def q2_reference(grid):
    sequences = grid.gds_map["protein_sequences"].relation
    interactions = grid.gds_map["protein_interactions"].relation
    orfs = set(sequences.column_values("ORF"))
    return sorted(o2 for o1, o2 in (r.values for r in interactions)
                  if o1 in orfs)


@given(config=adaptivity_configs,
       factor=st.sampled_from([1.0, 5.0, 15.0, 40.0]))
@slow_settings
def test_q1_result_invariant_under_any_policy(config, factor):
    grid = DemoGrid(TINY)
    if factor > 1.0:
        perturb_ws_cost(grid, factor)
    result = grid.run(Q1, config)
    assert sorted(v[0] for v in result.values()) == pytest.approx(
        q1_reference(grid))


@given(config=adaptivity_configs,
       sleep_ms=st.sampled_from([0.0, 5.0, 20.0, 60.0]))
@slow_settings
def test_q2_result_invariant_under_any_policy(config, sleep_ms):
    grid = DemoGrid(TINY)
    if sleep_ms > 0:
        perturb_join_sleep(grid, sleep_ms)
    result = grid.run(Q2, config)
    assert sorted(v[0] for v in result.values()) == q2_reference(grid)


@given(low=st.floats(min_value=1.0, max_value=10.0),
       spread=st.floats(min_value=0.0, max_value=30.0))
@slow_settings
def test_q1_under_stochastic_perturbation(low, spread):
    grid = DemoGrid(TINY)
    perturb_ws_cost_varying(grid, low, low + spread)
    result = grid.run(Q1, AdaptivityConfig(response="R1",
                                           decision_latency_ms=50.0))
    assert sorted(v[0] for v in result.values()) == pytest.approx(
        q1_reference(grid))


@given(seed=st.integers(min_value=0, max_value=2**16))
@slow_settings
def test_simulation_is_deterministic_per_seed(seed):
    spec = DemoGridSpec(sequences_cardinality=60,
                        interactions_cardinality=80,
                        sequence_length=16, seed=seed)

    def one_run():
        grid = DemoGrid(spec)
        perturb_ws_cost(grid, 8.0)
        return grid.run(Q1, AdaptivityConfig(response="R1",
                                             decision_latency_ms=50.0))

    first, second = one_run(), one_run()
    assert first.response_time_ms == second.response_time_ms
    assert first.values() == second.values()
    assert (first.stats.tuples_per_consumer
            == second.stats.tuples_per_consumer)


@given(degree=st.integers(min_value=1, max_value=4),
       factor=st.sampled_from([1.0, 10.0]))
@slow_settings
def test_any_partitioning_degree_is_correct(degree, factor):
    spec = DemoGridSpec(sequences_cardinality=60,
                        interactions_cardinality=80,
                        sequence_length=16, compute_machines=4)
    grid = DemoGrid(spec)
    if factor > 1.0:
        perturb_ws_cost(grid, factor)
    result = grid.run(Q1, AdaptivityConfig(decision_latency_ms=50.0),
                      degree=degree)
    assert len(result.rows) == 60
    used = sum(1 for c in result.stats.tuples_per_consumer if c > 0)
    assert used == degree
