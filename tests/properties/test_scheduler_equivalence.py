"""Property tests: the scheduler is invisible at concurrency one.

Acceptance property of the multi-query subsystem: for a single query
submitted through a :class:`~repro.sched.QueryScheduler` configured
with ``max_concurrent=1``, the run must be indistinguishable from the
pre-scheduler ``DemoGrid.run`` path — identical result rows,
identical adaptation decisions (in fact the identical full adaptivity
timeline, timestamps included), and an identical number of scheduled
simulator events — across every assessment x response policy
combination.  The scheduler may add *trace* events (category
``scheduler``) but zero *simulator* events.

The grid seed honours ``REPRO_TEST_SEED`` so CI exercises the same
properties under more than one simulated world.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import AdaptivityConfig, SchedulerConfig
from repro.workloads import (
    DemoGrid,
    DemoGridSpec,
    Q1,
    Q2,
    perturb_join_sleep,
    perturb_ws_cost,
)

SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))
SPEC = DemoGridSpec(sequences_cardinality=150, interactions_cardinality=220,
                    sequence_length=24, seed=SEED)

slow_settings = settings(max_examples=8, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])

policies = st.builds(
    AdaptivityConfig,
    assessment=st.sampled_from(["A1", "A2"]),
    response=st.sampled_from(["R1", "R2"]),
    decision_latency_ms=st.sampled_from([100.0, 300.0]),
)

scheduler_configs = st.builds(
    SchedulerConfig,
    max_concurrent=st.just(1),
    max_queued=st.sampled_from([0, 4]),
    fair_share=st.booleans(),
    load_aware_placement=st.booleans(),
)


def non_scheduler_timeline(grid):
    return [(event.timestamp, event.category, event.source,
             event.description, event.data)
            for event in grid.context.tracer.events
            if event.category != "scheduler"]


def run_direct(query_text, adaptivity, perturb):
    grid = DemoGrid(SPEC)
    perturb(grid)
    result = grid.run(query_text, adaptivity)
    return grid, result


def run_scheduled(query_text, adaptivity, perturb, config):
    grid = DemoGrid(SPEC)
    perturb(grid)
    scheduler = grid.scheduler(config)
    session = scheduler.submit(query_text, adaptivity=adaptivity)
    results = scheduler.drain()
    assert session.queue_wait_ms == 0.0
    return grid, results[0]


@given(config=policies, sched=scheduler_configs,
       factor=st.sampled_from([5.0, 10.0, 25.0]))
@slow_settings
def test_q1_single_query_identical_through_scheduler(config, sched,
                                                     factor):
    def perturb(grid):
        perturb_ws_cost(grid, factor)
    direct_grid, direct = run_direct(Q1, config, perturb)
    sched_grid, scheduled = run_scheduled(Q1, config, perturb, sched)
    assert scheduled.values() == direct.values()
    assert scheduled.response_time_ms == direct.response_time_ms
    assert (scheduled.stats.adaptations_accepted
            == direct.stats.adaptations_accepted)
    assert (non_scheduler_timeline(sched_grid)
            == non_scheduler_timeline(direct_grid))
    assert (sched_grid.context.env.events_scheduled
            == direct_grid.context.env.events_scheduled)


@given(config=policies, sleep_ms=st.sampled_from([6.0, 30.0]))
@slow_settings
def test_q2_single_query_identical_through_scheduler(config, sleep_ms):
    def perturb(grid):
        perturb_join_sleep(grid, sleep_ms)
    direct_grid, direct = run_direct(Q2, config, perturb)
    sched_grid, scheduled = run_scheduled(Q2, config, perturb,
                                          SchedulerConfig(max_concurrent=1))
    assert scheduled.values() == direct.values()
    assert (non_scheduler_timeline(sched_grid)
            == non_scheduler_timeline(direct_grid))
    assert (sched_grid.context.env.events_scheduled
            == direct_grid.context.env.events_scheduled)


@given(config=policies)
@slow_settings
def test_unperturbed_run_identical_through_scheduler(config):
    direct_grid, direct = run_direct(Q1, config, lambda _g: None)
    sched_grid, scheduled = run_scheduled(
        Q1, config, lambda _g: None, SchedulerConfig(max_concurrent=1))
    assert scheduled.values() == direct.values()
    assert (sched_grid.context.env.events_scheduled
            == direct_grid.context.env.events_scheduled)
