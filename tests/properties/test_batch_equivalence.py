"""Property tests: morsel-driven execution is semantically invisible.

Running with ``batch_size=32`` (the default) must produce exactly the
rows that ``batch_size=1`` (the per-tuple seed pipeline) produces, and
the same adaptation story: batching coarsens *event granularity*, not
simulated costs or adaptivity decisions.

Two levels of timeline equality are asserted:

* Q1 (uniform per-tuple operator costs): the adaptation decisions
  (response-level timeline) are identical for every policy and
  latency; under clearly super-threshold perturbations (factor >= 10)
  the full trace — every monitoring, assessment and response event —
  is identical too.  (At marginal perturbations the one-morsel shift
  in M1 arrival can move a single notification across a window edge.)
* Q2 (join output arrives in bursts, so per-tuple costs are inherently
  non-uniform): batch-averaged M1 costs smooth differently, which may
  shift raw notification counts; the *effective decisions* — response
  events that acted — still match.  (A final marginal proposal can
  land just before or just after the finish line depending on
  granularity, producing an explicit "skipped near completion" no-op
  in one run only; those are excluded from comparison.)
"""

import math
import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import AdaptivityConfig, EngineConfig, FaultToleranceConfig
from repro.services.ws import shannon_entropy
from repro.workloads import (
    DemoGrid,
    DemoGridSpec,
    Q1,
    Q2,
    perturb_join_sleep,
    perturb_ws_cost,
    perturb_ws_cost_varying,
)

SPEC = DemoGridSpec(sequences_cardinality=150, interactions_cardinality=220,
                    sequence_length=24, spare_machines=1,
                    seed=int(os.environ.get("REPRO_TEST_SEED", "0")))
FT = FaultToleranceConfig(enabled=True, heartbeat_interval_ms=150.0,
                          failure_timeout_ms=500.0)

slow_settings = settings(max_examples=8, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])

policies = st.builds(
    AdaptivityConfig,
    assessment=st.sampled_from(["A1", "A2"]),
    response=st.sampled_from(["R1", "R2"]),
    decision_latency_ms=st.sampled_from([50.0, 100.0, 300.0]),
)



def run_once(query_text, batch_size, adaptivity, perturb=None,
             fail_at=None, fault_tolerance=None):
    grid = DemoGrid(SPEC, engine_config=EngineConfig(batch_size=batch_size),
                    fault_tolerance=fault_tolerance)
    if perturb is not None:
        perturb(grid)
    if fail_at is not None:
        grid.fail_machine_at("compute-2", at_ms=fail_at)
    result = grid.run(query_text, adaptivity)
    timeline = [(event.category, event.description)
                for event in grid.context.tracer.events]
    return grid, result, timeline


def response_events(timeline):
    """Response events that acted — the decisions with consequences.

    "adaptation skipped near completion" is the responder explicitly
    declining to act; whether a final marginal proposal arrives just
    before or just after the finish line can differ by one morsel's
    worth of simulated time without changing any behaviour, so the
    no-op is excluded from decision-timeline comparison.
    """
    return [entry for entry in timeline
            if entry[0] == "response"
            and entry[1] != "adaptation skipped near completion"]


def q1_reference(grid):
    relation = grid.gds_map["protein_sequences"].relation
    return sorted(shannon_entropy(s)
                  for s in relation.column_values("sequence"))


@given(config=policies, factor=st.sampled_from([5.0, 10.0, 25.0]))
@slow_settings
def test_q1_rows_and_timeline_identical(config, factor):
    _, seed_result, seed_timeline = run_once(
        Q1, 1, config, perturb=lambda g: perturb_ws_cost(g, factor))
    _, batch_result, batch_timeline = run_once(
        Q1, 32, config, perturb=lambda g: perturb_ws_cost(g, factor))
    # Rows are computed identically, so equality is exact (no approx).
    assert sorted(batch_result.values()) == sorted(seed_result.values())
    assert response_events(batch_timeline) == response_events(seed_timeline)
    if factor >= 10.0:
        assert batch_timeline == seed_timeline


@given(config=policies, sleep_ms=st.sampled_from([6.0, 12.0, 30.0]))
@slow_settings
def test_q2_rows_and_decision_timeline_identical(config, sleep_ms):
    _, seed_result, seed_timeline = run_once(
        Q2, 1, config, perturb=lambda g: perturb_join_sleep(g, sleep_ms))
    _, batch_result, batch_timeline = run_once(
        Q2, 32, config, perturb=lambda g: perturb_join_sleep(g, sleep_ms))
    assert sorted(batch_result.values()) == sorted(seed_result.values())
    assert response_events(batch_timeline) == response_events(seed_timeline)
    # Monitoring fires in both runs (the detector is not starved by
    # batched M1 submission).
    assert any(c == "monitoring" for c, _d in seed_timeline)
    assert any(c == "monitoring" for c, _d in batch_timeline)


@given(low=st.floats(min_value=2.0, max_value=8.0),
       spread=st.floats(min_value=1.0, max_value=25.0),
       response=st.sampled_from(["R1", "R2"]))
@slow_settings
def test_q1_rows_identical_under_stochastic_perturbation(low, spread,
                                                         response):
    # Random per-tuple cost factors: adaptation decisions may diverge
    # between granularities (measured windows differ), but exactly-once
    # delivery must hold at both, so the result rows cannot.
    config = AdaptivityConfig(response=response, decision_latency_ms=50.0)

    def perturb(g):
        perturb_ws_cost_varying(g, low, low + spread)
    grid, seed_result, _tl = run_once(Q1, 1, config, perturb=perturb)
    _, batch_result, _tl = run_once(Q1, 32, config, perturb=perturb)
    expected = q1_reference(grid)
    for result in (seed_result, batch_result):
        got = sorted(v[0] for v in result.values())
        assert len(got) == len(expected)
        assert all(math.isclose(a, b) for a, b in zip(got, expected))


@given(fail_at=st.floats(min_value=100.0, max_value=2500.0),
       response=st.sampled_from(["R1", "R2"]))
@slow_settings
def test_mid_run_failure_recovers_identically(fail_at, response):
    config = AdaptivityConfig(response=response, decision_latency_ms=100.0)

    def perturb(g):
        perturb_ws_cost(g, 6.0)
    grid, seed_result, seed_timeline = run_once(
        Q1, 1, config, perturb=perturb, fail_at=fail_at,
        fault_tolerance=FT)
    _, batch_result, batch_timeline = run_once(
        Q1, 32, config, perturb=perturb, fail_at=fail_at,
        fault_tolerance=FT)
    expected = q1_reference(grid)
    for result in (seed_result, batch_result):
        got = sorted(v[0] for v in result.values())
        assert len(got) == len(expected)
        assert all(math.isclose(a, b) for a, b in zip(got, expected))
    # Both granularities observe the failure; when it strikes while
    # evaluators are clearly mid-run, both recover.  (A failure landing
    # at the very end may need no recovery — and the exact completion
    # instant can differ by one morsel between granularities.)
    for timeline in (seed_timeline, batch_timeline):
        descriptions = [d for c, d in timeline if c == "failure"]
        assert "machine failed" in descriptions
        if fail_at <= 800.0:
            assert "evaluators recovered" in descriptions


@given(fail_at=st.floats(min_value=200.0, max_value=3000.0))
@slow_settings
def test_q2_failure_exactly_once_at_default_batch_size(fail_at):
    grid, _result, _tl = run_once(Q2, 32, AdaptivityConfig.disabled(),
                                  fail_at=fail_at, fault_tolerance=FT)
    sequences = grid.gds_map["protein_sequences"].relation
    interactions = grid.gds_map["protein_interactions"].relation
    orfs = set(sequences.column_values("ORF"))
    expected = sorted(o2 for o1, o2 in (r.values for r in interactions)
                      if o1 in orfs)
    assert sorted(v[0] for v in _result.values()) == expected
