"""Property tests: the kernel fast path is bit-invisible.

``EngineConfig.kernel_fast_path`` enables three host-side disciplines
in the DES kernel — resume-event pooling, inline resume of
already-processed targets, and same-timestamp coalescing of normal
priority events.  All three are pure allocation/dispatch
optimisations: with the fast path on, the rows, the full traced
timeline, the simulated response time and the ``events_scheduled``
counter must be *bit-identical* to the legacy kernel, for every query,
policy and perturbation.

This is a stronger contract than batch equivalence (which only
guarantees decision-level equality): the fast path never changes the
order in which events fire, so every trace entry matches exactly.
"""

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import AdaptivityConfig, EngineConfig
from repro.workloads import (
    DemoGrid,
    DemoGridSpec,
    Q1,
    Q2,
    perturb_join_sleep,
    perturb_ws_cost,
    perturb_ws_cost_varying,
)

SPEC = DemoGridSpec(sequences_cardinality=150, interactions_cardinality=220,
                    sequence_length=24,
                    seed=int(os.environ.get("REPRO_TEST_SEED", "0")))

slow_settings = settings(max_examples=8, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])

policies = st.sampled_from([
    AdaptivityConfig.disabled(),
    AdaptivityConfig(assessment="A1", response="R2"),
    AdaptivityConfig(assessment="A1", response="R1"),
    AdaptivityConfig(assessment="A2", response="R2",
                     decision_latency_ms=100.0),
])


def run_once(query_text, fast_path, adaptivity, perturb=None,
             batch_size=8):
    grid = DemoGrid(SPEC, engine_config=EngineConfig(
        batch_size=batch_size, kernel_fast_path=fast_path))
    if perturb is not None:
        perturb(grid)
    result = grid.run(query_text, adaptivity)
    timeline = [(event.timestamp, event.category, event.source,
                 event.description)
                for event in grid.context.tracer.events]
    return {
        "rows": [repr(row) for row in result.rows],
        "response_time_ms": result.response_time_ms,
        "events_scheduled": grid.context.env.events_scheduled,
        "timeline": timeline,
    }


def assert_bit_identical(fast, legacy):
    assert fast["rows"] == legacy["rows"]
    assert fast["response_time_ms"] == legacy["response_time_ms"]
    assert fast["events_scheduled"] == legacy["events_scheduled"]
    assert fast["timeline"] == legacy["timeline"]


@given(config=policies, factor=st.sampled_from([1.0, 5.0, 10.0, 25.0]))
@slow_settings
def test_q1_fast_path_bit_identical(config, factor):
    def perturb(g):
        perturb_ws_cost(g, factor)
    fast = run_once(Q1, True, config, perturb=perturb)
    legacy = run_once(Q1, False, config, perturb=perturb)
    assert_bit_identical(fast, legacy)


@given(config=policies, sleep_ms=st.sampled_from([0.0, 6.0, 30.0]))
@slow_settings
def test_q2_fast_path_bit_identical(config, sleep_ms):
    def perturb(g):
        if sleep_ms:
            perturb_join_sleep(g, sleep_ms)
    fast = run_once(Q2, True, config, perturb=perturb)
    legacy = run_once(Q2, False, config, perturb=perturb)
    assert_bit_identical(fast, legacy)


@given(low=st.floats(min_value=2.0, max_value=8.0),
       spread=st.floats(min_value=1.0, max_value=25.0),
       batch_size=st.sampled_from([1, 32]))
@slow_settings
def test_q1_fast_path_bit_identical_under_stochastic_perturbation(
        low, spread, batch_size):
    # Per-tuple random cost factors draw from the grid's seeded RNG;
    # the fast path must not perturb the draw order either.
    config = AdaptivityConfig(response="R2", decision_latency_ms=50.0)

    def perturb(g):
        perturb_ws_cost_varying(g, low, low + spread)
    fast = run_once(Q1, True, config, perturb=perturb,
                    batch_size=batch_size)
    legacy = run_once(Q1, False, config, perturb=perturb,
                      batch_size=batch_size)
    assert_bit_identical(fast, legacy)
