"""Property tests: the columnar data plane is bit-invisible.

``EngineConfig.columnar`` switches the whole data plane — scans,
filters, projections, exchange routing, hash-join probe matching,
wire-block reassembly — from row-at-a-time ``Row`` lists to parallel
per-column value lists with lazy row materialization.  Every
vectorized kernel charges exactly the CPU work the row loop charged
and produces the same rows in the same order, so with the plane on or
off the rows, the full traced timeline, the simulated response time
and the ``events_scheduled`` counter must be *bit-identical* — for
every query, batch size, policy and perturbation.

At ``batch_size=1`` every ``next_batch`` degrades to the per-tuple
``next`` path regardless of the flag, which is the degenerate corner
pinned here alongside the hot 32/128 morsel sizes.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import AdaptivityConfig, EngineConfig
from repro.workloads import (
    DemoGrid,
    DemoGridSpec,
    Q1,
    Q2,
    perturb_join_sleep,
    perturb_ws_cost,
    perturb_ws_cost_varying,
)

SPEC = DemoGridSpec(sequences_cardinality=150, interactions_cardinality=220,
                    sequence_length=24,
                    seed=int(os.environ.get("REPRO_TEST_SEED", "0")))

slow_settings = settings(max_examples=6, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])

policies = st.sampled_from([
    AdaptivityConfig.disabled(),
    AdaptivityConfig(assessment="A1", response="R2"),
    AdaptivityConfig(assessment="A2", response="R2",
                     decision_latency_ms=100.0),
])

BATCH_SIZES = (1, 32, 128)


def run_once(query_text, columnar, adaptivity, perturb=None,
             batch_size=32):
    grid = DemoGrid(SPEC, engine_config=EngineConfig(
        batch_size=batch_size, columnar=columnar))
    if perturb is not None:
        perturb(grid)
    result = grid.run(query_text, adaptivity)
    timeline = [(event.timestamp, event.category, event.source,
                 event.description)
                for event in grid.context.tracer.events]
    return {
        "rows": [repr(row) for row in result.rows],
        "response_time_ms": result.response_time_ms,
        "events_scheduled": grid.context.env.events_scheduled,
        "timeline": timeline,
    }


def assert_bit_identical(columnar, legacy):
    assert columnar["rows"] == legacy["rows"]
    assert columnar["response_time_ms"] == legacy["response_time_ms"]
    assert columnar["events_scheduled"] == legacy["events_scheduled"]
    assert columnar["timeline"] == legacy["timeline"]


@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("query_text", [Q1, Q2], ids=["Q1", "Q2"])
def test_columnar_bit_identical_static(query_text, batch_size):
    """Unperturbed static runs across the full batch-size axis."""
    columnar = run_once(query_text, True, AdaptivityConfig.disabled(),
                        batch_size=batch_size)
    legacy = run_once(query_text, False, AdaptivityConfig.disabled(),
                      batch_size=batch_size)
    assert_bit_identical(columnar, legacy)


@given(config=policies, factor=st.sampled_from([1.0, 10.0, 25.0]),
       batch_size=st.sampled_from(BATCH_SIZES))
@slow_settings
def test_q1_columnar_bit_identical(config, factor, batch_size):
    def perturb(g):
        perturb_ws_cost(g, factor)
    columnar = run_once(Q1, True, config, perturb=perturb,
                        batch_size=batch_size)
    legacy = run_once(Q1, False, config, perturb=perturb,
                      batch_size=batch_size)
    assert_bit_identical(columnar, legacy)


@given(config=policies, sleep_ms=st.sampled_from([0.0, 12.0]),
       batch_size=st.sampled_from(BATCH_SIZES))
@slow_settings
def test_q2_columnar_bit_identical(config, sleep_ms, batch_size):
    def perturb(g):
        if sleep_ms:
            perturb_join_sleep(g, sleep_ms)
    columnar = run_once(Q2, True, config, perturb=perturb,
                        batch_size=batch_size)
    legacy = run_once(Q2, False, config, perturb=perturb,
                      batch_size=batch_size)
    assert_bit_identical(columnar, legacy)


@given(low=st.floats(min_value=2.0, max_value=8.0),
       spread=st.floats(min_value=1.0, max_value=25.0))
@slow_settings
def test_q1_columnar_bit_identical_under_stochastic_perturbation(
        low, spread):
    # Per-tuple random cost factors draw from the grid's seeded RNG;
    # the deterministic-perturbation fast path must leave stochastic
    # schedules (and their draw order) completely alone.
    config = AdaptivityConfig(response="R2", decision_latency_ms=50.0)

    def perturb(g):
        perturb_ws_cost_varying(g, low, low + spread)
    columnar = run_once(Q1, True, config, perturb=perturb)
    legacy = run_once(Q1, False, config, perturb=perturb)
    assert_bit_identical(columnar, legacy)
