"""The paper policies are bit-identical to the pre-refactor controller.

The policy seam moved the Diagnoser's assessment arithmetic and the
Responder's decision gates behind :class:`AdaptationPolicy`.  The
refactor's contract is that the four registered ``paper-*`` instances
*are* the old controller — not approximately, but bit for bit.  The
fingerprints below were captured on the commit immediately before the
seam was introduced, for both CI grid seeds, and cover:

* the result rows (content hash),
* the full adaptivity trace timeline (timestamp/category/source/
  description of every event — any reordered or re-timed control
  decision changes this),
* the simulated response time,
* the total number of DES events scheduled (any extra or missing
  simulation step changes this), and
* the number of adaptations deployed.

A policy refactor that perturbs any control decision, however subtly,
fails loudly here.  Selection goes through ``policy="paper-XY"`` — the
new registry path — so name-keyed creation itself is part of what is
pinned.
"""

import hashlib
import os

import pytest

from repro.config import AdaptivityConfig
from repro.workloads import (
    DemoGrid,
    DemoGridSpec,
    Q1,
    Q2,
    perturb_join_sleep,
    perturb_ws_cost,
)

SEED = int(os.environ.get("REPRO_TEST_SEED", "0"))

#: scenario -> (query, perturbation applier).
SCENARIOS = {
    "Q1-ws10": (Q1, lambda grid: perturb_ws_cost(grid, factor=10.0)),
    "Q2-sleep20": (Q2,
                   lambda grid: perturb_join_sleep(grid, sleep_ms=20.0)),
}

#: "<scenario>|<AxRy>|seed<seed>" -> (rows sha, trace sha, response_ms,
#: DES events scheduled, adaptations accepted); captured pre-refactor.
GOLDEN = {
    "Q1-ws10|A1R1|seed0": ("260d2403bcd62319", "9555e62173ad650c",
                           5948.63551999999, 5250, 1),
    "Q1-ws10|A1R1|seed1": ("afa4d010a63af86b", "9555e62173ad650c",
                           5948.63551999999, 5250, 1),
    "Q1-ws10|A1R2|seed0": ("63d5b0518482a56f", "53c5c363f7e4aaaa",
                           14868.38032, 4711, 1),
    "Q1-ws10|A1R2|seed1": ("d3d46eed8a15f59b", "53c5c363f7e4aaaa",
                           14868.38032, 4711, 1),
    "Q1-ws10|A2R1|seed0": ("260d2403bcd62319", "5817e1115e45d012",
                           5935.240319999991, 5246, 1),
    "Q1-ws10|A2R1|seed1": ("afa4d010a63af86b", "5817e1115e45d012",
                           5935.240319999991, 5246, 1),
    "Q1-ws10|A2R2|seed0": ("63d5b0518482a56f", "53c5c363f7e4aaaa",
                           14868.38032, 4711, 1),
    "Q1-ws10|A2R2|seed1": ("d3d46eed8a15f59b", "53c5c363f7e4aaaa",
                           14868.38032, 4711, 1),
    # The Q2 fingerprints were recaptured when the hash join's build
    # channel became a state channel (the producer retains routed rows
    # and copy-replays moved buckets on *every* bucket-map change, not
    # only retrospective ones): R1 runs deliver the same row multiset
    # in a different arrival order, and every adaptive run schedules
    # the extra retention/replay events.  The R2 response times are
    # bit-identical to the previous capture — the state replay is off
    # the critical path — and the result multiset was verified against
    # the static plan before recapturing.
    "Q2-sleep20|A1R1|seed0": ("d42954e95661552e", "07c7f3e25ab74981",
                              10349.951840000007, 10051, 1),
    "Q2-sleep20|A1R1|seed1": ("b43ead367341c463", "6c12fece9e8ae643",
                              10327.11816, 9961, 1),
    "Q2-sleep20|A1R2|seed0": ("08752dd6285e1250", "e3510693aa45c0ec",
                              15005.757439999994, 9284, 1),
    "Q2-sleep20|A1R2|seed1": ("9c9bae50fd80fa62", "2009cd22b977053e",
                              15325.052159999994, 9210, 1),
    "Q2-sleep20|A2R1|seed0": ("cc7f60e30985a8fa", "2bc8ca32cf48a179",
                              10902.454240000001, 9851, 1),
    "Q2-sleep20|A2R1|seed1": ("ec0834e7b784cec8", "eb37719660c54855",
                              10560.734559999999, 9876, 1),
    "Q2-sleep20|A2R2|seed0": ("08752dd6285e1250", "bc4a3da2cb0187b9",
                              15005.757439999994, 9158, 1),
    "Q2-sleep20|A2R2|seed1": ("9c9bae50fd80fa62", "fd5aca34782d4721",
                              15325.052159999994, 9114, 1),
}


def fingerprint(scenario: str, policy_name: str):
    query, perturb = SCENARIOS[scenario]
    grid = DemoGrid(DemoGridSpec(sequences_cardinality=600,
                                 interactions_cardinality=900,
                                 seed=SEED))
    perturb(grid)
    result = grid.run(query, AdaptivityConfig(policy=policy_name))
    timeline = [(event.timestamp, event.category, event.source,
                 event.description)
                for event in grid.context.tracer.events]
    rows_sha = hashlib.sha256(
        "\n".join(repr(row) for row in result.rows)
        .encode()).hexdigest()[:16]
    trace_sha = hashlib.sha256(repr(timeline).encode()).hexdigest()[:16]
    return (rows_sha, trace_sha, result.response_time_ms,
            grid.context.env.events_scheduled,
            result.stats.adaptations_accepted)


@pytest.mark.parametrize("combo", ["A1R1", "A1R2", "A2R1", "A2R2"])
@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_paper_policy_bit_identical_to_pre_refactor(scenario, combo):
    key = f"{scenario}|{combo}|seed{SEED}"
    if key not in GOLDEN:
        pytest.skip(f"no golden captured for seed {SEED}")
    assert fingerprint(scenario, f"paper-{combo}") == GOLDEN[key]


def test_axes_config_and_named_policy_share_one_controller():
    """Legacy axes spelling resolves to the very same policy."""
    from repro.policy import create_policy

    legacy = AdaptivityConfig(assessment="A2", response="R1")
    named = AdaptivityConfig(policy="paper-A2R1")
    assert legacy.policy_name == named.policy_name == "paper-A2R1"
    assert named.assessment == "A2" and named.response == "R1"
    assert type(create_policy(legacy)) is type(create_policy(named))
    assert create_policy(legacy).name == create_policy(named).name
