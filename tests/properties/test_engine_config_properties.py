"""Engine-parameter sweeps: correctness must not depend on buffer or
checkpoint granularity."""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import AdaptivityConfig, EngineConfig
from repro.services.ws import shannon_entropy
from repro.workloads import (
    DemoGrid,
    DemoGridSpec,
    Q1,
    Q2,
    perturb_join_sleep,
    perturb_ws_cost,
)

SPEC = DemoGridSpec(sequences_cardinality=80, interactions_cardinality=110,
                    sequence_length=16)

slow_settings = settings(max_examples=10, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])


@given(buffer_size=st.integers(min_value=1, max_value=120),
       checkpoint_interval=st.integers(min_value=1, max_value=120))
@slow_settings
def test_q1_r1_correct_for_any_granularity(buffer_size,
                                           checkpoint_interval):
    engine = EngineConfig(buffer_size=buffer_size,
                          checkpoint_interval=checkpoint_interval,
                          logging_enabled=True)
    grid = DemoGrid(SPEC, engine_config=engine)
    perturb_ws_cost(grid, 10.0)
    result = grid.run(Q1, AdaptivityConfig(response="R1",
                                           decision_latency_ms=50.0))
    expected = sorted(
        shannon_entropy(s) for s in grid.gds_map[
            "protein_sequences"].relation.column_values("sequence"))
    got = sorted(v[0] for v in result.values())
    assert len(got) == len(expected)
    assert all(math.isclose(a, b) for a, b in zip(got, expected))


@given(buffer_size=st.integers(min_value=1, max_value=80),
       checkpoint_interval=st.integers(min_value=1, max_value=80))
@slow_settings
def test_q2_r1_correct_for_any_granularity(buffer_size,
                                           checkpoint_interval):
    engine = EngineConfig(buffer_size=buffer_size,
                          checkpoint_interval=checkpoint_interval,
                          logging_enabled=True)
    grid = DemoGrid(SPEC, engine_config=engine)
    perturb_join_sleep(grid, 12.0)
    result = grid.run(Q2, AdaptivityConfig(response="R1",
                                           decision_latency_ms=50.0,
                                           cooldown_ms=100.0))
    sequences = grid.gds_map["protein_sequences"].relation
    interactions = grid.gds_map["protein_interactions"].relation
    orfs = set(sequences.column_values("ORF"))
    expected = sorted(o2 for o1, o2 in (r.values for r in interactions)
                      if o1 in orfs)
    assert sorted(v[0] for v in result.values()) == expected


@given(hash_buckets=st.integers(min_value=2, max_value=1024))
@slow_settings
def test_q2_correct_for_any_bucket_count(hash_buckets):
    grid = DemoGrid(SPEC)
    perturb_join_sleep(grid, 10.0)
    result = grid.run(Q2, AdaptivityConfig(response="R1",
                                           hash_buckets=hash_buckets,
                                           decision_latency_ms=50.0))
    assert result.stats.result_count == SPEC.interactions_cardinality
