"""Property tests: the chaos subsystem's determinism contract.

Three promises from the design:

* **Zero cost when off.**  A run with ``chaos=None`` and a run with a
  disabled-but-populated :class:`ChaosConfig` are bit-identical: same
  total event count, same full trace, same result rows.  Chaos that is
  switched off must not exist as far as the simulation can tell.
* **Reproducible when on.**  The same master seed and the same fault
  schedule replay the same faults, retries and results bit-for-bit —
  a chaotic run is still a deterministic simulation.
* **Transient stalls degrade gracefully.**  A clone frozen past the
  suspect deadline (but short of the failure deadline) is quarantined
  — its weight driven to zero, its recovery logs retained — and then
  reintegrated when its heartbeats resume; the query still returns
  the complete, correct row set and no machine is rebuilt.
"""

import dataclasses
import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import (
    ChaosConfig,
    FaultSchedule,
    LinkFault,
    MachineFreeze,
    ServiceFault,
)
from repro.config import AdaptivityConfig, FaultToleranceConfig
from repro.workloads import DemoGrid, DemoGridSpec, Q1, Q2

SPEC = DemoGridSpec(sequences_cardinality=150, interactions_cardinality=220,
                    sequence_length=24,
                    seed=int(os.environ.get("REPRO_TEST_SEED", "0")))

slow_settings = settings(max_examples=6, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])

#: Disabled master switch over a fully populated schedule: none of it
#: may leak into the run.
DISABLED_BUT_POPULATED = ChaosConfig(
    enabled=False,
    schedule=FaultSchedule(
        link_faults=(LinkFault(drop_probability=0.5,
                               duplicate_probability=0.5,
                               delay_probability=0.5, delay_ms=40.0),),
        freezes=(MachineFreeze("compute-1", at_ms=100.0,
                               duration_ms=500.0),),
        service_faults=(ServiceFault(failure_probability=0.5),)))


def run_once(query, chaos, seed, adaptivity=None, spec=SPEC,
             fault_tolerance=None):
    grid = DemoGrid(dataclasses.replace(spec, seed=seed),
                    fault_tolerance=fault_tolerance, chaos=chaos)
    result = grid.run(query, adaptivity or AdaptivityConfig())
    timeline = [(event.timestamp, event.category, event.source,
                 event.description, event.data)
                for event in grid.context.tracer.events]
    return grid, result, timeline


@given(query=st.sampled_from([Q1, Q2]), seed=st.sampled_from([0, 1]))
@slow_settings
def test_disabled_chaos_is_bit_identical_to_no_chaos(query, seed):
    none_grid, none_result, none_timeline = run_once(query, None, seed)
    off_grid, off_result, off_timeline = run_once(
        query, DISABLED_BUT_POPULATED, seed)
    assert off_grid.chaos is None
    assert (none_grid.context.env.events_scheduled
            == off_grid.context.env.events_scheduled)
    assert none_timeline == off_timeline
    assert sorted(none_result.values()) == sorted(off_result.values())


@given(query=st.sampled_from([Q1, Q2]), seed=st.sampled_from([0, 1]))
@slow_settings
def test_same_seed_and_schedule_replay_the_same_chaos(query, seed):
    chaos = ChaosConfig.lossy(
        drop_probability=0.1, duplicate_probability=0.08,
        delay_probability=0.15, delay_ms=30.0,
        ws_failure_probability=0.3 if query == Q1 else 0.0)
    first_grid, first_result, first_timeline = run_once(query, chaos, seed)
    second_grid, second_result, second_timeline = run_once(
        query, chaos, seed)
    assert (first_grid.context.env.events_scheduled
            == second_grid.context.env.events_scheduled)
    assert first_timeline == second_timeline
    assert first_result.values() == second_result.values()
    assert first_grid.chaos.counters() == second_grid.chaos.counters()
    assert first_result.response_time_ms == second_result.response_time_ms


def test_transient_stall_quarantines_then_reintegrates():
    spec = DemoGridSpec(sequences_cardinality=400,
                        interactions_cardinality=500)
    ft = FaultToleranceConfig(enabled=True,
                              heartbeat_interval_ms=200.0,
                              suspect_timeout_ms=500.0,
                              failure_timeout_ms=5000.0)
    chaos = ChaosConfig(enabled=True, schedule=FaultSchedule(
        freezes=(MachineFreeze("compute-2", at_ms=600.0,
                               duration_ms=1500.0),)))
    grid, result, timeline = run_once(Q1, chaos, 0, spec=spec,
                                      fault_tolerance=ft)
    # Complete, correct rows despite the stall.
    assert result.stats.result_count == 400
    # The stalled clone was quarantined and later reintegrated —
    # never declared dead (no recovery/rebuild).
    assert result.stats.clones_quarantined >= 1
    assert result.stats.clones_reintegrated >= 1
    assert result.stats.machines_recovered == 0
    descriptions = [entry[3] for entry in timeline]
    for expected in ("machine frozen", "gqes suspect",
                     "clone quarantined", "gqes recovered from suspect",
                     "clone reintegrated"):
        assert expected in descriptions, expected
    # Quarantine precedes reintegration.
    assert (descriptions.index("clone quarantined")
            < descriptions.index("clone reintegrated"))


def test_quarantine_zeroes_then_restores_the_clone_weight():
    spec = DemoGridSpec(sequences_cardinality=400,
                        interactions_cardinality=500)
    ft = FaultToleranceConfig(enabled=True,
                              heartbeat_interval_ms=200.0,
                              suspect_timeout_ms=500.0,
                              failure_timeout_ms=5000.0)
    chaos = ChaosConfig(enabled=True, schedule=FaultSchedule(
        freezes=(MachineFreeze("compute-2", at_ms=600.0,
                               duration_ms=1500.0),)))
    grid, _result, timeline = run_once(Q1, chaos, 0, spec=spec,
                                       fault_tolerance=ft)
    weights = [(entry[3], dict(entry[4])["weights"])
               for entry in timeline
               if entry[3] in ("clone quarantined", "clone reintegrated")]
    quarantined = dict(weights)["clone quarantined"]
    reintegrated = dict(weights)["clone reintegrated"]
    # The suspect clone's share goes to zero, then comes back.
    assert 0.0 in quarantined
    assert 0.0 not in reintegrated
    assert abs(sum(reintegrated) - 1.0) < 1e-9
