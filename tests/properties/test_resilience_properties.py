"""Property tests: the fault-tolerance layer's determinism contract.

Three promises from the design:

* **Zero cost when off.**  With no crashes configured the event
  timeline is bit-identical to the seed behaviour: an empty crash
  schedule, and an always-on (default) circuit breaker, add no events
  and perturb no draws.
* **Reproducible when on.**  A seeded crash scenario — including the
  scheduler's retry, blacklist and breaker reactions — replays
  bit-for-bit under the same seed.
* **Total accounting.**  Every query admitted while machines crash
  reaches exactly one terminal outcome: a result or a typed
  :class:`~repro.dqp.gdqs.QueryFailed`, never a hang and never an
  unhandled exception.
"""

import dataclasses
import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chaos import ChaosConfig, MachineCrash, RetryPolicy
from repro.config import (
    AdaptivityConfig,
    FaultToleranceConfig,
    SchedulerConfig,
)
from repro.dqp.gdqs import QueryFailed, QueryResult
from repro.sched import TERMINAL_STATES
from repro.workloads import DemoGrid, DemoGridSpec, Q1, Q2

SPEC = DemoGridSpec(sequences_cardinality=120,
                    interactions_cardinality=180,
                    sequence_length=20, compute_machines=3,
                    seed=int(os.environ.get("REPRO_TEST_SEED", "0")))

FT0 = FaultToleranceConfig(enabled=True, heartbeat_interval_ms=200.0,
                           failure_timeout_ms=700.0, max_recoveries=0)

RETRY = RetryPolicy(max_attempts=3, backoff_base_ms=100.0,
                    backoff_cap_ms=1000.0)

slow_settings = settings(max_examples=6, deadline=None,
                         suppress_health_check=[HealthCheck.too_slow])

#: An empty crash schedule must be indistinguishable from no chaos.
EMPTY_CRASHES = ChaosConfig.lossy(crashes=())


def timeline_of(grid):
    return [(event.timestamp, event.category, event.source,
             event.description, event.data)
            for event in grid.context.tracer.events]


def run_query(chaos, seed, breaker_threshold=3):
    grid = DemoGrid(dataclasses.replace(SPEC, seed=seed), chaos=chaos)
    grid.scheduler(SchedulerConfig(breaker_threshold=breaker_threshold))
    result = grid.run(Q1, AdaptivityConfig())
    return grid, result


def run_crashy_workload(seed, breaker_threshold=3):
    chaos = ChaosConfig.lossy(crashes=(
        MachineCrash("compute-2", at_ms=900.0),))
    grid = DemoGrid(dataclasses.replace(SPEC, seed=seed),
                    fault_tolerance=FT0, chaos=chaos)
    scheduler = grid.scheduler(SchedulerConfig(
        max_concurrent=4, retry=RETRY,
        breaker_threshold=breaker_threshold))
    for query in (Q1, Q2, Q1, Q2):
        scheduler.submit(query, adaptivity=AdaptivityConfig.disabled(),
                         degree=2)
    outcomes = scheduler.drain()
    return grid, scheduler, outcomes


@given(seed=st.sampled_from([0, 1]))
@slow_settings
def test_empty_crash_schedule_is_bit_identical_to_no_chaos(seed):
    none_grid, none_result = run_query(None, seed)
    empty_grid, empty_result = run_query(EMPTY_CRASHES, seed)
    assert empty_grid.chaos is None
    assert (none_grid.context.env.events_scheduled
            == empty_grid.context.env.events_scheduled)
    assert timeline_of(none_grid) == timeline_of(empty_grid)
    assert sorted(none_result.values()) == sorted(empty_result.values())


@given(seed=st.sampled_from([0, 1]))
@slow_settings
def test_always_on_breaker_is_bit_identical_to_disabled(seed):
    on_grid, on_result = run_query(None, seed, breaker_threshold=3)
    off_grid, off_result = run_query(None, seed, breaker_threshold=0)
    # The breaker is pure dictionary bookkeeping: with no failures to
    # record, enabling it schedules no events and changes no draws.
    assert (on_grid.context.env.events_scheduled
            == off_grid.context.env.events_scheduled)
    assert timeline_of(on_grid) == timeline_of(off_grid)
    assert sorted(on_result.values()) == sorted(off_result.values())


@given(seed=st.sampled_from([0, 1]))
@slow_settings
def test_crash_scenario_replays_bit_for_bit(seed):
    first_grid, first_sched, first = run_crashy_workload(seed)
    second_grid, second_sched, second = run_crashy_workload(seed)
    assert (first_grid.context.env.events_scheduled
            == second_grid.context.env.events_scheduled)
    assert timeline_of(first_grid) == timeline_of(second_grid)
    assert len(first) == len(second)
    for left, right in zip(first, second):
        assert type(left) is type(right)
        if isinstance(left, QueryFailed):
            assert left == right
        else:
            assert sorted(left.values()) == sorted(right.values())
    first_stats = first_sched.statistics()
    second_stats = second_sched.statistics()
    assert first_stats.retried == second_stats.retried
    assert first_stats.failed == second_stats.failed
    assert first_stats.wasted_work_ms == second_stats.wasted_work_ms


@given(seed=st.sampled_from([0, 1]))
@slow_settings
def test_every_admitted_query_reaches_a_terminal_outcome(seed):
    _grid, scheduler, outcomes = run_crashy_workload(seed)
    assert len(outcomes) == len(scheduler.sessions) == 4
    for outcome in outcomes:
        assert isinstance(outcome, (QueryResult, QueryFailed))
    assert all(session.state in TERMINAL_STATES
               for session in scheduler.sessions)
    stats = scheduler.statistics()
    assert stats.completed + stats.failed == stats.admitted
    assert 0.0 <= stats.availability <= 1.0
