"""Unit tests for the simulated-time metrics registry."""

import json

import pytest

from repro.sim.environment import Environment
from repro.telemetry.metrics import (
    AdaptivityReport,
    MetricsRegistry,
    percentile,
)


def make_registry(enabled=True, **kwargs):
    return MetricsRegistry(Environment(), enabled=enabled, **kwargs)


class TestPercentile:
    def test_nearest_rank(self):
        values = [float(v) for v in range(1, 101)]
        assert percentile(values, 0.50) == 50.0
        assert percentile(values, 0.95) == 95.0
        assert percentile(values, 0.99) == 99.0

    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_unsorted_input(self):
        assert percentile([9.0, 1.0, 5.0], 0.5) == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)


class TestInstruments:
    def test_counter_accumulates(self):
        counter = make_registry().counter("events", query="q1")
        counter.inc()
        counter.inc(4.0)
        assert counter.value == 5.0

    def test_gauge_set(self):
        gauge = make_registry().gauge("depth")
        assert gauge.value == 0.0
        gauge.set(3.5)
        assert gauge.value == 3.5

    def test_gauge_callback_read_at_snapshot_time(self):
        state = {"busy": 1.0}
        gauge = make_registry().gauge("busy", fn=lambda: state["busy"])
        state["busy"] = 9.0
        assert gauge.value == 9.0
        assert gauge.snapshot()["value"] == 9.0

    def test_histogram_summary(self):
        histogram = make_registry().histogram("latency")
        for value in range(1, 101):
            histogram.observe(float(value))
        stats = histogram.summary()
        assert stats["count"] == 100
        assert stats["sum"] == pytest.approx(5050.0)
        assert stats["min"] == 1.0
        assert stats["max"] == 100.0
        assert stats["mean"] == pytest.approx(50.5)
        assert stats["p50"] == 50.0
        assert stats["p95"] == 95.0
        assert stats["p99"] == 99.0

    def test_empty_histogram_summary(self):
        histogram = make_registry().histogram("latency")
        assert histogram.summary() == {"count": 0, "sum": 0.0}

    def test_series_records_sim_time_and_evicts(self):
        registry = make_registry(series_maxlen=3)
        series = registry.series("queue")
        for value in range(5):
            series.sample(float(value))
        assert series.recorded == 5
        # Only the most recent maxlen samples survive.
        assert [value for _t, value in series.samples] == [2.0, 3.0, 4.0]
        assert all(t == registry.env.now for t, _v in series.samples)


class TestRegistry:
    def test_get_or_create_identity(self):
        registry = make_registry()
        first = registry.counter("sent", machine="m1")
        again = registry.counter("sent", machine="m1")
        other = registry.counter("sent", machine="m2")
        assert first is again
        assert first is not other

    def test_find_registered_instrument(self):
        registry = make_registry()
        histogram = registry.histogram("latency", query="q1")
        assert registry.find("histogram", "latency", query="q1") is histogram
        assert registry.find("histogram", "latency", query="q2") is None

    def test_disabled_registry_hands_out_noops(self):
        registry = make_registry(enabled=False)
        counter = registry.counter("sent")
        counter.inc(10.0)
        registry.gauge("depth").set(5.0)
        registry.histogram("latency").observe(1.0)
        registry.series("queue").sample(2.0)
        assert counter.value == 0.0
        assert registry.instruments() == []
        assert registry.snapshot() == []

    def test_disabled_registry_drops_reports(self):
        registry = make_registry(enabled=False)
        registry.add_report(make_report())
        assert registry.reports == []

    def test_snapshot_lists_instruments_then_reports(self):
        registry = make_registry()
        registry.counter("sent", machine="m1").inc()
        registry.add_report(make_report())
        records = registry.snapshot()
        assert [r["type"] for r in records] == ["counter",
                                                "adaptivity_report"]
        assert records[0]["labels"] == {"machine": "m1"}

    def test_write_jsonl_round_trips(self, tmp_path):
        registry = make_registry()
        registry.counter("sent").inc(3.0)
        registry.histogram("latency").observe(2.0)
        registry.add_report(make_report())
        path = tmp_path / "metrics.jsonl"
        count = registry.write_jsonl(path)
        lines = path.read_text().splitlines()
        assert count == len(lines) == 3
        records = [json.loads(line) for line in lines]
        assert {r["type"] for r in records} == {
            "counter", "histogram", "adaptivity_report"}

    def test_prometheus_exposition(self):
        registry = make_registry()
        registry.counter("tuples_sent", producer="xp:0").inc(7.0)
        registry.gauge("utilisation", machine="m1").set(0.5)
        registry.histogram("latency").observe(4.0)
        registry.series("queue").sample(2.0)
        text = registry.to_prometheus()
        assert "# TYPE repro_tuples_sent counter" in text
        assert 'repro_tuples_sent{producer="xp:0"} 7.0' in text
        assert '# TYPE repro_utilisation gauge' in text
        assert '# TYPE repro_latency summary' in text
        assert 'repro_latency{quantile="0.5"} 4.0' in text
        assert "repro_latency_count 1" in text
        assert "repro_latency_sum 4.0" in text
        # Series export their latest value as a gauge.
        assert "repro_queue 2.0" in text

    def test_prometheus_empty_registry(self):
        assert make_registry().to_prometheus() == ""


def make_report():
    return AdaptivityReport(
        query_id="q1", response_time_ms=1234.5, adaptations_applied=1,
        proposals_sent=2, cost_notifications=7, raw_monitoring_events=37,
        tuple_balance_ratio=1.0, tuples_per_consumer=(75, 75),
        detection_latency_ms={"count": 0, "sum": 0.0})


class TestAdaptivityReport:
    def test_to_dict_is_json_serialisable(self):
        record = make_report().to_dict()
        assert record["type"] == "adaptivity_report"
        assert record["tuples_per_consumer"] == [75, 75]
        json.dumps(record)
