"""Tests for the tracing subsystem and its integration hooks."""

import pytest

from repro.config import AdaptivityConfig, FaultToleranceConfig, RESPONSE_R1
from repro.sim import Environment
from repro.telemetry import (
    CATEGORY_ASSESSMENT,
    CATEGORY_FAILURE,
    CATEGORY_MONITORING,
    CATEGORY_QUERY,
    CATEGORY_RESPONSE,
    TraceEvent,
    Tracer,
    format_timeline,
)
from repro.workloads import DemoGrid, DemoGridSpec, Q1, perturb_ws_cost

SPEC = DemoGridSpec(sequences_cardinality=150, interactions_cardinality=200,
                    sequence_length=24, spare_machines=1)


class TestTracer:
    def test_records_carry_simulation_time(self):
        env = Environment()
        tracer = Tracer(env)

        def body(env):
            yield env.timeout(42.0)
            tracer.record("query", "me", "something happened", detail=7)

        env.process(body(env))
        env.run()
        event = tracer.events[0]
        assert event.timestamp == 42.0
        assert event.data_dict() == {"detail": 7}

    def test_category_filtering_and_counts(self):
        env = Environment()
        tracer = Tracer(env)
        tracer.record("a", "s", "one")
        tracer.record("b", "s", "two")
        tracer.record("a", "s", "three")
        assert len(tracer.in_category("a")) == 2
        assert tracer.counts_by_category() == {"a": 2, "b": 1}

    def test_between_filters_by_time(self):
        env = Environment()
        tracer = Tracer(env)
        tracer.record("a", "s", "at zero")
        assert tracer.between(0.0, 1.0) == tracer.events
        assert tracer.between(1.0, 2.0) == []

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(Environment())
        tracer.enabled = False
        tracer.record("a", "s", "dropped")
        assert tracer.events == []

    def test_clear(self):
        tracer = Tracer(Environment())
        tracer.record("a", "s", "x")
        tracer.clear()
        assert tracer.events == []

    def test_ring_buffer_keeps_most_recent(self):
        tracer = Tracer(Environment(), max_events=3)
        for index in range(5):
            tracer.record("a", "s", f"event {index}")
        assert [event.description for event in tracer.events] == [
            "event 2", "event 3", "event 4"]
        assert tracer.recorded_total == 5
        assert tracer.dropped_total == 2

    def test_ring_buffer_counters_survive_eviction(self):
        tracer = Tracer(Environment(), max_events=2)
        tracer.record("a", "s", "one")
        tracer.record("b", "s", "two")
        tracer.record("a", "s", "three")
        # "one" was evicted, but the per-category totals still count it.
        assert tracer.recorded_by_category == {"a": 2, "b": 1}
        assert tracer.counts_by_category() == {"a": 1, "b": 1}

    def test_full_retention_is_the_default(self):
        tracer = Tracer(Environment())
        for index in range(1000):
            tracer.record("a", "s", f"event {index}")
        assert len(tracer.events) == 1000
        assert tracer.dropped_total == 0

    def test_ring_buffer_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Tracer(Environment(), max_events=0)

    def test_clear_resets_counters(self):
        tracer = Tracer(Environment(), max_events=2)
        tracer.record("a", "s", "x")
        tracer.clear()
        assert len(tracer.events) == 0
        assert tracer.recorded_total == 0

    def test_format_timeline(self):
        events = [TraceEvent(1234.5, "response", "responder:q1",
                             "rebalanced", data=(("epoch", 1),))]
        text = format_timeline(events)
        assert "1.234s" in text or "1.235s" in text
        assert "rebalanced" in text
        assert "epoch=1" in text

    def test_format_timeline_category_filter(self):
        events = [TraceEvent(0.0, "a", "s", "keep"),
                  TraceEvent(0.0, "b", "s", "drop")]
        text = format_timeline(events, categories={"a"})
        assert "keep" in text and "drop" not in text


class TestTracingIntegration:
    def test_adaptive_run_produces_full_pipeline_trace(self):
        grid = DemoGrid(SPEC)
        perturb_ws_cost(grid, 10.0)
        grid.run(Q1, AdaptivityConfig(response=RESPONSE_R1,
                                      decision_latency_ms=100.0))
        tracer = grid.context.tracer
        counts = tracer.counts_by_category()
        assert counts.get(CATEGORY_QUERY, 0) >= 2   # submitted + completed
        assert counts.get(CATEGORY_MONITORING, 0) >= 1
        assert counts.get(CATEGORY_ASSESSMENT, 0) >= 1
        assert counts.get(CATEGORY_RESPONSE, 0) >= 1

    def test_trace_event_order_is_causal(self):
        grid = DemoGrid(SPEC)
        perturb_ws_cost(grid, 10.0)
        grid.run(Q1, AdaptivityConfig(decision_latency_ms=100.0))
        tracer = grid.context.tracer
        first_monitoring = min(
            e.timestamp for e in tracer.in_category(CATEGORY_MONITORING))
        first_response = min(
            (e.timestamp for e in tracer.in_category(CATEGORY_RESPONSE)
             if e.description == "distribution rebalanced"),
            default=None)
        assert first_response is not None
        assert first_monitoring < first_response

    def test_failure_recovery_is_traced(self):
        ft = FaultToleranceConfig(enabled=True,
                                  heartbeat_interval_ms=200.0,
                                  failure_timeout_ms=700.0)
        grid = DemoGrid(SPEC, fault_tolerance=ft)
        grid.fail_machine_at("compute-2", at_ms=900.0)
        grid.run(Q1, AdaptivityConfig.disabled())
        failures = grid.context.tracer.in_category(CATEGORY_FAILURE)
        descriptions = [event.description for event in failures]
        assert "machine failed" in descriptions
        assert "evaluators recovered" in descriptions

    def test_static_unperturbed_run_is_quiet(self):
        grid = DemoGrid(SPEC)
        grid.run(Q1, AdaptivityConfig.disabled())
        tracer = grid.context.tracer
        assert tracer.in_category(CATEGORY_RESPONSE) == []
        assert tracer.in_category(CATEGORY_FAILURE) == []
