"""Regression tests for the PR-8 hot-path bugfix sweep.

Three quadratic hot paths were fixed together with the columnar data
plane; each test here fails against the pre-fix code:

* ``HashJoin._pending`` drained with ``list.pop(0)`` — O(n²) in the
  match fan-out of a skewed probe key;
* ``rebalance_outstanding`` popped drained receivers off the head of
  a list — O(n²) in the receiver count;
* ``Histogram`` re-sorted its samples on every quantile query — three
  full sorts per ``summary()`` call.

Micro-benchmark note (1-vCPU CI-class host, N = 200 000): the pending
drain took ~3.3 s with ``pop(0)`` and ~0.09 s with the deque;
``rebalance_outstanding`` took ~3.4 s with the shifting receiver list
and ~0.35 s with the cursor.  The 2 s limits below sit between the
two regimes with an order-of-magnitude margin on either side.
"""

import time

from repro.data.tuples import Row
from repro.engine.distribution import rebalance_outstanding
from repro.engine.operators.hashjoin import HashJoin
from repro.telemetry.metrics import Histogram, percentile

#: Large enough that the quadratic variants take seconds while the
#: fixed ones stay well under the limit (see module docstring).
_SCALE = 200_000
_LIMIT_S = 2.0


def _drive(generator):
    """Run a generator-form operator call that never waits."""
    try:
        next(generator)
    except StopIteration as stop:
        return stop.value
    raise AssertionError("operator unexpectedly yielded")


class _StubContext:
    """Just enough EvalContext for paths that never touch the grid."""

    env = None

    def __init__(self):
        from repro.config import EngineConfig
        self.engine_config = EngineConfig()


class TestHashJoinPendingDrain:
    def test_skewed_fanout_drains_linearly(self):
        """A huge held-match queue drains row-at-a-time in linear time,
        preserving FIFO order."""
        join = HashJoin(_StubContext(), None, None, 0, 0)
        rows = [Row((i,), ("probe", i)) for i in range(_SCALE)]
        join._pending.extend(rows)
        started = time.perf_counter()
        drained = [_drive(join.next()) for _ in range(_SCALE)]
        elapsed = time.perf_counter() - started
        assert drained == rows
        assert not join._pending
        assert elapsed < _LIMIT_S, f"pending drain took {elapsed:.2f}s"

    def test_batch_drain_preserves_fifo_order(self):
        join = HashJoin(_StubContext(), None, None, 0, 0)
        rows = [Row((i,), ("probe", i)) for i in range(100)]
        join._pending.extend(rows)
        drained = []
        while join._pending:
            drained.extend(_drive(join.next_batch(7)))
        assert drained == rows


class TestRebalanceOutstandingDrain:
    def test_many_receivers_plan_in_linear_time(self):
        """One overloaded consumer redistributing to _SCALE receivers."""
        assignments = {0: [Row((i,), ("src", i)) for i in range(_SCALE)]}
        weights = [1.0] * _SCALE
        started = time.perf_counter()
        moves = rebalance_outstanding(assignments, weights)
        elapsed = time.perf_counter() - started
        assert len(moves[0]) == _SCALE - 1
        assert elapsed < _LIMIT_S, f"rebalance took {elapsed:.2f}s"

    def test_plan_is_pinned(self):
        """The cursor walk visits receivers in the same order the
        shifting version did, so every (row, target) pair is pinned."""
        rows = [Row((i,), ("src", i)) for i in range(6)]
        moves = rebalance_outstanding({0: rows}, [1.0, 1.0, 1.0])
        # Targets 2/2/2; consumer 0 keeps 2, moves its most recently
        # assigned tuples first, filling receiver 1 then receiver 2.
        assert moves == {0: [(rows[5], 1), (rows[4], 1),
                             (rows[3], 2), (rows[2], 2)]}

    def test_reference_equivalence(self):
        """Identical to a pop(0)-based reference plan on a mixed case."""

        def reference(assignments, weights):
            from repro.engine.distribution import normalise_weights
            weights = normalise_weights(weights)
            count = len(weights)
            outstanding = {c: list(r) for c, r in assignments.items()}
            total = sum(len(r) for r in outstanding.values())
            quotas = [w * total for w in weights]
            targets = [int(q) for q in quotas]
            remainders = sorted(range(count),
                                key=lambda i: quotas[i] - targets[i],
                                reverse=True)
            for i in range(total - sum(targets)):
                targets[remainders[i % count]] += 1
            deficits = [targets[c] - len(outstanding.get(c, []))
                        for c in range(count)]
            moves = {}
            receivers = [c for c in range(count) if deficits[c] > 0]
            for source in range(count):
                excess = -deficits[source]
                if excess <= 0:
                    continue
                for row in outstanding.get(source, [])[::-1][:excess]:
                    while receivers and deficits[receivers[0]] == 0:
                        receivers.pop(0)
                    if not receivers:
                        break
                    target = receivers[0]
                    deficits[target] -= 1
                    moves.setdefault(source, []).append((row, target))
            return moves

        assignments = {
            0: [Row((i,), ("a", i)) for i in range(9)],
            1: [Row((i,), ("b", i)) for i in range(1)],
            3: [Row((i,), ("d", i)) for i in range(5)],
        }
        weights = [0.1, 0.4, 0.3, 0.2]
        assert rebalance_outstanding(assignments, weights) == reference(
            assignments, weights)


class TestHistogramCachedSort:
    def test_quantiles_pinned_to_nearest_rank(self):
        """Cached-sort quantiles match the module's nearest-rank
        reference on every query."""
        histogram = Histogram("latency", {})
        values = [(i * 37) % 101 / 7.0 for i in range(300)]
        for value in values:
            histogram.observe(value)
        for fraction in (0.5, 0.95, 0.99):
            assert histogram.quantile(fraction) == percentile(
                values, fraction)
        summary = histogram.summary()
        assert summary["p50"] == percentile(values, 0.5)
        assert summary["p95"] == percentile(values, 0.95)
        assert summary["p99"] == percentile(values, 0.99)
        assert summary["min"] == min(values)
        assert summary["max"] == max(values)

    def test_summary_sorts_once(self):
        """One sort serves every quantile of a summary() call."""
        histogram = Histogram("latency", {})
        for value in (3.0, 1.0, 2.0):
            histogram.observe(value)
        assert histogram._sorted is None
        histogram.summary()
        cached = histogram._sorted
        assert cached == [1.0, 2.0, 3.0]
        histogram.quantile(0.5)
        histogram.summary()
        assert histogram._sorted is cached

    def test_observe_invalidates_cache(self):
        histogram = Histogram("latency", {})
        for value in (5.0, 4.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 4.0
        histogram.observe(1.0)
        assert histogram._sorted is None
        assert histogram.quantile(0.5) == 4.0
        assert histogram.quantile(0.99) == 5.0
        assert histogram.summary()["min"] == 1.0
