"""Scheduler resilience: retries, deadlines, breakers, clean drains.

A permanently crashed machine turns its in-flight sessions into typed
failures; the scheduler's job is to keep every admitted session
accountable — retry it on a placement that blacklists the machine
that sank it, abort it at the per-query deadline, or settle it as a
typed failure — and to drain to one terminal outcome per session, no
matter what the grid did underneath.
"""

import pytest

from repro.chaos import ChaosConfig, MachineCrash, RetryPolicy
from repro.config import (
    AdaptivityConfig,
    FaultToleranceConfig,
    SchedulerConfig,
)
from repro.dqp.gdqs import (
    CAUSE_BUDGET,
    CAUSE_DEADLINE,
    CAUSE_UNPLANNABLE,
    QueryFailed,
    QueryResult,
)
from repro.errors import ConfigurationError
from repro.sched import STATE_COMPLETED, STATE_FAILED, TERMINAL_STATES
from repro.sched.health import MachineHealth
from repro.workloads import DemoGrid, DemoGridSpec, Q1, Q2

STATIC = AdaptivityConfig.disabled()

SPEC3 = DemoGridSpec(sequences_cardinality=120,
                     interactions_cardinality=180,
                     sequence_length=20, compute_machines=3)

#: Fast detection, zero recovery budget: a machine loss escalates to
#: the scheduler instead of being absorbed by the DQP layer.
FT0 = FaultToleranceConfig(enabled=True, heartbeat_interval_ms=200.0,
                           failure_timeout_ms=700.0, max_recoveries=0)

RETRY = RetryPolicy(max_attempts=3, backoff_base_ms=100.0,
                    backoff_cap_ms=1000.0)


def crash(machine, at_ms):
    return ChaosConfig.lossy(crashes=(MachineCrash(machine, at_ms=at_ms),))


def make_grid(chaos, spec=SPEC3, **config):
    grid = DemoGrid(spec, fault_tolerance=FT0, chaos=chaos)
    return grid, grid.scheduler(SchedulerConfig(**config))


class FakeEnv:
    def __init__(self):
        self.now = 0.0


class TestMachineHealth:
    def make(self, threshold=3, window_ms=1000.0, cooldown_ms=5000.0):
        self.env = FakeEnv()
        return MachineHealth(self.env, threshold=threshold,
                             window_ms=window_ms, cooldown_ms=cooldown_ms)

    def test_opens_after_threshold_failures_in_window(self):
        health = self.make()
        health.record_failure("m")
        health.record_failure("m")
        assert not health.is_open("m")
        health.record_failure("m")
        assert health.is_open("m")
        assert health.state("m") == "open"
        assert health.breakers_opened == 1
        assert health.open_machines() == ("m",)

    def test_window_expiry_forgets_old_failures(self):
        health = self.make()
        health.record_failure("m")
        self.env.now = 1500.0  # first failure ages out of the window
        health.record_failure("m")
        health.record_failure("m")
        assert not health.is_open("m")

    def test_cooldown_half_opens_and_probe_success_closes(self):
        health = self.make()
        for _ in range(3):
            health.record_failure("m")
        self.env.now = 5000.0
        assert health.state("m") == "half-open"
        assert not health.is_open("m")  # one probe is admitted
        health.note_placement(("m",))
        assert health.is_open("m")  # ...but only one
        health.record_success("m")
        assert health.state("m") == "closed"
        assert not health.is_open("m")
        assert health.breakers_closed == 1

    def test_probe_failure_reopens_for_another_cooldown(self):
        health = self.make()
        for _ in range(3):
            health.record_failure("m")
        self.env.now = 5000.0
        health.note_placement(("m",))
        health.record_failure("m")
        assert health.state("m") == "open"
        self.env.now = 9999.0  # cooldown restarted at the probe failure
        assert health.state("m") == "open"
        self.env.now = 10000.0
        assert health.state("m") == "half-open"

    def test_success_on_closed_machine_clears_nothing(self):
        health = self.make()
        health.record_failure("m")
        health.record_success("m")
        health.record_failure("m")
        health.record_failure("m")
        # The window expires failures; intervening successes don't.
        assert health.is_open("m")


class TestRetryWithBlacklist:
    def test_crash_is_retried_away_from_the_failed_machine(self):
        grid, scheduler = make_grid(crash("compute-2", at_ms=600.0),
                                    retry=RETRY)
        session = scheduler.submit(Q1, adaptivity=STATIC, degree=2)
        assert set(session.machines) >= {"compute-1", "compute-2"}
        (outcome,) = scheduler.drain()
        assert isinstance(outcome, QueryResult)
        assert outcome.stats.result_count == 120
        assert session.state == STATE_COMPLETED
        assert session.attempts == 2
        # The machine that sank attempt one is blacklisted on retry.
        assert session.blacklist == "compute-2"
        assert "compute-2" not in session.machines
        stats = scheduler.statistics()
        assert stats.retried == 1
        assert stats.failed == 0
        assert stats.availability == 1.0
        assert stats.wasted_work_ms > 0.0

    def test_retry_trace_and_breaker_record_the_failure(self):
        grid, scheduler = make_grid(crash("compute-2", at_ms=600.0),
                                    retry=RETRY)
        scheduler.submit(Q1, adaptivity=STATIC, degree=2)
        scheduler.drain()
        descriptions = [event.description for event in
                        grid.context.tracer.in_category("scheduler")]
        assert "query retrying" in descriptions
        assert scheduler.health._failures.get("compute-2")

    def test_without_retry_the_failure_is_terminal(self):
        _grid, scheduler = make_grid(crash("compute-2", at_ms=600.0))
        session = scheduler.submit(Q1, adaptivity=STATIC, degree=2)
        (outcome,) = scheduler.drain()
        assert isinstance(outcome, QueryFailed)
        assert outcome.cause == CAUSE_BUDGET
        assert session.state == STATE_FAILED
        stats = scheduler.statistics()
        assert stats.failed == 1
        assert stats.retried == 0
        assert stats.availability == 0.0

    def test_exhausted_pool_fails_with_unplannable(self):
        spec = DemoGridSpec(sequences_cardinality=120,
                            interactions_cardinality=180,
                            sequence_length=20, compute_machines=2)
        chaos = ChaosConfig.lossy(crashes=(
            MachineCrash("compute-1", at_ms=300.0),
            MachineCrash("compute-2", at_ms=400.0)))
        _grid, scheduler = make_grid(chaos, spec=spec, retry=RETRY)
        scheduler.submit(Q1, adaptivity=STATIC, degree=2)
        (outcome,) = scheduler.drain()
        # Both machines are gone by the retry: placement is infeasible
        # and the session settles as a typed failure, not an exception.
        assert isinstance(outcome, QueryFailed)
        assert outcome.cause == CAUSE_UNPLANNABLE


class TestDeadlines:
    def test_deadline_aborts_with_typed_timeout(self):
        _grid, scheduler = make_grid(None, query_timeout_ms=500.0)
        session = scheduler.submit(Q1, adaptivity=STATIC)
        (outcome,) = scheduler.drain()
        assert isinstance(outcome, QueryFailed)
        assert outcome.cause == CAUSE_DEADLINE
        assert session.execution_ms == pytest.approx(500.0)
        stats = scheduler.statistics()
        assert stats.timed_out == 1
        assert stats.failed == 1

    def test_deadline_is_terminal_even_with_retry_configured(self):
        _grid, scheduler = make_grid(None, query_timeout_ms=500.0,
                                     retry=RETRY)
        session = scheduler.submit(Q1, adaptivity=STATIC)
        (outcome,) = scheduler.drain()
        assert outcome.cause == CAUSE_DEADLINE
        assert session.attempts == 1  # never retried
        assert scheduler.statistics().retried == 0

    def test_generous_deadline_never_fires(self):
        _grid, scheduler = make_grid(None, query_timeout_ms=60000.0)
        scheduler.submit(Q1, adaptivity=STATIC)
        (outcome,) = scheduler.drain()
        assert isinstance(outcome, QueryResult)
        assert scheduler.statistics().timed_out == 0


class TestDrainUnderFailures:
    def test_drain_returns_one_outcome_per_admitted_session(self):
        grid, scheduler = make_grid(crash("compute-2", at_ms=900.0),
                                    max_concurrent=4, retry=RETRY)
        for query in (Q1, Q2, Q1, Q2):
            scheduler.submit(query, adaptivity=STATIC, degree=2)
        outcomes = scheduler.drain()
        assert len(outcomes) == 4
        for outcome in outcomes:
            assert isinstance(outcome, (QueryResult, QueryFailed))
        assert all(session.state in TERMINAL_STATES
                   for session in scheduler.sessions)
        stats = scheduler.statistics()
        assert stats.completed + stats.failed == stats.admitted == 4

    def test_drain_with_timeouts_and_queued_sessions(self):
        _grid, scheduler = make_grid(None, max_concurrent=1, max_queued=4,
                                     query_timeout_ms=500.0)
        sessions = [scheduler.submit(Q1, adaptivity=STATIC)
                    for _ in range(3)]
        outcomes = scheduler.drain()
        assert len(outcomes) == 3
        assert all(outcome.cause == CAUSE_DEADLINE
                   for outcome in outcomes)
        # Queued sessions were dispatched (and then timed out) in
        # order; each successor starts when its predecessor aborts.
        starts = [session.started_at for session in sessions]
        assert starts == sorted(starts)
        assert scheduler.statistics().timed_out == 3

    def test_failed_dispatch_frees_the_slot_for_the_queue(self):
        grid, scheduler = make_grid(crash("compute-2", at_ms=600.0),
                                    max_concurrent=1, max_queued=4)
        first = scheduler.submit(Q1, adaptivity=STATIC, degree=2)
        second = scheduler.submit(Q1, adaptivity=STATIC, degree=1)
        outcomes = scheduler.drain()
        assert first.state == STATE_FAILED
        assert second.state == STATE_COMPLETED
        assert isinstance(outcomes[0], QueryFailed)
        assert isinstance(outcomes[1], QueryResult)


class TestConfigValidation:
    def test_scheduler_retry_must_be_bounded(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(retry=RetryPolicy(max_attempts=None))

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ConfigurationError):
            SchedulerConfig(query_timeout_ms=0.0)
